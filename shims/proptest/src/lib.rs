//! Minimal, API-compatible stand-in for the `proptest` property-testing
//! framework.
//!
//! The build environment has no registry access, so this crate implements
//! exactly the surface the repo's property tests use:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(..)]` header),
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * numeric [`std::ops::Range`] strategies and tuple strategies,
//! * [`collection::vec`], [`collection::hash_set`], [`option::of`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Value generation is deterministic: each test function seeds its generator
//! from its own name, so a failure always reproduces. There is no shrinking —
//! the failing inputs are printed (via the panic message) as-is.

use std::ops::Range;

/// Deterministic generator (SplitMix64) used to produce test inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator from a test-function name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection sizes accepted by [`collection::vec`] and friends: either an
/// exact count or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Vectors of `size.pick()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Sets of exactly `size.pick()` *distinct* elements drawn from
    /// `element`. Panics if the element domain cannot supply that many
    /// distinct values within a bounded number of attempts.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy returned by [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0u32;
            while out.len() < n {
                out.insert(self.element.generate(rng));
                attempts += 1;
                assert!(attempts < 10_000, "element domain too small for set of {n}");
            }
            out
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Per-invocation configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($a, $b $(, $($fmt)*)?);
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_ne!($a, $b $(, $($fmt)*)?);
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` item
/// becomes a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (@expand ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _ in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $($rest)*);
    };
}
