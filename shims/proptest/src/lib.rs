//! Minimal, API-compatible stand-in for the `proptest` property-testing
//! framework.
//!
//! The build environment has no registry access, so this crate implements
//! exactly the surface the repo's property tests use:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(..)]` header),
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * numeric [`std::ops::Range`] strategies and tuple strategies,
//! * [`collection::vec`], [`collection::hash_set`], [`option::of`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Value generation is deterministic: each test function seeds its generator
//! from its own name, so a failure always reproduces.
//!
//! **Shrinking** is the basic greedy kind: when a case fails, the harness
//! asks the strategy for simpler candidates ([`Strategy::shrink`]) — halving
//! integers and floats toward the range start, truncating vectors, turning
//! `Some` into `None`, shrinking tuple components one at a time — and
//! repeatedly adopts any candidate that still fails, up to a fixed attempt
//! budget. The minimized input is printed before the final (loud) re-run.
//! Mapped strategies ([`Strategy::prop_map`]) and hash sets do not shrink:
//! there is no inverse through an arbitrary closure, and sets rarely
//! benefit; their failures reproduce as-is.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic generator (SplitMix64) used to produce test inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator from a test-function name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose strictly simpler variants of a failing `value`, most
    /// aggressive first. The default proposes nothing, which disables
    /// shrinking for the strategy (correct for mapped strategies, where the
    /// source value is gone).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (v, lo) = (*value as i128, self.start as i128);
                if v <= lo {
                    return Vec::new();
                }
                // Range start first (simplest), then halfway back toward it.
                let half = (v - (v - lo) / 2) as $t;
                let mut out = vec![self.start];
                if half != *value && half != self.start {
                    out.push(half);
                }
                out
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        if *value <= self.start || value.is_nan() {
            return Vec::new();
        }
        let half = value - (value - self.start) / 2.0;
        let mut out = vec![self.start];
        if half.is_finite() && half != *value && half != self.start {
            out.push(half);
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection sizes accepted by [`collection::vec`] and friends: either an
/// exact count or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Vectors of `size.pick()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Sets of exactly `size.pick()` *distinct* elements drawn from
    /// `element`. Panics if the element domain cannot supply that many
    /// distinct values within a bounded number of attempts.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Truncations first (they remove the most structure), never
            // below the size floor; then element-wise shrinks.
            for n in [self.size.lo, value.len() / 2, value.len().saturating_sub(1)] {
                if n >= self.size.lo && n < value.len() {
                    out.push(value[..n].to_vec());
                }
            }
            out.dedup_by_key(|v| v.len());
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    /// Strategy returned by [`hash_set`]. Does not shrink: distinctness
    /// constraints make truncation-based shrinking more confusing than
    /// helpful at this size.
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0u32;
            while out.len() < n {
                out.insert(self.element.generate(rng));
                attempts += 1;
                assert!(attempts < 10_000, "element domain too small for set of {n}");
            }
            out
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }

        fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
            match value {
                None => Vec::new(),
                Some(v) => std::iter::once(None)
                    .chain(self.inner.shrink(v).into_iter().map(Some))
                    .collect(),
            }
        }
    }
}

/// Per-invocation configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Upper bound on shrink attempts per failing case. Greedy descent with
/// halving candidates converges in a few dozen steps; the cap only guards
/// against pathological strategies.
const SHRINK_BUDGET: u32 = 512;

/// Run `cases` deterministic inputs of `strat` through `run`, shrinking the
/// first failure to a (locally) minimal one before re-raising it. This is
/// the engine behind [`proptest!`]; tests normally use the macro.
///
/// # Panics
/// Panics (with the body's own assertion message) on the minimized failing
/// input, after printing that input.
pub fn check<S: Strategy>(cases: u32, name: &str, strat: S, run: impl Fn(S::Value))
where
    S::Value: Clone + std::fmt::Debug,
{
    let mut rng = TestRng::from_name(name);
    for _ in 0..cases {
        let input = strat.generate(&mut rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| run(input.clone())));
        if outcome.is_ok() {
            continue;
        }
        let minimized = shrink_failure(&strat, input, &run);
        eprintln!("proptest shim: minimized failing input for `{name}`:\n{minimized:#?}");
        run(minimized);
        // A deterministic body fails again on the line above; reaching here
        // means the failure did not reproduce.
        panic!("proptest shim: `{name}` failed once but passed on re-run (nondeterministic body?)");
    }
}

/// Greedy shrink: repeatedly adopt the first simpler candidate that still
/// fails, until no candidate fails or the budget runs out.
fn shrink_failure<S: Strategy>(
    strat: &S,
    mut failing: S::Value,
    run: &impl Fn(S::Value),
) -> S::Value
where
    S::Value: Clone,
{
    // Shrink attempts re-run the body expecting panics; silence the global
    // hook so they don't spam the test output, and restore it after.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut budget = SHRINK_BUDGET;
    'outer: while budget > 0 {
        for cand in strat.shrink(&failing) {
            budget -= 1;
            let passes = catch_unwind(AssertUnwindSafe(|| run(cand.clone()))).is_ok();
            if !passes {
                failing = cand;
                continue 'outer;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }
    std::panic::set_hook(hook);
    failing
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($a, $b $(, $($fmt)*)?);
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_ne!($a, $b $(, $($fmt)*)?);
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` item
/// becomes a `#[test]` running `cases` deterministic generated inputs, with
/// greedy shrinking on failure (see [`check`]).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (@expand ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::check(cfg.cases, stringify!($name), ($(($strat),)*), |__case| {
                    let ($($pat,)*) = __case;
                    $body
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_shrink_halves_toward_start() {
        let s = 0u32..100;
        assert_eq!(s.shrink(&80), vec![0, 40]);
        assert_eq!(s.shrink(&1), vec![0]);
        assert!(s.shrink(&0).is_empty());
        let signed = -50i32..50;
        assert_eq!(signed.shrink(&30), vec![-50, -10]);
    }

    #[test]
    fn float_shrink_halves_toward_start() {
        let s = 0.0f64..100.0;
        assert_eq!(s.shrink(&64.0), vec![0.0, 32.0]);
        assert!(s.shrink(&0.0).is_empty());
    }

    #[test]
    fn vec_shrink_truncates_and_respects_floor() {
        let s = collection::vec(0u32..10, 2..6);
        let cands = s.shrink(&vec![5, 5, 5, 5]);
        // Truncations stop at the floor of 2.
        assert!(cands.iter().all(|v| v.len() >= 2));
        assert!(cands.iter().any(|v| v.len() == 2));
        assert!(cands.iter().any(|v| v.len() == 3));
        // Element-wise shrinks keep the length.
        assert!(cands.iter().any(|v| v.len() == 4 && v[0] == 0));
    }

    #[test]
    fn option_shrink_prefers_none() {
        let s = option::of(0u32..10);
        assert_eq!(s.shrink(&Some(4)).first(), Some(&None));
        assert!(s.shrink(&None).is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_component() {
        let s = (0u32..10, 0u32..10);
        for (a, b) in s.shrink(&(4, 6)) {
            assert!((a, b) != (4, 6));
            assert!(a == 4 || b == 6, "both components moved at once");
        }
    }

    #[test]
    fn check_minimizes_a_failure() {
        // The property "v.len() < 3" fails for any longer vector; greedy
        // truncation must land exactly on the 3-element boundary case.
        let seen = std::sync::Mutex::new(Vec::new());
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                64,
                "check_minimizes_a_failure",
                (collection::vec(0u32..100, 0..8),),
                |(v,)| {
                    if v.len() >= 3 {
                        seen.lock().unwrap().push(v.clone());
                        panic!("too long");
                    }
                },
            );
        }));
        assert!(result.is_err(), "property should fail");
        let seen = seen.into_inner().unwrap();
        let last = seen.last().expect("at least one failing case");
        assert_eq!(last.len(), 3, "not minimized: {last:?}");
        assert!(
            last.iter().all(|&x| x == 0),
            "elements not minimized: {last:?}"
        );
    }

    #[test]
    fn check_passes_quietly() {
        check(32, "check_passes_quietly", (0u32..10,), |(x,)| {
            assert!(x < 10);
        });
    }
}
