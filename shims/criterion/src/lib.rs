//! Minimal, API-compatible stand-in for the `criterion` bench harness.
//!
//! The build environment has no registry access, so this crate provides the
//! exact surface the repo's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a plain
//! wall-clock mean over a fixed number of iterations — good enough to spot
//! order-of-magnitude regressions, with none of criterion's statistics.

use std::time::Instant;

/// Entry point handed to each bench function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.prefix, name.into()),
            self.sample_size,
            f,
        );
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; its [`Bencher::iter`]
/// times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    nanos: u128,
}

impl Bencher {
    /// Time `routine`, keeping its output alive so it is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.nanos += start.elapsed().as_nanos();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher::default();
    // One untimed warmup, then the timed samples.
    f(&mut b);
    b = Bencher::default();
    for _ in 0..samples {
        f(&mut b);
    }
    let mean = if b.iters == 0 {
        0
    } else {
        b.nanos / u128::from(b.iters)
    };
    println!("{name}: {mean} ns/iter ({} iters)", b.iters);
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
