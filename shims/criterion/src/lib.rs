//! Minimal, API-compatible stand-in for the `criterion` bench harness.
//!
//! The build environment has no registry access, so this crate provides the
//! exact surface the repo's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is a
//! fixed number of timed wall-clock iterations, reported with the mean,
//! sample standard deviation, a 90% confidence interval on the mean, and a
//! Tukey-fence outlier count — a small slice of criterion's statistics.
//! The report line keeps the `{name}: {mean} ns/iter ({iters} iters` prefix
//! the CI greps pin; the statistics append after it on the same line.

use std::time::Instant;

/// Entry point handed to each bench function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.prefix, name.into()),
            self.sample_size,
            f,
        );
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; its [`Bencher::iter`]
/// times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, keeping its output alive so it is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed().as_nanos() as f64);
        std::hint::black_box(out);
    }
}

/// Iteration statistics: mean, sample standard deviation, 90% half-width
/// on the mean, and the count of Tukey-fence outliers (beyond 1.5×IQR from
/// the quartiles — criterion's "mild or worse" band).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Stats {
    /// Timed iterations.
    pub iters: u64,
    /// Mean nanoseconds per iteration.
    pub mean: f64,
    /// Sample standard deviation (ns); 0 with fewer than two iterations.
    pub stddev: f64,
    /// 90% confidence half-width on the mean (ns); `None` with fewer than
    /// two iterations.
    pub ci90: Option<f64>,
    /// Iterations outside the Tukey fences `[q1 - 1.5·iqr, q3 + 1.5·iqr]`.
    pub outliers: u64,
}

/// Two-sided 90% Student-t quantile for `df` degrees of freedom: exact
/// table through 30, normal-quantile correction beyond.
fn t_quantile_90(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796,
        1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717,
        1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    ];
    match df {
        0 => f64::NAN,
        1..=30 => TABLE[df - 1],
        _ => {
            let z = 1.645;
            z + (z * z * z + z) / (4.0 * df as f64)
        }
    }
}

/// Linear-interpolated quantile of an ascending-sorted sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
}

/// Compute the iteration statistics for one benchmark's samples (ns).
pub fn analyze(samples: &[f64]) -> Stats {
    if samples.is_empty() {
        return Stats::default();
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return Stats {
            iters: 1,
            mean,
            ..Stats::default()
        };
    }
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
    let stddev = var.sqrt();
    let ci90 = t_quantile_90(samples.len() - 1) * stddev / n.sqrt();
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let (q1, q3) = (quantile(&sorted, 0.25), quantile(&sorted, 0.75));
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let outliers = samples.iter().filter(|&&s| s < lo || s > hi).count() as u64;
    Stats {
        iters: samples.len() as u64,
        mean,
        stddev,
        ci90: Some(ci90),
        outliers,
    }
}

/// Render the report line: the greppable `{name}: {mean} ns/iter ({iters}
/// iters` prefix, then the appended statistics.
fn report_line(name: &str, s: Stats) -> String {
    let mean = s.mean.round() as u128;
    match s.ci90 {
        Some(hw) => format!(
            "{name}: {mean} ns/iter ({} iters, stddev {:.0} ns, ci90 ±{:.0} ns, \
             {} outliers)",
            s.iters, s.stddev, hw, s.outliers
        ),
        None => format!("{name}: {mean} ns/iter ({} iters)", s.iters),
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher::default();
    // One untimed warmup, then the timed samples.
    f(&mut b);
    b = Bencher::default();
    for _ in 0..samples {
        f(&mut b);
    }
    println!("{}", report_line(name, analyze(&b.samples)));
}

/// Collect bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_computes_mean_stddev_ci_and_outliers() {
        // Five spread samples plus one far outlier.
        let samples = [90.0, 95.0, 100.0, 105.0, 110.0, 1_000.0];
        let s = analyze(&samples);
        assert_eq!(s.iters, 6);
        assert!((s.mean - 250.0).abs() < 1e-9);
        assert!(s.stddev > 0.0);
        let hw = s.ci90.expect("two or more iterations give a CI");
        // t_{0.95,5} = 2.015: half-width is t·s/√n.
        assert!((hw - 2.015 * s.stddev / 6f64.sqrt()).abs() < 1e-9);
        assert_eq!(s.outliers, 1, "the 1000 ns sample sits past the fence");
        // Degenerate inputs stay well-defined.
        assert_eq!(analyze(&[]), Stats::default());
        let one = analyze(&[42.0]);
        assert_eq!((one.iters, one.mean), (1, 42.0));
        assert!(one.ci90.is_none());
        let flat = analyze(&[5.0; 4]);
        assert_eq!(flat.stddev, 0.0);
        assert_eq!(flat.outliers, 0);
    }

    #[test]
    fn report_line_keeps_the_greppable_prefix() {
        let s = analyze(&[100.0, 110.0, 90.0]);
        let line = report_line("opstep/join_build_probe_step_1200x6000", s);
        // The exact prefix the CI greps assert on, stats appended after.
        assert!(line
            .starts_with("opstep/join_build_probe_step_1200x6000: 100 ns/iter (3 iters"));
        assert!(line.contains("stddev"));
        assert!(line.contains("ci90 ±"));
        assert!(line.contains("outliers"));
        // A single iteration falls back to the bare legacy line.
        let single = report_line("x", analyze(&[7.0]));
        assert_eq!(single, "x: 7 ns/iter (1 iters)");
    }
}
