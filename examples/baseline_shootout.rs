//! The Section 5.1 shoot-out: Max vs MinMax vs Proportional vs PMM on the
//! memory-bottlenecked baseline, at one arrival rate.
//!
//! Reproduces one column of Figure 3 (plus the Figure 4/5 readings).

use pmm_core::prelude::*;
use pmm_examples::{secs_arg, summarize};

fn main() {
    let secs = secs_arg(3_600.0);
    let rate = 0.06;
    println!("Baseline workload at λ = {rate} queries/s, {secs:.0} simulated seconds\n");
    let policies: Vec<(&str, Box<dyn MemoryPolicy>)> = vec![
        ("Max", Box::new(MaxPolicy)),
        ("MinMax", Box::new(pmm_core::pmm::MinMaxPolicy::unlimited())),
        ("Proportional", Box::new(ProportionalPolicy::unlimited())),
        ("PMM", Box::new(Pmm::with_defaults())),
    ];
    for (name, policy) in policies {
        let mut cfg = SimConfig::baseline(rate);
        cfg.duration_secs = secs;
        let report = run_simulation(cfg, policy);
        summarize(name, &report);
    }
    println!("\nExpected shape (paper, Figure 3): MinMax ≈ PMM best; Proportional");
    println!("degrades under load; Max under-utilizes the disks and is worst.");
}
