//! Section 5.6: Small and Medium classes active simultaneously. PMM chooses
//! one global strategy, so whichever class dominates the arrival stream
//! sways it — minimizing the *system* miss ratio at the cost of a biased
//! Medium-class miss ratio (Figures 17–18).

use pmm_core::prelude::*;
use pmm_examples::secs_arg;

fn main() {
    let secs = secs_arg(3_600.0);
    println!("Medium fixed at λ = 0.065; sweeping the Small-class arrival rate.\n");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>8}",
        "Small λ", "system %", "Medium %", "Small %", "mode"
    );
    for small_rate in [0.0, 0.2, 0.4, 0.8, 1.2] {
        let mut cfg = SimConfig::multiclass(small_rate);
        cfg.duration_secs = secs;
        let report = run_simulation(cfg, Box::new(Pmm::with_defaults()));
        let medium = report.classes.first().map_or(0.0, |c| c.miss_pct());
        let small = report.classes.get(1).map_or(0.0, |c| c.miss_pct());
        let mode = report
            .trace
            .last()
            .map_or("Max".to_string(), |p| p.mode.to_string());
        println!(
            "{:>10.2} {:>10.1} {:>10.1} {:>10.1} {:>8}",
            small_rate,
            report.miss_pct(),
            medium,
            small,
            mode
        );
    }
    println!("\nAs the Small class dominates, PMM drifts toward Max mode — good for");
    println!("the system miss ratio, biased against the memory-hungry Medium class.");
}
