//! Quickstart: simulate the paper's baseline workload under PMM and print
//! the headline metrics.
//!
//! ```text
//! cargo run --release -p pmm-examples --example quickstart [-- --secs 36000]
//! ```

use pmm_core::prelude::*;
use pmm_examples::{secs_arg, summarize};

fn main() {
    // One class of hash joins: ‖R‖ ∈ [600, 1800] pages, ‖S‖ ∈ [3000, 9000],
    // slack ratios in [2.5, 7.5] — Table 6 of the paper.
    let mut cfg = SimConfig::baseline(0.06);
    cfg.duration_secs = secs_arg(3_600.0);

    // PMM with the Table 1 defaults: SampleSize 30, desirable utilization
    // [0.70, 0.85], adaptation tests at 95%, change detection at 99%.
    let report = run_simulation(cfg, Box::new(Pmm::with_defaults()));

    println!("PMM on the baseline workload (λ = 0.06 queries/s):");
    summarize("PMM", &report);
    println!("\nPMM decision trace:");
    for p in report.trace.iter().take(12) {
        println!(
            "  t={:>7.0}s  mode={:<7} target MPL={}",
            p.at.as_secs_f64(),
            p.mode.to_string(),
            p.target_mpl.map_or("unbounded".into(), |m| m.to_string()),
        );
    }
    if report.trace.len() > 12 {
        println!("  ... {} more decisions", report.trace.len() - 12);
    }
}
