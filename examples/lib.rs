//! Shared helpers for the runnable examples.

use pmm_core::prelude::*;

/// Print a one-line summary of a run, shared by the examples.
pub fn summarize(label: &str, r: &RunReport) {
    println!(
        "{label:<14} miss {:>5.1}%  MPL {:>5.1}  cpu {:>4.1}%  disk {:>4.1}%  wait {:>6.1}s  exec {:>6.1}s",
        r.miss_pct(),
        r.avg_mpl,
        100.0 * r.cpu_util,
        100.0 * r.disk_util,
        r.timings.waiting,
        r.timings.execution,
    );
}

/// Parse `--secs N` style overrides from the example command line.
pub fn secs_arg(default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
