//! Beyond the paper: bursty MMPP arrivals and multi-tenant memory quotas.
//!
//! Part 1 sweeps the MMPP burst ratio at the baseline's mean rate — the
//! same offered load, increasingly clustered — and shows how each policy
//! degrades. Part 2 runs an analytics (joins) + reporting (sorts) tenant
//! pair and compares one shared memory pool against hard partitions and
//! soft partitions with borrow-back.
//!
//! ```text
//! cargo run --release -p pmm-examples --example bursty_tenants [-- --secs N]
//! ```

use pmm_core::prelude::*;
use pmm_examples::{secs_arg, summarize};

fn main() {
    let secs = secs_arg(4_000.0);

    println!("== Bursty arrivals: MMPP at the baseline mean rate (λ̄ = 0.06) ==");
    for ratio in [1.0, 8.0, 16.0] {
        println!("burst ratio {ratio}:");
        for policy in ["Max", "MinMax", "PMM"] {
            let mut cfg = SimConfig::bursty(ratio);
            cfg.duration_secs = secs;
            let report = run_simulation(cfg, bench_policy(policy));
            summarize(policy, &report);
        }
    }

    println!();
    println!("== Multi-tenant quotas: analytics joins vs reporting sorts ==");
    let frac = 0.5;
    for flavor in ["shared", "hard", "soft"] {
        let mut cfg = SimConfig::multi_tenant(frac);
        cfg.duration_secs = secs;
        let partitions: Vec<PartitionSpec> = cfg
            .tenants
            .iter()
            .map(|t| PartitionSpec {
                quota: t.quota_pages,
                soft: t.soft,
            })
            .collect();
        let policy: Box<dyn MemoryPolicy> = match flavor {
            "shared" => Box::new(MinMaxPolicy::unlimited()),
            "hard" => Box::new(PartitionedPolicy::new(partitions)),
            _ => Box::new(PartitionedPolicy::new(partitions).soften()),
        };
        let report = run_simulation(cfg, policy);
        summarize(flavor, &report);
        for c in &report.classes {
            println!(
                "    tenant class {:<8} served {:>5}  miss {:>5.1}%",
                c.name,
                c.served,
                c.miss_pct()
            );
        }
    }
}

/// The three policies the burst sweep compares (avoids a bench dependency).
fn bench_policy(name: &str) -> Box<dyn MemoryPolicy> {
    match name {
        "Max" => Box::new(MaxPolicy),
        "MinMax" => Box::new(MinMaxPolicy::unlimited()),
        _ => Box::new(Pmm::with_defaults()),
    }
}
