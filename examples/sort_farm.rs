//! Section 5.5: the baseline experiment re-run with external sorts instead
//! of hash joins — memory is even more critical because sorts place less
//! load on the disks, so Max's conservative admission hurts more
//! (Figure 16).

use pmm_core::prelude::*;
use pmm_examples::{secs_arg, summarize};

fn main() {
    let secs = secs_arg(3_600.0);
    for rate in [0.06, 0.10] {
        println!("External sorts, λ = {rate} queries/s:");
        let policies: Vec<(&str, Box<dyn MemoryPolicy>)> = vec![
            ("Max", Box::new(MaxPolicy)),
            ("MinMax", Box::new(pmm_core::pmm::MinMaxPolicy::unlimited())),
            ("PMM", Box::new(Pmm::with_defaults())),
        ];
        for (name, policy) in policies {
            let mut cfg = SimConfig::sorts(rate);
            cfg.duration_secs = secs;
            summarize(name, &run_simulation(cfg, policy));
        }
        println!();
    }
}
