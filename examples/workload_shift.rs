//! Section 5.3: the workload alternates between Small and Medium join
//! classes every 2–5 simulated hours; PMM must detect each shift, restart
//! its statistics, and re-adapt (Figures 12–15).

use pmm_core::prelude::*;
use pmm_examples::secs_arg;

fn main() {
    let mut cfg = SimConfig::workload_changes();
    cfg.duration_secs = secs_arg(cfg.duration_secs);
    cfg.window_secs = 2_400.0;
    let report = run_simulation(cfg, Box::new(Pmm::with_defaults()));

    println!("PMM under the alternating Small/Medium workload:\n");
    println!(
        "{:>9} {:>8} {:>8} {:>8}",
        "t (s)", "served", "missed", "miss %"
    );
    for w in &report.windows {
        println!(
            "{:>9.0} {:>8} {:>8} {:>8.1}",
            w.t_secs,
            w.served,
            w.missed,
            w.miss_pct()
        );
    }
    println!("\nPer-class outcome:");
    for c in &report.classes {
        println!(
            "  {:<8} served {:>6}  miss {:>5.1}%",
            c.name,
            c.served,
            c.miss_pct()
        );
    }
    println!("\nMode/MPL decisions (Figure 15):");
    for p in &report.trace {
        println!(
            "  t={:>7.0}s  {:<7} target={}",
            p.at.as_secs_f64(),
            p.mode.to_string(),
            p.target_mpl.map_or("-".into(), |m| m.to_string()),
        );
    }
}
