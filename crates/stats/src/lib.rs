//! `stats` — the statistical toolkit PMM is built on.
//!
//! The paper uses three pieces of classical statistics, all of which are
//! implemented here from scratch:
//!
//! 1. **Least-squares polynomial fits** \[Drap81\] over *running sums*: PMM
//!    never stores individual `(MPL, miss-ratio)` observations, only the
//!    sums `k, Σx, Σx², Σx³, Σx⁴, Σy, Σxy, Σx²y` (Section 3.1.1) and the
//!    corresponding first-order sums for the utilization line
//!    (Section 3.1.2). [`fit::QuadFit`] and [`fit::LinFit`] mirror that
//!    representation exactly.
//! 2. **Curve-shape classification** (Types 1–4 of Section 3.1.1), in
//!    [`fit::CurveShape`].
//! 3. **Large-sample hypothesis tests** \[Devo91\] at a configurable
//!    confidence level, used for the Max→MinMax switching conditions
//!    (`AdaptConfLevel`, 95%) and workload-change detection
//!    (`ChangeConfLevel`, 99%). See [`hypothesis`].

pub mod fit;
pub mod hypothesis;
pub mod normal;

pub use fit::{CubicFit, CurveShape, LinFit, QuadFit};
pub use hypothesis::{mean_positive_test, means_differ_test, SampleSummary};
pub use normal::{cdf as normal_cdf, inverse_cdf as normal_inverse_cdf};
