//! Incremental least-squares fits over running sums \[Drap81\].
//!
//! Section 3.1.1 of the paper is explicit that PMM keeps only the sums
//! `k, Σx, Σx², Σx³, Σx⁴, Σy, Σxy, Σx²y` for the quadratic miss-ratio
//! projection, and `k, Σx, Σx², Σu, Σxu` for the utilization line. These
//! types store exactly those sums, so adding an observation is O(1) and
//! resetting after a detected workload change is trivial.
//!
//! The normal equations are solved with Gaussian elimination with partial
//! pivoting; near-singular systems (e.g. all observations at the same MPL)
//! are reported as `None` rather than returning garbage coefficients.

/// Shape of a fitted quadratic over the observed x-range — the four curve
/// types of Section 3.1.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CurveShape {
    /// Type 1: bowl — has an interior minimum; adopt the vertex.
    Bowl,
    /// Type 2: monotonically decreasing over the observed range — the
    /// optimum lies above the largest MPL tried.
    Decreasing,
    /// Type 3: monotonically increasing — the optimum lies below the
    /// smallest MPL tried.
    Increasing,
    /// Type 4: hill — the projection failed; fall back to the RU heuristic.
    Hill,
}

/// Coefficients of `y = a + b·x + c·x²`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quadratic {
    /// Constant term.
    pub a: f64,
    /// Linear coefficient.
    pub b: f64,
    /// Quadratic coefficient.
    pub c: f64,
}

impl Quadratic {
    /// Evaluate the polynomial at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.a + self.b * x + self.c * x * x
    }

    /// x-coordinate of the vertex (minimum when `c > 0`). `None` if the
    /// curve is degenerate (`c ≈ 0`).
    pub fn vertex(&self) -> Option<f64> {
        if self.c.abs() < 1e-12 {
            None
        } else {
            Some(-self.b / (2.0 * self.c))
        }
    }

    /// Classify the curve over the observed x-range `[lo, hi]`.
    ///
    /// The classification follows the sign of the derivative `b + 2cx` at
    /// the range endpoints: negative→negative is decreasing (Type 2),
    /// positive→positive increasing (Type 3), negative→positive a bowl
    /// (Type 1), positive→negative a hill (Type 4).
    pub fn classify(&self, lo: f64, hi: f64) -> CurveShape {
        let slope_lo = self.b + 2.0 * self.c * lo;
        let slope_hi = self.b + 2.0 * self.c * hi;
        match (slope_lo >= 0.0, slope_hi >= 0.0) {
            (false, false) => CurveShape::Decreasing,
            (true, true) => CurveShape::Increasing,
            (false, true) => CurveShape::Bowl,
            (true, false) => CurveShape::Hill,
        }
    }
}

/// Incremental least-squares fit of a quadratic.
#[derive(Clone, Debug, Default)]
pub struct QuadFit {
    k: u64,
    sx: f64,
    sx2: f64,
    sx3: f64,
    sx4: f64,
    sy: f64,
    sxy: f64,
    sx2y: f64,
    min_x: f64,
    max_x: f64,
}

impl QuadFit {
    /// An empty fit.
    pub fn new() -> Self {
        QuadFit {
            min_x: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Add an `(x, y)` observation.
    pub fn add(&mut self, x: f64, y: f64) {
        self.k += 1;
        let x2 = x * x;
        self.sx += x;
        self.sx2 += x2;
        self.sx3 += x2 * x;
        self.sx4 += x2 * x2;
        self.sy += y;
        self.sxy += x * y;
        self.sx2y += x2 * y;
        self.min_x = self.min_x.min(x);
        self.max_x = self.max_x.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.k
    }

    /// Smallest x observed so far (`+∞` when empty).
    pub fn min_x(&self) -> f64 {
        self.min_x
    }

    /// Largest x observed so far (`-∞` when empty).
    pub fn max_x(&self) -> f64 {
        self.max_x
    }

    /// Discard all observations (PMM restart after a workload change).
    pub fn reset(&mut self) {
        *self = QuadFit::new();
    }

    /// Solve the normal equations. Returns `None` with fewer than three
    /// observations or a (near-)singular system — e.g. fewer than three
    /// distinct x values.
    pub fn solve(&self) -> Option<Quadratic> {
        if self.k < 3 {
            return None;
        }
        let k = self.k as f64;
        let mut m = [
            [k, self.sx, self.sx2, self.sy],
            [self.sx, self.sx2, self.sx3, self.sxy],
            [self.sx2, self.sx3, self.sx4, self.sx2y],
        ];
        let sol = solve3(&mut m)?;
        Some(Quadratic {
            a: sol[0],
            b: sol[1],
            c: sol[2],
        })
    }
}

/// Incremental least-squares straight line `y = a + b·x`.
#[derive(Clone, Debug, Default)]
pub struct LinFit {
    k: u64,
    sx: f64,
    sx2: f64,
    sy: f64,
    sxy: f64,
}

impl LinFit {
    /// An empty fit.
    pub fn new() -> Self {
        LinFit::default()
    }

    /// Add an `(x, y)` observation.
    pub fn add(&mut self, x: f64, y: f64) {
        self.k += 1;
        self.sx += x;
        self.sx2 += x * x;
        self.sy += y;
        self.sxy += x * y;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.k
    }

    /// Discard all observations.
    pub fn reset(&mut self) {
        *self = LinFit::default();
    }

    /// `(intercept, slope)` of the fitted line. With exactly one
    /// observation, or all x identical, returns a horizontal line through
    /// the mean of y (which is the minimum-norm least-squares answer and the
    /// natural behaviour for the RU heuristic: "the best estimate of the
    /// utilization at this MPL is the average of what we saw").
    pub fn solve(&self) -> Option<(f64, f64)> {
        if self.k == 0 {
            return None;
        }
        let k = self.k as f64;
        let det = k * self.sx2 - self.sx * self.sx;
        if det.abs() < 1e-9 * (1.0 + self.sx2) {
            return Some((self.sy / k, 0.0));
        }
        let slope = (k * self.sxy - self.sx * self.sy) / det;
        let intercept = (self.sy - slope * self.sx) / k;
        Some((intercept, slope))
    }

    /// Predicted y at `x` from the fitted line.
    pub fn predict(&self, x: f64) -> Option<f64> {
        let (a, b) = self.solve()?;
        Some(a + b * x)
    }
}

/// Coefficients of `y = a + b·x + c·x² + d·x³` (ablation: the paper argues a
/// quadratic stabilizes faster than higher-order fits; we keep a cubic
/// around to measure that claim).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cubic {
    /// Constant term.
    pub a: f64,
    /// Linear coefficient.
    pub b: f64,
    /// Quadratic coefficient.
    pub c: f64,
    /// Cubic coefficient.
    pub d: f64,
}

impl Cubic {
    /// Evaluate the polynomial at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        ((self.d * x + self.c) * x + self.b) * x + self.a
    }

    /// The interior local minimum of the cubic within `[lo, hi]`, if any.
    pub fn interior_minimum(&self, lo: f64, hi: f64) -> Option<f64> {
        // y' = b + 2c x + 3d x^2
        let (p, q, r) = (3.0 * self.d, 2.0 * self.c, self.b);
        if p.abs() < 1e-12 {
            // Quadratic derivative: single critical point.
            if q.abs() < 1e-12 {
                return None;
            }
            let x = -r / q;
            // Minimum requires y'' = q > 0 there.
            return (q > 0.0 && x > lo && x < hi).then_some(x);
        }
        let disc = q * q - 4.0 * p * r;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let candidates = [(-q + sq) / (2.0 * p), (-q - sq) / (2.0 * p)];
        candidates
            .into_iter()
            .filter(|&x| x > lo && x < hi)
            // y'' = 2c + 6d x > 0 for a local minimum.
            .find(|&x| 2.0 * self.c + 6.0 * self.d * x > 0.0)
    }
}

/// Incremental least-squares fit of a cubic (ablation use only).
#[derive(Clone, Debug, Default)]
pub struct CubicFit {
    k: u64,
    s: [f64; 7], // Σ x^1..x^6
    sy: f64,
    sxy: f64,
    sx2y: f64,
    sx3y: f64,
    min_x: f64,
    max_x: f64,
}

impl CubicFit {
    /// An empty fit.
    pub fn new() -> Self {
        CubicFit {
            min_x: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Add an `(x, y)` observation.
    pub fn add(&mut self, x: f64, y: f64) {
        self.k += 1;
        let mut p = 1.0;
        for slot in &mut self.s {
            p *= x;
            *slot += p;
        }
        self.sy += y;
        self.sxy += x * y;
        self.sx2y += x * x * y;
        self.sx3y += x * x * x * y;
        self.min_x = self.min_x.min(x);
        self.max_x = self.max_x.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.k
    }

    /// Smallest x observed so far.
    pub fn min_x(&self) -> f64 {
        self.min_x
    }

    /// Largest x observed so far.
    pub fn max_x(&self) -> f64 {
        self.max_x
    }

    /// Solve the 4×4 normal equations; `None` if under-determined.
    pub fn solve(&self) -> Option<Cubic> {
        if self.k < 4 {
            return None;
        }
        let k = self.k as f64;
        let s = &self.s;
        let mut m = [
            [k, s[0], s[1], s[2], self.sy],
            [s[0], s[1], s[2], s[3], self.sxy],
            [s[1], s[2], s[3], s[4], self.sx2y],
            [s[2], s[3], s[4], s[5], self.sx3y],
        ];
        let sol = solve4(&mut m)?;
        Some(Cubic {
            a: sol[0],
            b: sol[1],
            c: sol[2],
            d: sol[3],
        })
    }
}

/// Gaussian elimination with partial pivoting for a 3×3 augmented system.
fn solve3(m: &mut [[f64; 4]; 3]) -> Option<[f64; 3]> {
    gauss::<3, 4>(m)
}

/// Gaussian elimination with partial pivoting for a 4×4 augmented system.
fn solve4(m: &mut [[f64; 5]; 4]) -> Option<[f64; 4]> {
    gauss::<4, 5>(m)
}

fn gauss<const N: usize, const M: usize>(m: &mut [[f64; M]; N]) -> Option<[f64; N]> {
    debug_assert_eq!(M, N + 1);
    for col in 0..N {
        // Partial pivot.
        let pivot_row = (col..N)
            .max_by(|&a, &b| {
                m[a][col]
                    .abs()
                    .partial_cmp(&m[b][col].abs())
                    .expect("sums are finite")
            })
            .expect("non-empty range");
        if m[pivot_row][col].abs() < 1e-9 {
            return None; // Singular / near-singular system.
        }
        m.swap(col, pivot_row);
        for row in (col + 1)..N {
            let factor = m[row][col] / m[col][col];
            let (pivot, rest) = m.split_at_mut(row);
            let pivot_row_vals = &pivot[col];
            for (c, cell) in rest[0].iter_mut().enumerate().skip(col) {
                *cell -= factor * pivot_row_vals[c];
            }
        }
    }
    let mut x = [0.0; N];
    for row in (0..N).rev() {
        let mut acc = m[row][N];
        for c in (row + 1)..N {
            acc -= m[row][c] * x[c];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn quad_fit_recovers_exact_polynomial() {
        let mut fit = QuadFit::new();
        // y = 2 - 3x + 0.5 x^2
        for x in 1..=8 {
            let x = x as f64;
            fit.add(x, 2.0 - 3.0 * x + 0.5 * x * x);
        }
        let q = fit.solve().expect("solvable");
        assert_close(q.a, 2.0, 1e-8);
        assert_close(q.b, -3.0, 1e-8);
        assert_close(q.c, 0.5, 1e-8);
        assert_close(q.vertex().unwrap(), 3.0, 1e-8);
    }

    #[test]
    fn quad_fit_underdetermined_returns_none() {
        let mut fit = QuadFit::new();
        fit.add(1.0, 1.0);
        fit.add(2.0, 2.0);
        assert!(fit.solve().is_none());
        // Three points at only two distinct x values: singular.
        fit.add(2.0, 3.0);
        assert!(fit.solve().is_none());
    }

    #[test]
    fn quad_fit_least_squares_of_noisy_data() {
        // Residuals of the LS solution must be orthogonal to the design:
        // check the fitted curve beats small perturbations of itself.
        let pts: Vec<(f64, f64)> = vec![
            (2.0, 0.40),
            (4.0, 0.22),
            (6.0, 0.12),
            (8.0, 0.10),
            (10.0, 0.14),
            (12.0, 0.25),
        ];
        let mut fit = QuadFit::new();
        for &(x, y) in &pts {
            fit.add(x, y);
        }
        let q = fit.solve().unwrap();
        let sse = |quad: &Quadratic| -> f64 {
            pts.iter().map(|&(x, y)| (quad.eval(x) - y).powi(2)).sum()
        };
        let base = sse(&q);
        for da in [-1e-3, 1e-3] {
            let perturbed = Quadratic { a: q.a + da, ..q };
            assert!(sse(&perturbed) >= base);
            let perturbed = Quadratic { b: q.b + da, ..q };
            assert!(sse(&perturbed) >= base);
            let perturbed = Quadratic { c: q.c + da, ..q };
            assert!(sse(&perturbed) >= base);
        }
        // And it should look like a bowl with a vertex around x≈8.
        assert_eq!(q.classify(2.0, 12.0), CurveShape::Bowl);
        let v = q.vertex().unwrap();
        assert!((6.0..10.0).contains(&v), "vertex {v}");
    }

    #[test]
    fn classify_four_types() {
        // Bowl: minimum at x=5.
        let bowl = Quadratic {
            a: 25.0,
            b: -10.0,
            c: 1.0,
        };
        assert_eq!(bowl.classify(0.0, 10.0), CurveShape::Bowl);
        // Same curve seen only on its descending side: Type 2.
        assert_eq!(bowl.classify(0.0, 4.0), CurveShape::Decreasing);
        // Ascending side only: Type 3.
        assert_eq!(bowl.classify(6.0, 10.0), CurveShape::Increasing);
        // Hill.
        let hill = Quadratic {
            a: 0.0,
            b: 10.0,
            c: -1.0,
        };
        assert_eq!(hill.classify(0.0, 10.0), CurveShape::Hill);
    }

    #[test]
    fn classify_degenerate_linear() {
        let down = Quadratic {
            a: 1.0,
            b: -0.1,
            c: 0.0,
        };
        assert_eq!(down.classify(1.0, 9.0), CurveShape::Decreasing);
        let up = Quadratic {
            a: 0.0,
            b: 0.1,
            c: 0.0,
        };
        assert_eq!(up.classify(1.0, 9.0), CurveShape::Increasing);
    }

    #[test]
    fn quad_reset_clears_everything() {
        let mut fit = QuadFit::new();
        for x in 0..5 {
            fit.add(x as f64, 1.0);
        }
        fit.reset();
        assert_eq!(fit.count(), 0);
        assert!(fit.solve().is_none());
        assert!(fit.min_x().is_infinite());
    }

    #[test]
    fn lin_fit_recovers_line() {
        let mut fit = LinFit::new();
        for x in 0..10 {
            let x = x as f64;
            fit.add(x, 3.0 + 0.25 * x);
        }
        let (a, b) = fit.solve().unwrap();
        assert_close(a, 3.0, 1e-9);
        assert_close(b, 0.25, 1e-9);
        assert_close(fit.predict(20.0).unwrap(), 8.0, 1e-9);
    }

    #[test]
    fn lin_fit_single_point_is_horizontal() {
        let mut fit = LinFit::new();
        fit.add(4.0, 0.6);
        let (a, b) = fit.solve().unwrap();
        assert_close(a, 0.6, 1e-12);
        assert_close(b, 0.0, 1e-12);
        assert_close(fit.predict(100.0).unwrap(), 0.6, 1e-12);
    }

    #[test]
    fn lin_fit_identical_x_is_mean() {
        let mut fit = LinFit::new();
        fit.add(5.0, 0.4);
        fit.add(5.0, 0.6);
        let (a, b) = fit.solve().unwrap();
        assert_close(a, 0.5, 1e-12);
        assert_close(b, 0.0, 1e-12);
    }

    #[test]
    fn lin_fit_empty_is_none() {
        assert!(LinFit::new().solve().is_none());
    }

    #[test]
    fn cubic_fit_recovers_exact_polynomial() {
        let mut fit = CubicFit::new();
        // y = 1 + x - 2x^2 + 0.1 x^3
        for x in 0..8 {
            let x = x as f64;
            fit.add(x, 1.0 + x - 2.0 * x * x + 0.1 * x * x * x);
        }
        let c = fit.solve().unwrap();
        assert_close(c.a, 1.0, 1e-6);
        assert_close(c.b, 1.0, 1e-6);
        assert_close(c.c, -2.0, 1e-6);
        assert_close(c.d, 0.1, 1e-6);
    }

    #[test]
    fn cubic_interior_minimum() {
        // y = (x-2)^2 (x+1) has a local min at x = 1... actually derivative
        // 3x^2 - 6x  ... use y = x^3 - 3x: y' = 3x^2 - 3, min at x=1.
        let c = Cubic {
            a: 0.0,
            b: -3.0,
            c: 0.0,
            d: 1.0,
        };
        let m = c.interior_minimum(-2.0, 2.0).unwrap();
        assert_close(m, 1.0, 1e-9);
        // Outside the window: none.
        assert!(c.interior_minimum(-0.5, 0.5).is_none());
    }

    #[test]
    fn gauss_rejects_singular() {
        let mut m = [
            [1.0, 2.0, 3.0, 1.0],
            [2.0, 4.0, 6.0, 2.0],
            [1.0, 1.0, 1.0, 1.0],
        ];
        assert!(solve3(&mut m).is_none());
    }

    #[test]
    fn paper_example_shape_sequence() {
        // Section 3.4: three points on the descending branch give a Type 2
        // curve; adding a fourth point past the optimum flips to Type 1.
        let mut fit = QuadFit::new();
        fit.add(2.0, 0.55); // point a (Max-mode realized MPL, high miss)
        fit.add(25.0, 0.35); // point b
        fit.add(32.0, 0.25); // point c
        let q = fit.solve().unwrap();
        assert_eq!(q.classify(fit.min_x(), fit.max_x()), CurveShape::Decreasing);

        fit.add(40.0, 0.45); // point d: past the optimum
        let q = fit.solve().unwrap();
        assert_eq!(q.classify(fit.min_x(), fit.max_x()), CurveShape::Bowl);
        let v = q.vertex().unwrap();
        assert!((20.0..36.0).contains(&v), "vertex {v}");
    }
}
