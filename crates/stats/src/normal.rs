//! The standard normal distribution.
//!
//! Large-sample tests compare a z statistic against a standard normal
//! quantile. We implement the CDF via the complementary error function
//! (Abramowitz & Stegun 7.1.26, |error| < 1.5e-7) and the inverse CDF via
//! Acklam's rational approximation (|relative error| < 1.15e-9), both of
//! which are far more accurate than the tests require.

/// CDF of the standard normal distribution, `P(Z ≤ z)`.
pub fn cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Complementary error function via Abramowitz & Stegun 7.1.26.
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736
                + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let result = poly * (-x * x).exp();
    if sign_negative {
        2.0 - result
    } else {
        result
    }
}

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// # Panics
/// Panics unless `p` lies strictly between 0 and 1.
pub fn inverse_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");

    // Acklam's algorithm: rational approximations on three regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// One-sided critical value for a test at the given confidence level, e.g.
/// `z_critical(0.95) ≈ 1.645`.
pub fn z_critical(confidence: f64) -> f64 {
    assert!(
        confidence > 0.5 && confidence < 1.0,
        "confidence must be in (0.5, 1), got {confidence}"
    );
    inverse_cdf(confidence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_points() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((cdf(1.0) - 0.841344746).abs() < 1e-6);
        assert!((cdf(-1.0) - 0.158655254).abs() < 1e-6);
        assert!((cdf(1.959964) - 0.975).abs() < 1e-6);
        assert!((cdf(2.326348) - 0.99).abs() < 1e-6);
    }

    #[test]
    fn cdf_tails() {
        assert!(cdf(-8.0) < 1e-14);
        assert!(cdf(8.0) > 1.0 - 1e-14);
    }

    #[test]
    fn inverse_matches_known_quantiles() {
        assert!((inverse_cdf(0.95) - 1.6448536).abs() < 1e-6);
        assert!((inverse_cdf(0.99) - 2.3263479).abs() < 1e-6);
        assert!((inverse_cdf(0.975) - 1.9599640).abs() < 1e-6);
        assert!((inverse_cdf(0.5)).abs() < 1e-9);
    }

    #[test]
    fn inverse_is_inverse_of_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let z = inverse_cdf(p);
            assert!((cdf(z) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn z_critical_levels() {
        assert!((z_critical(0.95) - 1.645).abs() < 1e-3);
        assert!((z_critical(0.99) - 2.326).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1)")]
    fn inverse_rejects_out_of_range() {
        inverse_cdf(1.0);
    }
}
