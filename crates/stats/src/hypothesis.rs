//! Large-sample hypothesis tests \[Devo91, pp. 283–301, 326–335\].
//!
//! PMM uses two kinds of tests:
//!
//! * **One-sided mean tests** (Section 3.2): "there is a non-zero admission
//!   waiting time" and "the average execution time is shorter than the time
//!   constraint" are both tested at `AdaptConfLevel` (default 95%).
//! * **Two-sided difference-of-means tests** (Section 3.3): each monitored
//!   workload characteristic is compared against its last observed value at
//!   `ChangeConfLevel` (default 99%); a significant difference triggers a
//!   PMM restart.
//!
//! All tests operate on [`SampleSummary`] — mean, variance and count — so no
//! raw observations are retained, matching the paper's storage discipline.

use crate::normal::z_critical;

/// Sufficient statistics of one sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SampleSummary {
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Number of observations.
    pub n: u64,
}

impl SampleSummary {
    /// Summary of a sample with the given statistics.
    pub fn new(mean: f64, variance: f64, n: u64) -> Self {
        SampleSummary { mean, variance, n }
    }

    /// Standard error of the sample mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance / self.n as f64).sqrt()
        }
    }

    /// Pool another sample into this one (parallel Welford combination).
    /// Used by PMM to accumulate evidence across feedback batches until the
    /// large-sample threshold is reached.
    pub fn merge(&mut self, other: &SampleSummary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * nb / n;
        // Convert unbiased variances back to sums of squared deviations.
        let m2a = self.variance * (na - 1.0).max(0.0);
        let m2b = other.variance * (nb - 1.0).max(0.0);
        let m2 = m2a + m2b + delta * delta * na * nb / n;
        self.mean = mean;
        self.variance = if n > 1.0 { m2 / (n - 1.0) } else { 0.0 };
        self.n += other.n;
    }

    /// Reset to the empty sample.
    pub fn reset(&mut self) {
        *self = SampleSummary::default();
    }
}

/// Minimum sample size before a large-sample (z) test is considered valid.
/// Devore's rule of thumb is n ≥ 30 — not coincidentally the paper's default
/// `SampleSize`.
pub const LARGE_SAMPLE_MIN: u64 = 30;

/// One-sided test of H₀: μ ≤ 0 against H₁: μ > 0.
///
/// Returns `true` when H₀ is rejected at the given confidence level — i.e.
/// the sample demonstrates the mean is positive. Samples smaller than
/// [`LARGE_SAMPLE_MIN`] never reject (the normal approximation would not be
/// trustworthy, so PMM stays conservative and does not switch strategies on
/// thin evidence).
pub fn mean_positive_test(sample: SampleSummary, confidence: f64) -> bool {
    if sample.n < LARGE_SAMPLE_MIN {
        return false;
    }
    let se = sample.std_error();
    if se == 0.0 {
        // Zero variance: every observation equals the mean.
        return sample.mean > 0.0;
    }
    let z = sample.mean / se;
    z > z_critical(confidence)
}

/// Two-sided test of H₀: μ₁ = μ₂ against H₁: μ₁ ≠ μ₂ for two independent
/// samples.
///
/// Returns `true` when the means differ significantly at the given
/// confidence level. Again, under-sized samples never reject.
pub fn means_differ_test(a: SampleSummary, b: SampleSummary, confidence: f64) -> bool {
    if a.n < LARGE_SAMPLE_MIN || b.n < LARGE_SAMPLE_MIN {
        return false;
    }
    let se2 = a.variance / a.n as f64 + b.variance / b.n as f64;
    if se2 <= 0.0 {
        return a.mean != b.mean;
    }
    let z = (a.mean - b.mean) / se2.sqrt();
    // Two-sided: split the rejection probability across both tails.
    let two_sided = z_critical(0.5 + confidence / 2.0);
    z.abs() > two_sided
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_mean_detected() {
        // Mean 4, sd 2, n = 100 → z = 20: overwhelmingly positive.
        let s = SampleSummary::new(4.0, 4.0, 100);
        assert!(mean_positive_test(s, 0.95));
    }

    #[test]
    fn zero_mean_not_rejected() {
        let s = SampleSummary::new(0.0, 4.0, 100);
        assert!(!mean_positive_test(s, 0.95));
    }

    #[test]
    fn small_positive_mean_with_large_noise_not_rejected() {
        // z = 0.05 / (10/10) = 0.05 — no evidence.
        let s = SampleSummary::new(0.05, 100.0, 100);
        assert!(!mean_positive_test(s, 0.95));
    }

    #[test]
    fn borderline_depends_on_confidence() {
        // z = 2.0: rejected at 95% (1.645) but not at 99% (2.326).
        let s = SampleSummary::new(2.0, 100.0, 100);
        assert!(mean_positive_test(s, 0.95));
        assert!(!mean_positive_test(s, 0.99));
    }

    #[test]
    fn under_sized_sample_never_rejects() {
        let s = SampleSummary::new(1000.0, 1.0, LARGE_SAMPLE_MIN - 1);
        assert!(!mean_positive_test(s, 0.95));
    }

    #[test]
    fn zero_variance_positive() {
        let s = SampleSummary::new(3.0, 0.0, 50);
        assert!(mean_positive_test(s, 0.95));
        let s0 = SampleSummary::new(0.0, 0.0, 50);
        assert!(!mean_positive_test(s0, 0.95));
    }

    #[test]
    fn difference_detected_when_means_far_apart() {
        let a = SampleSummary::new(1200.0, 10_000.0, 60);
        let b = SampleSummary::new(110.0, 1_000.0, 60);
        assert!(means_differ_test(a, b, 0.99));
    }

    #[test]
    fn no_difference_for_identical_distributions() {
        let a = SampleSummary::new(5.0, 4.0, 100);
        let b = SampleSummary::new(5.1, 4.0, 100);
        // Difference 0.1, se = sqrt(0.08) ≈ 0.28 → z ≈ 0.35.
        assert!(!means_differ_test(a, b, 0.99));
    }

    #[test]
    fn two_sided_is_stricter_than_one_sided() {
        // z = 2.0 between samples: two-sided 95% needs 1.96, 99% needs 2.576.
        let a = SampleSummary::new(2.0, 50.0, 100);
        let b = SampleSummary::new(0.0, 50.0, 100);
        assert!(means_differ_test(a, b, 0.95));
        assert!(!means_differ_test(a, b, 0.99));
    }

    #[test]
    fn merge_pools_evidence() {
        // Two 20-observation samples merge into one of 40 — enough for the
        // large-sample test where neither alone was.
        let mut a = SampleSummary::new(5.0, 4.0, 20);
        let b = SampleSummary::new(5.0, 4.0, 20);
        assert!(
            !mean_positive_test(a, 0.95),
            "20 obs is under the threshold"
        );
        a.merge(&b);
        assert_eq!(a.n, 40);
        assert!((a.mean - 5.0).abs() < 1e-12);
        assert!(mean_positive_test(a, 0.95));
    }

    #[test]
    fn merge_matches_direct_computation() {
        // Merge {1,2,3} with {10, 20}: mean 7.2, var of all five = 63.7.
        let mut a = SampleSummary::new(2.0, 1.0, 3);
        let b = SampleSummary::new(15.0, 50.0, 2);
        a.merge(&b);
        assert_eq!(a.n, 5);
        assert!((a.mean - 7.2).abs() < 1e-12, "mean {}", a.mean);
        assert!((a.variance - 63.7).abs() < 1e-9, "var {}", a.variance);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = SampleSummary::new(3.0, 2.0, 10);
        a.merge(&SampleSummary::default());
        assert_eq!(a, SampleSummary::new(3.0, 2.0, 10));
        let mut e = SampleSummary::default();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn change_detection_conservatism_at_99() {
        // The paper sets ChangeConfLevel high "to reduce the chances of PMM
        // wrongly reacting to inherent workload fluctuations": a 2.3-sigma
        // wiggle must NOT trigger at 99% two-sided.
        let a = SampleSummary::new(0.0, 1.0, 30);
        let zstat = 2.3;
        let b = SampleSummary::new(zstat * (2.0f64 / 30.0).sqrt(), 1.0, 30);
        assert!(!means_differ_test(a, b, 0.99));
        assert!(means_differ_test(a, b, 0.95));
    }
}
