//! The operator protocol: memory-adaptive query operators as pure state
//! machines.
//!
//! Operators (hash joins, external sorts) are modelled as state machines
//! that emit [`Action`]s — CPU bursts, page-range I/Os, temp-file
//! management. Two drive protocols exist:
//!
//! * **Single-step** ([`Operator::step`]): the simulator performs the
//!   returned action (which takes simulated time) and calls `step` again
//!   when it completes. This is the compatibility protocol the standalone
//!   estimator and the unit tests use.
//! * **Run-length** ([`Operator::plan_run`] / [`Operator::sync_run`]): the
//!   operator plans a whole *run* of homogeneous actions into an
//!   [`ActionRun`] in one call, advancing its state machine past all of
//!   them eagerly. The engine then schedules the run's per-block I/O
//!   completions straight off the buffer without re-entering the operator.
//!   A run is valid until the next phase transition (runs end at
//!   [`Action::Parked`] / [`Action::Finished`]) or until an asynchronous
//!   [`Operator::set_allocation`] lands; in the latter case the engine
//!   calls `sync_run` first, which rolls the operator back to the run's
//!   consumption point (checkpoint + deterministic replay), so the
//!   allocation change observes *exactly* the state the single-step
//!   protocol would have had. The two protocols are action-stream
//!   identical; `crates/exec/tests/run_protocol_model.rs` pins that on
//!   random allocation schedules.
//!
//! Memory allocation changes arrive asynchronously through
//! [`Operator::set_allocation`] between steps (or between consumed run
//! actions); the operator must adapt (contract or expand, per
//! \[Pang93a, Pang93b\]).
//!
//! Keeping the operators pure (no clock, no queues, no references into the
//! simulator) makes them unit-testable in isolation: the tests drive them
//! with a trivial executor and check I/O-volume invariants.

use storage::{FileId, IoKind};

/// CPU instruction costs from Table 4 of the paper.
pub mod cost {
    /// Start an I/O operation.
    pub const START_IO: u64 = 1_000;
    /// Initiate a sort or join.
    pub const INIT_OP: u64 = 40_000;
    /// Terminate a sort or join.
    pub const TERMINATE_OP: u64 = 10_000;
    /// Hash a tuple and insert it into a hash table.
    pub const HASH_INSERT: u64 = 100;
    /// Hash a tuple and probe the hash table.
    pub const HASH_PROBE: u64 = 200;
    /// Hash a tuple and copy it to an output buffer.
    pub const HASH_COPY: u64 = 100;
    /// Copy a tuple to an output buffer (sorting).
    pub const SORT_COPY: u64 = 64;
    /// Compare two keys.
    pub const KEY_COMPARE: u64 = 50;
}

/// Static execution-model parameters shared by all operators.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Tuples per page. With 8 KB pages and 200-byte tuples: 40.
    pub tuples_per_page: u32,
    /// Pages fetched per sequential blocked I/O (`BlockSize`, Table 3).
    pub block_pages: u32,
    /// Hash-table space overhead (`F` of \[Shap86\]); 1.1 matches the
    /// paper's baseline numbers (max demand ≈ 1321 pages for ‖R‖ = 1200).
    pub fudge_factor: f64,
    /// Disable the sort's in-memory fast path so every sort forms runs and
    /// merges even at its maximum allocation. The paper's text says sorts
    /// given maximum memory "read their operand relation(s) once and
    /// produce results directly", so the default is `false`; the flag
    /// exists because the paper's reported sort execution times (Figure 16)
    /// are only consistent with a two-phase sort, and EXPERIMENTS.md
    /// documents both variants.
    pub always_two_phase_sort: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            tuples_per_page: 40,
            block_pages: 6,
            fudge_factor: 1.1,
            always_two_phase_sort: false,
        }
    }
}

/// A file as seen from inside an operator: either a base relation (known
/// globally) or one of the operator's own temporary files, addressed by a
/// small slot number. The simulator maps slots to real [`FileId`]s when it
/// performs [`Action::CreateTemp`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FileRef {
    /// A base relation.
    Base(FileId),
    /// Temp slot `n` of this operator.
    Temp(u32),
}

/// A page-range I/O request emitted by an operator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoRequest {
    /// Target file.
    pub file: FileRef,
    /// First page (file-relative).
    pub first_page: u32,
    /// Number of pages (≥ 1).
    pub pages: u32,
    /// Read or write.
    pub kind: IoKind,
    /// Sequential prefetch eligible? False only for merge-phase reads
    /// (Section 4.2).
    pub prefetch: bool,
}

/// One unit of work emitted by an operator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// Burn CPU for this many instructions.
    Cpu(u64),
    /// Perform a disk access.
    Io(IoRequest),
    /// Allocate a temp file of the given size and bind it to `slot`.
    /// Metadata-only: consumes no simulated time.
    CreateTemp {
        /// Operator-local slot to bind.
        slot: u32,
        /// Capacity in pages.
        pages: u32,
    },
    /// Release the temp file bound to `slot`. Metadata-only.
    DropTemp {
        /// Slot to release.
        slot: u32,
    },
    /// The operator holds no memory and cannot advance until it is
    /// re-granted at least its minimum allocation.
    Parked,
    /// Execution complete; the simulator should release all resources.
    Finished,
}

/// Upper bound on the number of actions one [`Operator::plan_run`] call
/// may emit. Bounds the replay work `sync_run` performs when an allocation
/// change interrupts a partially consumed run.
pub const RUN_BATCH: usize = 64;

/// A closed-form run descriptor: `count` repetitions of an identical
/// I/O-then-CPU action pair over a sequential page range. This is the unit
/// the operators' `plan_run` implementations reason in for their
/// homogeneous phases (build/probe scans without spooling, in-memory
/// scans): the whole stretch is described by per-action cost and shape and
/// expanded into the [`ActionRun`] without re-entering the operator state
/// machine per action.
///
/// The CPU burst follows its I/O because that is the single-step
/// protocol's order: a scan step issues the read and *owes* the CPU, which
/// the next step drains. Expansion preserves that order exactly, so the
/// action stream is indistinguishable from per-step planning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunDescriptor {
    /// Number of action pairs.
    pub count: u32,
    /// CPU instructions owed after each I/O (includes the start-I/O cost).
    pub cpu: u64,
    /// First I/O of the stretch; subsequent ones advance `first_page` by
    /// `stride`.
    pub io: IoRequest,
    /// Page advance between consecutive I/Os.
    pub stride: u32,
}

impl RunDescriptor {
    /// Expand into `run`: `count` repetitions of the I/O (advancing
    /// `first_page` by `stride`), each followed by its owed CPU burst.
    pub fn expand(&self, run: &mut ActionRun) {
        let mut io = self.io;
        for _ in 0..self.count {
            run.push(Action::Io(io));
            run.push(Action::Cpu(self.cpu));
            io.first_page += self.stride;
        }
    }
}

/// A planned run of operator actions plus a consumption cursor.
///
/// The engine pops actions with [`ActionRun::pop`]; the cursor records how
/// far execution got so [`Operator::sync_run`] can reconcile the operator's
/// eagerly-advanced state with reality when the run is abandoned early.
/// The buffer is reused run after run, so it allocates only until warm.
#[derive(Clone, Debug, Default)]
pub struct ActionRun {
    actions: Vec<Action>,
    next: usize,
}

impl ActionRun {
    /// An empty run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all planned actions and reset the cursor.
    pub fn clear(&mut self) {
        self.actions.clear();
        self.next = 0;
    }

    /// Append an action during planning.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Consume the next planned action, if any.
    pub fn pop(&mut self) -> Option<Action> {
        let a = self.actions.get(self.next).copied();
        if a.is_some() {
            self.next += 1;
        }
        a
    }

    /// Number of actions consumed so far.
    pub fn consumed(&self) -> usize {
        self.next
    }

    /// Total number of planned actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when no actions were planned.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// True when planned actions remain unconsumed.
    pub fn has_pending(&self) -> bool {
        self.next < self.actions.len()
    }
}

/// A memory-adaptive operator.
pub trait Operator {
    /// Maximum useful memory (pages): enough to run in one pass.
    fn max_memory(&self) -> u32;
    /// Minimum memory (pages) required to make progress at all.
    fn min_memory(&self) -> u32;
    /// Current allocation (pages).
    fn allocation(&self) -> u32;
    /// Change the allocation. `pages` must be 0 (suspend) or ≥
    /// `min_memory()`; the operator adapts its strategy (contracting
    /// partitions, splitting merge steps, ...) on the next `step`.
    fn set_allocation(&mut self, pages: u32);
    /// Produce the next action. Must be called again only after the
    /// previous action completed.
    fn step(&mut self) -> Action;
    /// Plan the next run of actions into `run` (cleared first), advancing
    /// the operator past all of them. Runs end early at a decision boundary
    /// ([`Action::Parked`] / [`Action::Finished`]) and never exceed
    /// [`RUN_BATCH`] actions. The default plans a single [`Operator::step`],
    /// which keeps hand-written test operators on the old protocol.
    ///
    /// Contract: after a `plan_run`, the caller must either consume the run
    /// to exhaustion or call [`Operator::sync_run`] before the next
    /// `set_allocation` / `plan_run`.
    fn plan_run(&mut self, run: &mut ActionRun) {
        run.clear();
        run.push(self.step());
    }
    /// Roll internal state back to `run`'s consumption point, making a
    /// subsequent [`Operator::set_allocation`] or [`Operator::plan_run`]
    /// observe exactly the state the single-step protocol would have had
    /// after `run.consumed()` actions. The default is a no-op, correct for
    /// the default single-action `plan_run` (a one-action run the caller
    /// holds is always fully consumed).
    fn sync_run(&mut self, run: &ActionRun) {
        debug_assert!(
            !run.has_pending(),
            "multi-action runs require a real sync_run implementation"
        );
    }
    /// How many times the allocation changed mid-execution (Figure 7).
    fn fluctuations(&self) -> u32;
    /// Pages of operand relation(s) this operator reads (workload-change
    /// characteristic 2 is derived from this).
    fn operand_pages(&self) -> u32;
}

/// Number of blocked I/Os needed to sequentially read `pages` pages.
pub fn blocks_for(pages: u32, block: u32) -> u32 {
    pages.div_ceil(block)
}

/// Iterator over `(first_page, pages)` block ranges of a `len`-page file.
pub fn block_ranges(len: u32, block: u32) -> impl Iterator<Item = (u32, u32)> {
    (0..blocks_for(len, block)).map(move |i| {
        let first = i * block;
        (first, block.min(len - first))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_for_rounds_up() {
        assert_eq!(blocks_for(12, 6), 2);
        assert_eq!(blocks_for(13, 6), 3);
        assert_eq!(blocks_for(1, 6), 1);
        assert_eq!(blocks_for(0, 6), 0);
    }

    #[test]
    fn block_ranges_cover_file_exactly() {
        let ranges: Vec<_> = block_ranges(14, 6).collect();
        assert_eq!(ranges, vec![(0, 6), (6, 6), (12, 2)]);
        let total: u32 = ranges.iter().map(|&(_, p)| p).sum();
        assert_eq!(total, 14);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = ExecConfig::default();
        assert_eq!(c.block_pages, 6);
        assert!((c.fudge_factor - 1.1).abs() < 1e-12);
    }
}
