//! Memory-adaptive external sorting \[Pang93b\].
//!
//! The algorithm has the usual two phases:
//!
//! 1. **Run formation** — replacement selection over a heap of
//!    `W − 1` workspace pages (one page is the I/O buffer) turns the operand
//!    relation into sorted runs of expected length `2·(W − 1)` pages; with
//!    `W ≥ ‖R‖` the relation is sorted entirely in memory and no temp I/O
//!    occurs at all (the *maximum* memory demand of a sort is its relation
//!    size, Section 3.2; the *minimum* is 3 pages).
//! 2. **Merging** — repeatedly merge up to `W − 1` runs into one until a
//!    single run remains; the final merge streams its output to the
//!    consumer, so it does not write. Merge-phase reads are single-page and
//!    non-prefetching (Section 4.2 exempts the merge phase from the disk
//!    cache's block prefetch).
//!
//! Memory adaptivity (the \[Pang93b\] contribution): the merge fan-in is
//! recomputed at every merge step, so extra buffers *combine* steps;
//! a reduction mid-step *splits* it — output produced so far becomes a run
//! of its own and the unread source remainders return to the run list.
//! Setting the allocation to zero parks the operator at the next page
//! boundary after flushing buffered output.

use crate::op::{
    cost, Action, ActionRun, ExecConfig, FileRef, IoRequest, Operator, RunDescriptor,
    RUN_BATCH,
};
use storage::{FileId, IoKind};

/// Temp slot holding the sorted runs.
const RUN_SLOT: u32 = 0;

#[derive(Clone, Copy, Debug, PartialEq, Default)]
enum State {
    #[default]
    Init,
    /// Decide in-memory vs external after the initial grant.
    Dispatch,
    /// Read everything, sort in memory, stream output.
    InMemoryScan,
    CreateRuns,
    RunFormation,
    Merge,
    Terminate,
    DropRuns,
    Done,
}

/// One in-progress merge step.
#[derive(Debug, PartialEq)]
struct MergeStep {
    /// `(start_page, remaining_pages)` of each source run in the temp file.
    sources: Vec<(u32, u32)>,
    /// Which source the next read comes from (round-robin).
    next_source: usize,
    /// Pages written to the output run so far.
    out_written: u32,
    /// Buffered output pages not yet written.
    out_accum: u32,
    /// Start page of the output run.
    out_start: u32,
    /// Final merge: stream output, no writes.
    is_final: bool,
    /// Fan-in when the step started (for CPU costing).
    fan: u32,
    /// CPU per merged page at this step's fan-in — fixed for the step's
    /// lifetime, so it is derived once here instead of per read.
    cpu_per_page: u64,
}

impl Clone for MergeStep {
    fn clone(&self) -> Self {
        MergeStep {
            sources: self.sources.clone(),
            ..*self
        }
    }

    /// Reuse `self.sources`' capacity: the run-protocol checkpoint clones
    /// the in-flight step on every `plan_run`, which must not allocate in
    /// steady state.
    fn clone_from(&mut self, source: &Self) {
        self.sources.clone_from(&source.sources);
        self.next_source = source.next_source;
        self.out_written = source.out_written;
        self.out_accum = source.out_accum;
        self.out_start = source.out_start;
        self.is_final = source.is_final;
        self.fan = source.fan;
        self.cpu_per_page = source.cpu_per_page;
    }
}

/// The memory-adaptive external sort operator.
pub struct ExternalSort {
    cfg: ExecConfig,
    file: FileId,
    r_pages: u32,
    alloc: u32,
    state: State,
    pending_cpu: u64,
    /// Progress of the run-formation scan.
    scan_pos: u32,
    /// Pages read but not yet emitted to the current run.
    form_accum: u32,
    /// Length of the run currently being produced.
    current_run: u32,
    /// Completed runs: `(start_page, pages)` in the temp file.
    runs: Vec<(u32, u32)>,
    /// Append position in the temp file.
    temp_write_pos: u32,
    merge: Option<MergeStep>,
    /// Set when an allocation change invalidates the in-flight merge step.
    split_requested: bool,
    fluctuations: u32,
    started: bool,
    /// Cached [`ExternalSort::formation_cpu_per_page`]: a function of the
    /// workspace only, re-derived on `set_allocation` instead of per block.
    formation_cpu: u64,
    /// Run-protocol checkpoint (see [`Operator::sync_run`]); reused across
    /// plans so the run list's capacity is not reallocated per batch.
    saved: SortCheckpoint,
}

/// Every field [`ExternalSort::step`] or `set_allocation` mutates; `cfg`,
/// `file`, `r_pages` are construction-time constants and `formation_cpu` is
/// re-derived from `alloc`. Keep in lockstep with the struct — the
/// run-protocol model test catches a missed field.
#[derive(Clone, Debug, Default)]
struct SortCheckpoint {
    alloc: u32,
    state: State,
    pending_cpu: u64,
    scan_pos: u32,
    form_accum: u32,
    current_run: u32,
    runs: Vec<(u32, u32)>,
    temp_write_pos: u32,
    merge: Option<MergeStep>,
    split_requested: bool,
    fluctuations: u32,
    started: bool,
    /// True only between a `plan_run` and its run's retirement.
    valid: bool,
}

impl ExternalSort {
    /// Sort of the `r_pages`-page relation `file`.
    ///
    /// # Panics
    /// Panics on an empty relation.
    pub fn new(cfg: ExecConfig, file: FileId, r_pages: u32) -> Self {
        assert!(r_pages > 0, "cannot sort an empty relation");
        let mut sort = ExternalSort {
            cfg,
            file,
            r_pages,
            alloc: 0,
            state: State::Init,
            pending_cpu: 0,
            scan_pos: 0,
            form_accum: 0,
            current_run: 0,
            runs: Vec::new(),
            temp_write_pos: 0,
            merge: None,
            split_requested: false,
            fluctuations: 0,
            started: false,
            formation_cpu: 0,
            saved: SortCheckpoint::default(),
        };
        sort.formation_cpu = sort.formation_cpu_per_page();
        sort
    }

    /// Maximum memory demand: the relation size (Section 3.2).
    pub fn max_memory_for(r_pages: u32) -> u32 {
        r_pages
    }

    /// Minimum memory demand: three pages (two merge inputs + one output).
    pub fn min_memory_for() -> u32 {
        3
    }

    /// Workspace pages available to the heap / merge inputs (one page is
    /// reserved as the output buffer).
    fn workspace(&self) -> u32 {
        self.alloc.saturating_sub(1).max(2)
    }

    /// Expected replacement-selection run length: twice the heap size.
    fn target_run_len(&self) -> u32 {
        2 * self.workspace()
    }

    /// CPU cost per input page during run formation: each tuple is copied
    /// once and sifts through a heap of `workspace × tuples_per_page`
    /// entries.
    fn formation_cpu_per_page(&self) -> u64 {
        let heap_tuples =
            (self.workspace() as u64 * self.cfg.tuples_per_page as u64).max(2);
        let log = 64 - heap_tuples.leading_zeros() as u64;
        self.cfg.tuples_per_page as u64 * (cost::SORT_COPY + cost::KEY_COMPARE * log)
    }

    /// CPU per page merged with fan-in `fan`.
    fn merge_cpu_per_page(&self, fan: u32) -> u64 {
        let log = (32 - (fan.max(2) - 1).leading_zeros()) as u64;
        self.cfg.tuples_per_page as u64 * (cost::SORT_COPY + cost::KEY_COMPARE * log)
    }

    fn temp_capacity(&self) -> u32 {
        2 * self.r_pages + 2 * self.cfg.block_pages
    }

    /// Append `pages` to the temp file at the current write position.
    fn temp_write(&mut self, pages: u32) -> Action {
        let first = self.temp_write_pos % self.temp_capacity();
        self.temp_write_pos = self.temp_write_pos.wrapping_add(pages);
        self.pending_cpu += cost::START_IO;
        Action::Io(IoRequest {
            file: FileRef::Temp(RUN_SLOT),
            first_page: first,
            pages,
            kind: IoKind::Write,
            prefetch: true,
        })
    }

    /// Abort the in-flight merge step after an allocation change: output so
    /// far becomes a run, unread source remainders go back on the run list.
    fn split_step(&mut self) {
        let Some(step) = self.merge.take() else {
            return;
        };
        for &(start, remaining) in &step.sources {
            if remaining > 0 {
                self.runs.push((start, remaining));
            }
        }
        let produced = step.out_written + step.out_accum;
        if produced > 0 && !step.is_final {
            self.runs.push((step.out_start, produced));
        }
        // A split final merge has streamed `produced` pages to the consumer
        // already; only the remainder still needs merging.
    }

    /// Begin the next merge step given the current allocation.
    fn begin_merge_step(&mut self) {
        debug_assert!(self.merge.is_none());
        let fan = self.workspace().min(self.runs.len() as u32).max(2);
        let take = (fan as usize).min(self.runs.len());
        let sources: Vec<(u32, u32)> = self.runs.drain(..take).collect();
        let is_final = self.runs.is_empty();
        self.merge = Some(MergeStep {
            sources,
            next_source: 0,
            out_written: 0,
            out_accum: 0,
            out_start: self.temp_write_pos % self.temp_capacity(),
            is_final,
            fan,
            cpu_per_page: self.merge_cpu_per_page(fan),
        });
    }

    /// Save the mutable state for the run protocol. `clone_from` reuses the
    /// checkpoint's buffers, so steady-state planning allocates nothing for
    /// the run list.
    fn snapshot(&mut self) {
        self.saved.alloc = self.alloc;
        self.saved.state = self.state;
        self.saved.pending_cpu = self.pending_cpu;
        self.saved.scan_pos = self.scan_pos;
        self.saved.form_accum = self.form_accum;
        self.saved.current_run = self.current_run;
        self.saved.runs.clone_from(&self.runs);
        self.saved.temp_write_pos = self.temp_write_pos;
        self.saved.merge.clone_from(&self.merge);
        self.saved.split_requested = self.split_requested;
        self.saved.fluctuations = self.fluctuations;
        self.saved.started = self.started;
        self.saved.valid = true;
    }

    /// Single-step once into `run`; false ends the batch (decision boundary).
    fn push_step(&mut self, run: &mut ActionRun) -> bool {
        let action = self.step();
        run.push(action);
        !matches!(action, Action::Parked | Action::Finished)
    }

    /// Plan the in-memory scan closed-form: the whole remaining stretch is
    /// one [`RunDescriptor`] of block reads, each owing only the start-I/O
    /// CPU. The closing transition charges the final sort and hands back to
    /// the single-step path, which drains it exactly like the reference.
    fn plan_in_memory_scan(&mut self, run: &mut ActionRun) {
        debug_assert_eq!(self.pending_cpu, 0);
        let block = self.cfg.block_pages;
        while run.len() < RUN_BATCH && self.state == State::InMemoryScan {
            let pairs = ((RUN_BATCH - run.len()) / 2) as u32;
            let count = ((self.r_pages - self.scan_pos) / block).min(pairs);
            if count > 0 {
                RunDescriptor {
                    count,
                    cpu: cost::START_IO,
                    io: IoRequest {
                        file: FileRef::Base(self.file),
                        first_page: self.scan_pos,
                        pages: block,
                        kind: IoKind::Read,
                        prefetch: true,
                    },
                    stride: block,
                }
                .expand(run);
                self.scan_pos += count * block;
                continue;
            }
            if self.scan_pos >= self.r_pages {
                // Final in-memory sort: n·log2(n) compares + output copy.
                let n = self.r_pages as u64 * self.cfg.tuples_per_page as u64;
                let log = (64 - n.leading_zeros() as u64).max(1);
                self.pending_cpu += n * (cost::KEY_COMPARE * log + cost::SORT_COPY);
                self.state = State::Terminate;
                return;
            }
            let pages = block.min(self.r_pages - self.scan_pos);
            let first = self.scan_pos;
            self.scan_pos += pages;
            self.pending_cpu += cost::START_IO;
            run.push(Action::Io(IoRequest {
                file: FileRef::Base(self.file),
                first_page: first,
                pages,
                kind: IoKind::Read,
                prefetch: true,
            }));
            if run.len() < RUN_BATCH {
                run.push(Action::Cpu(std::mem::take(&mut self.pending_cpu)));
            } else {
                return;
            }
        }
    }

    /// Plan run formation: reads and buffered-output writes alternate on
    /// pure integer accumulators, so the whole phase expands in one tight
    /// loop with the reference's exact emission order (write-first, runs
    /// closed at block granularity).
    fn plan_run_formation(&mut self, run: &mut ActionRun) {
        debug_assert_eq!(self.pending_cpu, 0);
        let block = self.cfg.block_pages;
        while run.len() < RUN_BATCH && self.state == State::RunFormation {
            if self.form_accum >= block
                || (self.scan_pos >= self.r_pages && self.form_accum > 0)
            {
                let pages = self.form_accum.min(block);
                self.form_accum -= pages;
                self.current_run += pages;
                let action = self.temp_write(pages);
                if self.current_run >= self.target_run_len()
                    || (self.scan_pos >= self.r_pages && self.form_accum == 0)
                {
                    let begin = self.temp_write_pos.wrapping_sub(self.current_run)
                        % self.temp_capacity();
                    self.runs.push((begin, self.current_run));
                    self.current_run = 0;
                }
                run.push(action);
            } else if self.scan_pos >= self.r_pages {
                debug_assert_eq!(self.form_accum, 0);
                self.state = State::Merge;
                return;
            } else {
                let pages = block.min(self.r_pages - self.scan_pos);
                let first = self.scan_pos;
                self.scan_pos += pages;
                self.form_accum += pages;
                self.pending_cpu += pages as u64 * self.formation_cpu + cost::START_IO;
                run.push(Action::Io(IoRequest {
                    file: FileRef::Base(self.file),
                    first_page: first,
                    pages,
                    kind: IoKind::Read,
                    prefetch: true,
                }));
            }
            // Both branches owe CPU (at least the start-I/O); the reference
            // drains it as the immediately following action.
            if run.len() < RUN_BATCH {
                run.push(Action::Cpu(std::mem::take(&mut self.pending_cpu)));
            } else {
                return;
            }
        }
    }

    /// Plan the merge phase: single-page round-robin reads at a fixed
    /// per-page CPU, a block write per `block_pages` of output (non-final
    /// steps), step setup/close inline — per-action state-machine re-entry
    /// eliminated.
    fn plan_merge(&mut self, run: &mut ActionRun) {
        debug_assert_eq!(self.pending_cpu, 0);
        debug_assert!(!self.split_requested);
        let block = self.cfg.block_pages;
        while run.len() < RUN_BATCH && self.state == State::Merge {
            if self.merge.is_none() {
                if self.runs.len() <= 1 {
                    // Single run: stream-through final "merge".
                    if let Some((start, len)) = self.runs.pop() {
                        self.merge = Some(MergeStep {
                            sources: vec![(start, len)],
                            next_source: 0,
                            out_written: 0,
                            out_accum: 0,
                            out_start: 0,
                            is_final: true,
                            fan: 2,
                            cpu_per_page: self.merge_cpu_per_page(2),
                        });
                    } else {
                        self.state = State::Terminate;
                        return;
                    }
                } else {
                    self.begin_merge_step();
                }
            }
            let step = self.merge.as_mut().expect("step exists");
            let action = if !step.is_final && step.out_accum >= block {
                let pages = block;
                step.out_accum -= pages;
                step.out_written += pages;
                self.temp_write(pages)
            } else {
                let live = step.sources.iter().any(|&(_, r)| r > 0);
                if live {
                    let n = step.sources.len();
                    let mut idx = step.next_source % n;
                    while step.sources[idx].1 == 0 {
                        idx = (idx + 1) % n;
                    }
                    step.next_source = (idx + 1) % n;
                    let (start, remaining) = step.sources[idx];
                    step.sources[idx] = (start + 1, remaining - 1);
                    step.out_accum += 1;
                    let cpu = step.cpu_per_page;
                    self.pending_cpu += cpu + cost::START_IO;
                    Action::Io(IoRequest {
                        file: FileRef::Temp(RUN_SLOT),
                        first_page: start % self.temp_capacity(),
                        pages: 1,
                        kind: IoKind::Read,
                        // Section 4.2: no block prefetch during merges.
                        prefetch: false,
                    })
                } else if !step.is_final && step.out_accum > 0 {
                    let pages = step.out_accum;
                    step.out_accum = 0;
                    step.out_written += pages;
                    self.temp_write(pages)
                } else {
                    let finished = self.merge.take().expect("step exists");
                    if !finished.is_final {
                        self.runs.push((finished.out_start, finished.out_written));
                        continue;
                    }
                    self.state = State::Terminate;
                    return;
                }
            };
            run.push(action);
            if run.len() < RUN_BATCH {
                run.push(Action::Cpu(std::mem::take(&mut self.pending_cpu)));
            } else {
                return;
            }
        }
    }

    fn restore(&mut self) {
        assert!(self.saved.valid, "sync_run follows plan_run");
        // Consume the checkpoint: a second sync against an already
        // reconciled run must trip the assert, not replay stale state.
        self.saved.valid = false;
        self.alloc = self.saved.alloc;
        self.state = self.saved.state;
        self.pending_cpu = self.saved.pending_cpu;
        self.scan_pos = self.saved.scan_pos;
        self.form_accum = self.saved.form_accum;
        self.current_run = self.saved.current_run;
        self.runs.clone_from(&self.saved.runs);
        self.temp_write_pos = self.saved.temp_write_pos;
        self.merge.clone_from(&self.saved.merge);
        self.split_requested = self.saved.split_requested;
        self.fluctuations = self.saved.fluctuations;
        self.started = self.saved.started;
        self.formation_cpu = self.formation_cpu_per_page();
    }
}

impl Operator for ExternalSort {
    fn max_memory(&self) -> u32 {
        Self::max_memory_for(self.r_pages)
    }

    fn min_memory(&self) -> u32 {
        Self::min_memory_for()
    }

    fn allocation(&self) -> u32 {
        self.alloc
    }

    fn set_allocation(&mut self, pages: u32) {
        assert!(
            pages == 0 || pages >= self.min_memory(),
            "allocation {pages} below the sort minimum 3"
        );
        if pages == self.alloc {
            return;
        }
        if self.started {
            self.fluctuations += 1;
        }
        let shrank = pages < self.alloc;
        self.alloc = pages;
        if self.state == State::Merge {
            if let Some(step) = &self.merge {
                // Split only when the step no longer fits (or on suspension);
                // growth is exploited at the next step (combining).
                let needed =
                    step.sources.iter().filter(|&&(_, r)| r > 0).count() as u32 + 1;
                if pages == 0 || (shrank && self.alloc < needed) {
                    self.split_requested = true;
                }
            }
        }
        self.formation_cpu = self.formation_cpu_per_page();
    }

    /// Closed-form planning: scan, formation and merge phases expand whole
    /// homogeneous stretches into the run (see the phase planners above);
    /// owed CPU, splits, suspension and boundary states go through
    /// [`ExternalSort::step`], which stays the reference semantics. The
    /// run-protocol model test pins both paths action-for-action.
    fn plan_run(&mut self, run: &mut ActionRun) {
        self.snapshot();
        run.clear();
        while run.len() < RUN_BATCH {
            if self.pending_cpu > 0 || self.split_requested || self.alloc == 0 {
                if !self.push_step(run) {
                    return;
                }
                continue;
            }
            match self.state {
                State::InMemoryScan => self.plan_in_memory_scan(run),
                State::RunFormation => self.plan_run_formation(run),
                State::Merge => self.plan_merge(run),
                _ => {
                    if !self.push_step(run) {
                        return;
                    }
                }
            }
        }
    }

    fn sync_run(&mut self, run: &ActionRun) {
        if !run.has_pending() {
            return;
        }
        self.restore();
        // Deterministic replay of the consumed prefix (see `HashJoin`).
        for _ in 0..run.consumed() {
            let _ = self.step();
        }
    }

    fn step(&mut self) -> Action {
        if self.pending_cpu > 0 {
            return Action::Cpu(std::mem::take(&mut self.pending_cpu));
        }
        if self.split_requested {
            self.split_requested = false;
            self.split_step();
        }
        if self.alloc == 0 {
            // Flush buffered output before parking.
            if self.form_accum > 0 {
                let pages = self.form_accum;
                self.form_accum = 0;
                self.current_run += pages;
                return self.temp_write(pages);
            }
            return Action::Parked;
        }
        match self.state {
            State::Init => {
                self.started = true;
                self.state = State::Dispatch;
                Action::Cpu(cost::INIT_OP)
            }
            State::Dispatch => {
                if self.alloc >= self.r_pages && !self.cfg.always_two_phase_sort {
                    self.state = State::InMemoryScan;
                    self.scan_pos = 0;
                } else {
                    self.state = State::CreateRuns;
                }
                self.step()
            }
            State::InMemoryScan => {
                if self.scan_pos >= self.r_pages {
                    // Final in-memory sort: n·log2(n) compares + output copy.
                    let n = self.r_pages as u64 * self.cfg.tuples_per_page as u64;
                    let log = (64 - n.leading_zeros() as u64).max(1);
                    self.pending_cpu += n * (cost::KEY_COMPARE * log + cost::SORT_COPY);
                    self.state = State::Terminate;
                    return self.step();
                }
                let pages = self.cfg.block_pages.min(self.r_pages - self.scan_pos);
                let first = self.scan_pos;
                self.scan_pos += pages;
                self.pending_cpu += cost::START_IO;
                Action::Io(IoRequest {
                    file: FileRef::Base(self.file),
                    first_page: first,
                    pages,
                    kind: IoKind::Read,
                    prefetch: true,
                })
            }
            State::CreateRuns => {
                self.state = State::RunFormation;
                self.scan_pos = 0;
                self.current_run = 0;
                Action::CreateTemp {
                    slot: RUN_SLOT,
                    pages: self.temp_capacity(),
                }
            }
            State::RunFormation => {
                // Write buffered output first (keeps read/write alternating).
                if self.form_accum >= self.cfg.block_pages
                    || (self.scan_pos >= self.r_pages && self.form_accum > 0)
                {
                    let pages = self.form_accum.min(self.cfg.block_pages);
                    self.form_accum -= pages;
                    self.current_run += pages;
                    // Advances temp_write_pos.
                    let action = self.temp_write(pages);
                    // Close the run when it reaches its target length or the
                    // input is exhausted. The run occupies the `current_run`
                    // pages ending at the new write position.
                    if self.current_run >= self.target_run_len()
                        || (self.scan_pos >= self.r_pages && self.form_accum == 0)
                    {
                        let begin = self.temp_write_pos.wrapping_sub(self.current_run)
                            % self.temp_capacity();
                        self.runs.push((begin, self.current_run));
                        self.current_run = 0;
                    }
                    return action;
                }
                if self.scan_pos >= self.r_pages {
                    debug_assert_eq!(self.form_accum, 0);
                    self.state = State::Merge;
                    return self.step();
                }
                let pages = self.cfg.block_pages.min(self.r_pages - self.scan_pos);
                let first = self.scan_pos;
                self.scan_pos += pages;
                self.form_accum += pages;
                self.pending_cpu += pages as u64 * self.formation_cpu + cost::START_IO;
                Action::Io(IoRequest {
                    file: FileRef::Base(self.file),
                    first_page: first,
                    pages,
                    kind: IoKind::Read,
                    prefetch: true,
                })
            }
            State::Merge => {
                if self.merge.is_none() {
                    if self.runs.len() <= 1 {
                        // Single run: the "merge" is a stream-through; the
                        // paper's final merge reads it once to produce output.
                        if let Some((start, len)) = self.runs.pop() {
                            self.merge = Some(MergeStep {
                                sources: vec![(start, len)],
                                next_source: 0,
                                out_written: 0,
                                out_accum: 0,
                                out_start: 0,
                                is_final: true,
                                fan: 2,
                                cpu_per_page: self.merge_cpu_per_page(2),
                            });
                        } else {
                            self.state = State::Terminate;
                            return self.step();
                        }
                    } else {
                        self.begin_merge_step();
                    }
                }
                let step = self.merge.as_mut().expect("step exists");
                // Flush output blocks for non-final merges.
                if !step.is_final && step.out_accum >= self.cfg.block_pages {
                    let pages = self.cfg.block_pages;
                    step.out_accum -= pages;
                    step.out_written += pages;
                    return self.temp_write(pages);
                }
                // Next single-page read, round-robin over live sources.
                let live = step.sources.iter().any(|&(_, r)| r > 0);
                if live {
                    let n = step.sources.len();
                    let mut idx = step.next_source % n;
                    while step.sources[idx].1 == 0 {
                        idx = (idx + 1) % n;
                    }
                    step.next_source = (idx + 1) % n;
                    let (start, remaining) = step.sources[idx];
                    step.sources[idx] = (start + 1, remaining - 1);
                    step.out_accum += 1;
                    let cpu = step.cpu_per_page;
                    self.pending_cpu += cpu + cost::START_IO;
                    return Action::Io(IoRequest {
                        file: FileRef::Temp(RUN_SLOT),
                        first_page: start % self.temp_capacity(),
                        pages: 1,
                        kind: IoKind::Read,
                        // Section 4.2: no block prefetch during merges.
                        prefetch: false,
                    });
                }
                // Sources drained: flush the tail and close the step.
                if !step.is_final && step.out_accum > 0 {
                    let pages = step.out_accum;
                    step.out_accum = 0;
                    step.out_written += pages;
                    return self.temp_write(pages);
                }
                let finished = self.merge.take().expect("step exists");
                if !finished.is_final {
                    self.runs.push((finished.out_start, finished.out_written));
                    self.step()
                } else {
                    self.state = State::Terminate;
                    self.step()
                }
            }
            State::Terminate => {
                self.state = if self.runs.is_empty() && self.temp_write_pos == 0 {
                    State::Done
                } else {
                    State::DropRuns
                };
                Action::Cpu(cost::TERMINATE_OP)
            }
            State::DropRuns => {
                self.state = State::Done;
                Action::DropTemp { slot: RUN_SLOT }
            }
            State::Done => Action::Finished,
        }
    }

    fn fluctuations(&self) -> u32 {
        self.fluctuations
    }

    fn operand_pages(&self) -> u32 {
        self.r_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort(r: u32) -> ExternalSort {
        ExternalSort::new(ExecConfig::default(), FileId::Relation(0), r)
    }

    struct Totals {
        base_reads: u32,
        temp_reads: u32,
        temp_writes: u32,
        cpu: u64,
        single_page_reads: u32,
        prefetch_temp_reads: u32,
    }

    fn run_fixed(op: &mut ExternalSort, alloc: u32) -> Totals {
        op.set_allocation(alloc);
        let mut t = Totals {
            base_reads: 0,
            temp_reads: 0,
            temp_writes: 0,
            cpu: 0,
            single_page_reads: 0,
            prefetch_temp_reads: 0,
        };
        for _ in 0..10_000_000 {
            match op.step() {
                Action::Cpu(n) => t.cpu += n,
                Action::Io(io) => match (io.file, io.kind) {
                    (FileRef::Base(_), IoKind::Read) => t.base_reads += io.pages,
                    (FileRef::Temp(_), IoKind::Read) => {
                        t.temp_reads += io.pages;
                        if io.pages == 1 {
                            t.single_page_reads += 1;
                        }
                        if io.prefetch {
                            t.prefetch_temp_reads += 1;
                        }
                    }
                    (FileRef::Temp(_), IoKind::Write) => t.temp_writes += io.pages,
                    other => panic!("unexpected io {other:?}"),
                },
                Action::CreateTemp { .. } | Action::DropTemp { .. } => {}
                Action::Parked => panic!("parked with non-zero allocation"),
                Action::Finished => return t,
            }
        }
        panic!("sort did not terminate");
    }

    #[test]
    fn memory_bounds() {
        let op = sort(1200);
        assert_eq!(op.max_memory(), 1200);
        assert_eq!(op.min_memory(), 3);
    }

    #[test]
    fn in_memory_sort_does_no_temp_io() {
        let mut op = sort(600);
        let t = run_fixed(&mut op, 600);
        assert_eq!(t.base_reads, 600);
        assert_eq!(t.temp_reads, 0);
        assert_eq!(t.temp_writes, 0);
        assert!(t.cpu > 0);
    }

    #[test]
    fn two_pass_sort_with_half_memory() {
        // W = 100 → runs of ~198 pages → 7 runs; fan-in 99 merges them in
        // one final pass: write 1200, read 1200.
        let mut op = sort(1200);
        let t = run_fixed(&mut op, 100);
        assert_eq!(t.base_reads, 1200);
        assert_eq!(t.temp_writes, 1200, "every page written once");
        assert_eq!(t.temp_reads, 1200, "every page read once in final merge");
    }

    #[test]
    fn merge_reads_are_single_page_non_prefetch() {
        let mut op = sort(600);
        let t = run_fixed(&mut op, 50);
        assert_eq!(t.single_page_reads, t.temp_reads, "merge reads are 1-page");
        assert_eq!(t.prefetch_temp_reads, 0, "merge phase never prefetches");
    }

    #[test]
    fn minimum_memory_needs_many_passes() {
        // W = 3 → heap 2 pages → runs of 4 → 30 runs for 120 pages; fan-in 2
        // → ~5 merge levels: temp traffic is several times the relation.
        let mut op = sort(120);
        let t = run_fixed(&mut op, 3);
        assert_eq!(t.base_reads, 120);
        assert!(
            t.temp_reads >= 3 * 120,
            "multi-pass merging must re-read: {}",
            t.temp_reads
        );
        // Formation writes 120 pages; every non-final merge step writes what
        // it reads and the final step (120 pages in) writes nothing, so the
        // write total equals the read total exactly.
        assert_eq!(t.temp_writes, t.temp_reads);
    }

    #[test]
    fn more_memory_is_never_more_io() {
        let totals: Vec<u32> = [3, 10, 50, 200, 1200]
            .iter()
            .map(|&w| {
                let mut op = sort(1200);
                let t = run_fixed(&mut op, w);
                t.temp_reads + t.temp_writes
            })
            .collect();
        for w in totals.windows(2) {
            assert!(w[1] <= w[0], "I/O must shrink with memory: {totals:?}");
        }
    }

    #[test]
    fn run_lengths_track_workspace() {
        let mut op = sort(1000);
        op.set_allocation(26); // W−1 = 25 → runs of 50
                               // Drive until the merge phase starts, then inspect run lengths.
        while op.state != State::Merge {
            let a = op.step();
            assert_ne!(a, Action::Finished);
        }
        // The first merge step may already have claimed some runs as its
        // sources; count both.
        let mut lens: Vec<u32> = op.runs.iter().map(|&(_, l)| l).collect();
        if let Some(step) = &op.merge {
            lens.extend(step.sources.iter().map(|&(_, l)| l));
        }
        assert!(!lens.is_empty());
        let max_run = *lens.iter().max().unwrap();
        // Runs close at block granularity, so they may overshoot the 2×heap
        // target by up to block−1 pages.
        assert!(max_run <= 50 + 5, "run of {max_run} pages exceeds 2×heap");
        // The first merge read may already have consumed a page or two of
        // its sources by the time we observe the state.
        let total: u32 = lens.iter().sum();
        assert!(
            (995..=1000).contains(&total),
            "runs must cover the relation: {total}"
        );
    }

    #[test]
    fn growth_mid_merge_combines_future_steps() {
        // Tiny memory creates many runs; granting more memory mid-merge must
        // reduce remaining I/O versus staying small.
        let io_with_boost = {
            let mut op = sort(600);
            op.set_allocation(4);
            // Form all runs.
            while op.state != State::Merge {
                op.step();
            }
            op.set_allocation(600); // combine: huge fan-in
            let mut io = 0u32;
            loop {
                match op.step() {
                    Action::Io(r) => io += r.pages,
                    Action::Finished => break,
                    _ => {}
                }
            }
            io
        };
        let io_without = {
            let mut op = sort(600);
            op.set_allocation(4);
            while op.state != State::Merge {
                op.step();
            }
            let mut io = 0u32;
            loop {
                match op.step() {
                    Action::Io(r) => io += r.pages,
                    Action::Finished => break,
                    _ => {}
                }
            }
            io
        };
        assert!(
            io_with_boost < io_without / 2,
            "boost {io_with_boost} vs {io_without}"
        );
    }

    #[test]
    fn shrink_mid_merge_splits_step() {
        let mut op = sort(600);
        op.set_allocation(100);
        while op.state != State::Merge {
            op.step();
        }
        // Enter the merge and do a few reads.
        for _ in 0..20 {
            op.step();
        }
        op.set_allocation(3); // force a split
        let mut finished = false;
        for _ in 0..10_000_000 {
            if op.step() == Action::Finished {
                finished = true;
                break;
            }
        }
        assert!(finished, "sort must complete after a split");
    }

    #[test]
    fn suspension_and_resume() {
        let mut op = sort(600);
        op.set_allocation(50);
        for _ in 0..30 {
            op.step();
        }
        op.set_allocation(0);
        let mut parked = false;
        for _ in 0..100 {
            if op.step() == Action::Parked {
                parked = true;
                break;
            }
        }
        assert!(parked);
        op.set_allocation(50);
        let mut finished = false;
        for _ in 0..1_000_000 {
            if op.step() == Action::Finished {
                finished = true;
                break;
            }
        }
        assert!(finished);
    }

    #[test]
    fn two_phase_flag_disables_fast_path() {
        let cfg = ExecConfig {
            always_two_phase_sort: true,
            ..ExecConfig::default()
        };
        let mut op = ExternalSort::new(cfg, FileId::Relation(0), 600);
        let t = run_fixed(&mut op, 600);
        // Even at max memory: one run written, then streamed back.
        assert_eq!(t.temp_writes, 600);
        assert_eq!(t.temp_reads, 600);
    }

    #[test]
    fn single_block_relation() {
        let mut op = sort(4);
        let t = run_fixed(&mut op, 4);
        assert_eq!(t.base_reads, 4);
        assert_eq!(t.temp_writes, 0);
    }
}
