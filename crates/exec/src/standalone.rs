//! Stand-alone execution-time estimation.
//!
//! Deadlines are assigned as
//! `Deadline = Arrival + StandAlone × SlackRatio` (Section 4.1), where the
//! stand-alone time is "the time it would take to execute alone in the
//! system with its maximum memory allocation, i.e., without experiencing any
//! contention from other queries."
//!
//! We compute it by *driving the actual operator state machine* through a
//! private cost model: CPU bursts cost `instructions / MIPS`, and each I/O
//! pays the geometric service time on an otherwise idle disk whose head
//! tracks the query's own accesses. Because the query runs with its maximum
//! allocation it performs no temp I/O, but the executor handles temp
//! placement anyway so tests can estimate constrained executions too.
//!
//! The query alternates CPU and I/O (it is single-threaded), so the
//! stand-alone time is the plain sum of both components — exactly how the
//! query would behave in the empty simulated system.

use crate::op::{Action, FileRef, Operator};
use simkit::Duration;
use std::collections::HashMap;
use storage::{DeviceSpec, DiskGeometry, DiskId, ServiceModel};

/// Resolves an operator-visible file to its physical placement.
pub trait Placement {
    /// `(disk, start_cylinder)` of the file.
    fn resolve(&mut self, file: FileRef) -> (DiskId, u32);
}

impl<F: FnMut(FileRef) -> (DiskId, u32)> Placement for F {
    fn resolve(&mut self, file: FileRef) -> (DiskId, u32) {
        self(file)
    }
}

/// Estimate the stand-alone execution time of `op` at its current
/// allocation on the paper's cylinder disk (callers wanting the paper's
/// definition grant the maximum allocation first). Thin wrapper over
/// [`standalone_time_on`] with [`DeviceSpec::Cylinder`] — bit-identical to
/// the seed computation (the memoized service math is pinned bit-equal to
/// the direct geometry expressions).
///
/// # Panics
/// Panics if the operator parks (stand-alone execution never suspends) or
/// fails to finish within a very generous step bound.
pub fn standalone_time<P: Placement>(
    op: &mut dyn Operator,
    geometry: &DiskGeometry,
    placement: &mut P,
    cpu_mips: f64,
) -> Duration {
    standalone_time_on(op, &DeviceSpec::Cylinder, geometry, placement, cpu_mips)
}

/// Estimate the stand-alone execution time of `op` on `device`.
///
/// Each disk the query touches gets a fresh service model whose positional
/// state starts where the query's first access lands (no initial-seek
/// charge — the seed's `or_insert` head semantics). The queue-depth hint is
/// 0: a stand-alone query has nothing stacked behind its requests, so an
/// SSD charges full per-op latency. Deadlines derived from this estimate
/// therefore shrink along with execution times when the device is faster —
/// the slack *ratio* stays the paper's.
///
/// # Panics
/// Panics if the operator parks (stand-alone execution never suspends) or
/// fails to finish within a very generous step bound.
pub fn standalone_time_on<P: Placement>(
    op: &mut dyn Operator,
    device: &DeviceSpec,
    geometry: &DiskGeometry,
    placement: &mut P,
    cpu_mips: f64,
) -> Duration {
    assert!(cpu_mips > 0.0, "MIPS rating must be positive");
    let mut total = Duration::ZERO;
    let mut models: HashMap<DiskId, Box<dyn ServiceModel>> = HashMap::new();
    let mut temp_sizes: HashMap<u32, u32> = HashMap::new();
    for _ in 0..50_000_000u64 {
        match op.step() {
            Action::Cpu(instr) => {
                total += Duration::from_secs_f64(instr as f64 / (cpu_mips * 1e6));
            }
            Action::Io(io) => {
                let (disk, start_cyl) = placement.resolve(io.file);
                let cyl = geometry.cylinder_of(start_cyl, io.first_page);
                let model = models.entry(disk).or_insert_with(|| {
                    let mut m = device.build(geometry);
                    m.park_at(cyl);
                    m
                });
                // Prefetch rounds a partial-block read up to whole blocks,
                // matching the disk model.
                let pages = io.pages.max(1);
                total += model.access_time(cyl, pages, io.kind, 0);
            }
            Action::CreateTemp { slot, pages } => {
                temp_sizes.insert(slot, pages);
            }
            Action::DropTemp { slot } => {
                temp_sizes.remove(&slot);
            }
            Action::Parked => panic!("stand-alone execution cannot park"),
            Action::Finished => return total,
        }
    }
    panic!("operator did not finish during stand-alone estimation");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashjoin::HashJoin;
    use crate::op::ExecConfig;
    use crate::sort::ExternalSort;
    use storage::FileId;

    fn flat_placement() -> impl FnMut(FileRef) -> (DiskId, u32) {
        |file| match file {
            FileRef::Base(FileId::Relation(n)) => (DiskId(n % 4), 700),
            FileRef::Base(FileId::Temp(_)) => (DiskId(0), 100),
            FileRef::Temp(_) => (DiskId(0), 1250),
        }
    }

    #[test]
    fn join_standalone_magnitude_matches_paper() {
        // Baseline Table 7: Max-mode execution times average ~40 s for joins
        // with ‖R‖∈[600,1800], ‖S‖∈[3000,9000]. The mid-sized join
        // (1200, 6000) alone should land in the same ballpark.
        let cfg = ExecConfig::default();
        let mut op =
            HashJoin::new(cfg, FileId::Relation(0), 1200, FileId::Relation(1), 6000);
        op.set_allocation(op.max_memory());
        let t = standalone_time(
            &mut op,
            &DiskGeometry::default(),
            &mut flat_placement(),
            40.0,
        )
        .as_secs_f64();
        assert!((10.0..60.0).contains(&t), "stand-alone join time {t} s");
    }

    #[test]
    fn bigger_relations_take_longer() {
        let cfg = ExecConfig::default();
        let mut small =
            HashJoin::new(cfg, FileId::Relation(0), 600, FileId::Relation(1), 3000);
        small.set_allocation(small.max_memory());
        let mut large =
            HashJoin::new(cfg, FileId::Relation(0), 1800, FileId::Relation(1), 9000);
        large.set_allocation(large.max_memory());
        let g = DiskGeometry::default();
        let ts = standalone_time(&mut small, &g, &mut flat_placement(), 40.0);
        let tl = standalone_time(&mut large, &g, &mut flat_placement(), 40.0);
        assert!(tl.as_secs_f64() > 2.0 * ts.as_secs_f64());
    }

    #[test]
    fn sort_standalone_is_cheaper_than_join() {
        // Section 5.5: a sort reads a 1200-page relation, a join 7200 pages.
        let cfg = ExecConfig::default();
        let g = DiskGeometry::default();
        let mut sort = ExternalSort::new(cfg, FileId::Relation(0), 1200);
        sort.set_allocation(sort.max_memory());
        let t_sort = standalone_time(&mut sort, &g, &mut flat_placement(), 40.0);
        let mut join =
            HashJoin::new(cfg, FileId::Relation(0), 1200, FileId::Relation(1), 6000);
        join.set_allocation(join.max_memory());
        let t_join = standalone_time(&mut join, &g, &mut flat_placement(), 40.0);
        assert!(t_sort < t_join);
    }

    #[test]
    fn faster_cpu_is_never_slower() {
        let cfg = ExecConfig::default();
        let g = DiskGeometry::default();
        let mut a = ExternalSort::new(cfg, FileId::Relation(0), 600);
        a.set_allocation(600);
        let slow = standalone_time(&mut a, &g, &mut flat_placement(), 10.0);
        let mut b = ExternalSort::new(cfg, FileId::Relation(0), 600);
        b.set_allocation(600);
        let fast = standalone_time(&mut b, &g, &mut flat_placement(), 400.0);
        assert!(fast < slow);
    }

    #[test]
    fn cylinder_wrapper_is_bit_equal_to_device_path() {
        // `standalone_time` must stay the seed computation exactly: the
        // deadline of every simulated query rides on it.
        let cfg = ExecConfig::default();
        let g = DiskGeometry::default();
        let mut a =
            HashJoin::new(cfg, FileId::Relation(0), 1200, FileId::Relation(1), 6000);
        a.set_allocation(a.max_memory());
        let wrapped = standalone_time(&mut a, &g, &mut flat_placement(), 40.0);
        let mut b =
            HashJoin::new(cfg, FileId::Relation(0), 1200, FileId::Relation(1), 6000);
        b.set_allocation(b.max_memory());
        let explicit = standalone_time_on(
            &mut b,
            &DeviceSpec::Cylinder,
            &g,
            &mut flat_placement(),
            40.0,
        );
        assert_eq!(wrapped, explicit);
    }

    #[test]
    fn ssd_standalone_is_much_faster_than_cylinder() {
        use storage::SsdSpec;
        let cfg = ExecConfig::default();
        let g = DiskGeometry::default();
        let mut a =
            HashJoin::new(cfg, FileId::Relation(0), 1200, FileId::Relation(1), 6000);
        a.set_allocation(a.max_memory());
        let t_disk = standalone_time(&mut a, &g, &mut flat_placement(), 40.0);
        let mut b =
            HashJoin::new(cfg, FileId::Relation(0), 1200, FileId::Relation(1), 6000);
        b.set_allocation(b.max_memory());
        let t_ssd = standalone_time_on(
            &mut b,
            &DeviceSpec::Ssd(SsdSpec::default()),
            &g,
            &mut flat_placement(),
            40.0,
        );
        assert!(
            t_ssd < t_disk,
            "SSD estimate {t_ssd:?} must beat disk {t_disk:?}"
        );
        // I/O-bound at 40 MIPS: the device swap should shrink the total
        // substantially, shrinking deadlines with it.
        assert!(t_ssd.as_secs_f64() * 2.0 < t_disk.as_secs_f64());
    }

    #[test]
    fn constrained_execution_takes_longer_than_max() {
        let cfg = ExecConfig::default();
        let g = DiskGeometry::default();
        let mut max =
            HashJoin::new(cfg, FileId::Relation(0), 600, FileId::Relation(1), 3000);
        max.set_allocation(max.max_memory());
        let t_max = standalone_time(&mut max, &g, &mut flat_placement(), 40.0);
        let mut min =
            HashJoin::new(cfg, FileId::Relation(0), 600, FileId::Relation(1), 3000);
        min.set_allocation(min.min_memory());
        let t_min = standalone_time(&mut min, &g, &mut flat_placement(), 40.0);
        assert!(
            t_min.as_secs_f64() > 1.5 * t_max.as_secs_f64(),
            "two-pass {t_min:?} vs one-pass {t_max:?}"
        );
    }
}
