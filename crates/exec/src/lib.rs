//! `exec` — memory-adaptive query-operator models (Section 2.2).
//!
//! Large real-time queries face memory being taken away and given back
//! mid-execution, so the paper builds on two adaptive primitives:
//!
//! * [`hashjoin::HashJoin`] — Partially Preemptible Hash Join with late
//!   contraction, expansion, and priority spooling \[Pang93a\].
//! * [`sort::ExternalSort`] — replacement-selection external sort whose
//!   merge steps split and combine as memory fluctuates \[Pang93b\].
//!
//! Both are modelled as *pure state machines* emitting CPU bursts and
//! page-range I/Os (see [`op`]), so they can be unit-tested against
//! I/O-volume invariants without the full simulator, and
//! [`standalone::standalone_time`] can price a query for deadline
//! assignment by replaying the same machine against an idle-disk cost model.

pub mod hashjoin;
pub mod op;
pub mod sort;
pub mod standalone;

pub use hashjoin::HashJoin;
pub use op::{Action, ActionRun, ExecConfig, FileRef, IoRequest, Operator, RUN_BATCH};
pub use sort::ExternalSort;
pub use standalone::{standalone_time, standalone_time_on, Placement};
