//! Partially Preemptible Hash Join (PPHJ) with late contraction, expansion,
//! and priority spooling \[Pang93a\] — as an I/O- and CPU-accurate execution
//! model.
//!
//! PPHJ splits both relations into `B ≈ √(F·‖R‖)` partitions. At any moment
//! `E` of them are *expanded* (hash tables in memory) and `B − E` are
//! *contracted* (spooled to a temp file). The join:
//!
//! 1. **Build scan** — reads R in blocks; tuples of expanded partitions are
//!    inserted into in-memory hash tables, tuples of contracted partitions
//!    are spooled (blocked writes).
//! 2. **Probe scan** — reads S in blocks; tuples hashing to expanded
//!    partitions probe and produce output immediately; the rest are spooled.
//! 3. **Second pass** — for spilled data: re-read the spilled R pages
//!    (building one partition at a time, which is why the minimum memory is
//!    `√(F·‖R‖)` + one I/O buffer), then re-read and probe the spilled S
//!    pages.
//!
//! Memory adaptivity: when the allocation shrinks, expanded partitions are
//! *contracted* — their current contents are spooled out ("priority
//! spooling") and their future tuples go to the spill file. When the
//! allocation grows during the probe scan, contracted partitions are
//! *expanded back*: their spilled R pages are read in and rebuilt so that
//! the remaining S tuples can be joined directly ("late expansion"). Setting
//! the allocation to zero parks the operator after flushing, which is how
//! admission-control suspension is realized.
//!
//! Accounting is aggregate: we track total spilled pages rather than
//! per-partition lists. Totals (and therefore all I/O and CPU volumes) match
//! the per-partition computation exactly for uniform partitions; only the
//! interleaving of second-pass requests differs, which is irrelevant to the
//! queueing model.

use crate::op::{
    blocks_for, cost, Action, ActionRun, ExecConfig, FileRef, IoRequest, Operator,
    RunDescriptor, RUN_BATCH,
};
use storage::{FileId, IoKind};

/// Spill temp-file slot used by the join.
const SPILL_SLOT: u32 = 0;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Init,
    CreateSpill,
    BuildScan,
    BuildFlush,
    ProbeScan,
    ProbeFlush,
    SecondBuild,
    SecondProbe,
    Terminate,
    DropSpill,
    Done,
}

/// The PPHJ operator. See the module docs for the execution model.
pub struct HashJoin {
    cfg: ExecConfig,
    r_file: FileId,
    s_file: FileId,
    r_pages: u32,
    s_pages: u32,
    /// Number of partitions, `B = max(1, ⌊√(F·‖R‖)⌋)`.
    partitions: u32,
    /// `F·‖R‖` — total in-memory hash table volume when fully expanded.
    fr: f64,
    alloc: u32,
    expanded: u32,
    state: State,
    /// CPU instructions owed before the next I/O is issued.
    pending_cpu: u64,
    /// Hash-table pages awaiting spool-out after a contraction.
    pending_contract: f64,
    /// Spilled R pages read back in during a late expansion.
    pending_expand_read: f64,
    /// Buffered spill output of the current scan (written in blocks).
    spill_accum: f64,
    /// Total R / S pages resident in the spill file.
    spilled_r: f64,
    spilled_s: f64,
    /// Progress of the current sequential scan, in pages.
    scan_pos: u32,
    /// Append position in the spill temp file.
    temp_write_pos: u32,
    /// Read position within the spill file during the second pass.
    second_read: f64,
    fluctuations: u32,
    started: bool,
    /// Cached [`HashJoin::contracted_fraction`]: changes only with
    /// `expanded`, i.e. on `set_allocation` — a per-phase run descriptor,
    /// not a per-step derivation.
    frac_con: f64,
    /// Cached probe-scan CPU for one full block at the current contraction
    /// level (the partial tail block is still computed directly, with the
    /// identical expression).
    probe_cpu_block: u64,
    /// Run-protocol checkpoint: the state as of the last
    /// [`Operator::plan_run`], replayed by [`Operator::sync_run`] when a
    /// run is abandoned partially consumed.
    saved: Option<JoinCheckpoint>,
}

/// Every field [`HashJoin::step`] or [`HashJoin::set_allocation`] mutates;
/// `cfg` / files / sizes / `partitions` / `fr` are construction-time
/// constants and the cost caches are re-derived, so neither needs saving.
/// Keep this in lockstep with the struct — the run-protocol model test
/// (`tests/run_protocol_model.rs`) catches a missed field.
#[derive(Clone, Copy, Debug)]
struct JoinCheckpoint {
    alloc: u32,
    expanded: u32,
    state: State,
    pending_cpu: u64,
    pending_contract: f64,
    pending_expand_read: f64,
    spill_accum: f64,
    spilled_r: f64,
    spilled_s: f64,
    scan_pos: u32,
    temp_write_pos: u32,
    second_read: f64,
    fluctuations: u32,
    started: bool,
}

impl HashJoin {
    /// A join of `r` (inner/build, `r_pages`) with `s` (outer/probe,
    /// `s_pages`).
    ///
    /// # Panics
    /// Panics if either relation is empty.
    pub fn new(
        cfg: ExecConfig,
        r_file: FileId,
        r_pages: u32,
        s_file: FileId,
        s_pages: u32,
    ) -> Self {
        assert!(r_pages > 0 && s_pages > 0, "relations must be non-empty");
        let fr = cfg.fudge_factor * r_pages as f64;
        let partitions = (fr.sqrt().floor() as u32).max(1);
        let mut join = HashJoin {
            cfg,
            r_file,
            s_file,
            r_pages,
            s_pages,
            partitions,
            fr,
            alloc: 0,
            expanded: 0,
            state: State::Init,
            pending_cpu: 0,
            pending_contract: 0.0,
            pending_expand_read: 0.0,
            spill_accum: 0.0,
            spilled_r: 0.0,
            spilled_s: 0.0,
            scan_pos: 0,
            temp_write_pos: 0,
            second_read: 0.0,
            fluctuations: 0,
            started: false,
            frac_con: 1.0,
            probe_cpu_block: 0,
            saved: None,
        };
        join.refresh_cost_caches();
        join
    }

    /// Maximum memory demand: `F·‖R‖` plus one I/O buffer (Section 3.2).
    pub fn max_memory_for(cfg: &ExecConfig, r_pages: u32) -> u32 {
        (cfg.fudge_factor * r_pages as f64).ceil() as u32 + 1
    }

    /// Minimum memory demand: `√(F·‖R‖)` plus one I/O buffer.
    pub fn min_memory_for(cfg: &ExecConfig, r_pages: u32) -> u32 {
        ((cfg.fudge_factor * r_pages as f64).sqrt().floor() as u32).max(1) + 1
    }

    /// How many partitions can be expanded with `alloc` pages: the expanded
    /// hash tables (`E·fr/B` pages) plus one spool output buffer per
    /// contracted partition plus one input buffer must fit.
    fn expanded_for(&self, alloc: u32) -> u32 {
        if alloc == 0 {
            return 0;
        }
        if alloc >= self.max_memory() {
            return self.partitions;
        }
        let b = self.partitions as f64;
        let per_part = self.fr / b;
        if per_part <= 1.0 {
            return self.partitions;
        }
        let e = (alloc as f64 - 1.0 - b) / (per_part - 1.0);
        (e.floor().max(0.0) as u32).min(self.partitions)
    }

    /// Fraction of tuples hashing to contracted partitions.
    fn contracted_fraction(&self) -> f64 {
        (self.partitions - self.expanded) as f64 / self.partitions as f64
    }

    /// Probe-scan CPU for a `pages`-page block at the current contraction
    /// level: hits probe and copy, spills only copy.
    fn probe_cpu_for(&self, pages: u32) -> u64 {
        let tuples = pages as f64 * self.cfg.tuples_per_page as f64;
        let frac_con = self.frac_con;
        let cpu = tuples
            * ((1.0 - frac_con) * (cost::HASH_PROBE + cost::HASH_COPY) as f64
                + frac_con * cost::HASH_COPY as f64);
        cpu as u64
    }

    /// Re-derive the per-phase cost descriptors. Called from `new` and
    /// `set_allocation` only — the scan loops read the cached values.
    fn refresh_cost_caches(&mut self) {
        self.frac_con = self.contracted_fraction();
        self.probe_cpu_block = self.probe_cpu_for(self.cfg.block_pages);
    }

    fn snapshot(&self) -> JoinCheckpoint {
        JoinCheckpoint {
            alloc: self.alloc,
            expanded: self.expanded,
            state: self.state,
            pending_cpu: self.pending_cpu,
            pending_contract: self.pending_contract,
            pending_expand_read: self.pending_expand_read,
            spill_accum: self.spill_accum,
            spilled_r: self.spilled_r,
            spilled_s: self.spilled_s,
            scan_pos: self.scan_pos,
            temp_write_pos: self.temp_write_pos,
            second_read: self.second_read,
            fluctuations: self.fluctuations,
            started: self.started,
        }
    }

    fn restore(&mut self, c: JoinCheckpoint) {
        self.alloc = c.alloc;
        self.expanded = c.expanded;
        self.state = c.state;
        self.pending_cpu = c.pending_cpu;
        self.pending_contract = c.pending_contract;
        self.pending_expand_read = c.pending_expand_read;
        self.spill_accum = c.spill_accum;
        self.spilled_r = c.spilled_r;
        self.spilled_s = c.spilled_s;
        self.scan_pos = c.scan_pos;
        self.temp_write_pos = c.temp_write_pos;
        self.second_read = c.second_read;
        self.fluctuations = c.fluctuations;
        self.started = c.started;
        self.refresh_cost_caches();
    }

    /// Fraction of the build input consumed so far (sizes the in-memory
    /// hash-table content during the build scan).
    fn build_fraction(&self) -> f64 {
        match self.state {
            State::Init | State::CreateSpill => 0.0,
            State::BuildScan | State::BuildFlush => {
                self.scan_pos as f64 / self.r_pages as f64
            }
            _ => 1.0,
        }
    }

    /// Append `pages` to the spill file, returning the write request.
    fn spill_write(&mut self, pages: u32) -> Action {
        let first = self.temp_write_pos % self.spill_capacity();
        self.temp_write_pos = self.temp_write_pos.wrapping_add(pages);
        self.pending_cpu += cost::START_IO;
        Action::Io(IoRequest {
            file: FileRef::Temp(SPILL_SLOT),
            first_page: first,
            pages,
            kind: IoKind::Write,
            prefetch: true,
        })
    }

    fn spill_capacity(&self) -> u32 {
        2 * (self.r_pages + self.s_pages)
    }

    /// Drain owed CPU / contraction spools / expansion reads; `None` means
    /// nothing is owed and the main state machine may proceed.
    fn drain_pending(&mut self) -> Option<Action> {
        if self.pending_cpu > 0 {
            return Some(Action::Cpu(std::mem::take(&mut self.pending_cpu)));
        }
        if self.pending_contract >= 1.0 {
            let pages = (self.pending_contract.floor() as u32).min(self.cfg.block_pages);
            self.pending_contract -= pages as f64;
            if self.pending_contract < 1.0 {
                self.pending_contract = 0.0; // flush the fractional tail
            }
            return Some(self.spill_write(pages));
        }
        if self.pending_expand_read >= 1.0 {
            let pages =
                (self.pending_expand_read.floor() as u32).min(self.cfg.block_pages);
            self.pending_expand_read -= pages as f64;
            if self.pending_expand_read < 1.0 {
                self.pending_expand_read = 0.0;
            }
            // Rebuild the hash table for the pages read back.
            self.pending_cpu +=
                pages as u64 * self.cfg.tuples_per_page as u64 * cost::HASH_INSERT
                    + cost::START_IO;
            let first = (self.second_read as u32) % self.spill_capacity();
            self.second_read += pages as f64;
            return Some(Action::Io(IoRequest {
                file: FileRef::Temp(SPILL_SLOT),
                first_page: first,
                pages,
                kind: IoKind::Read,
                prefetch: true,
            }));
        }
        None
    }

    /// Single-step once into `run`; false ends the batch (decision boundary).
    fn push_step(&mut self, run: &mut ActionRun) -> bool {
        let action = self.step();
        run.push(action);
        !matches!(action, Action::Parked | Action::Finished)
    }

    /// Plan the build (`build = true`) or probe scan. Fully expanded
    /// operators scan without spooling, so whole stretches collapse into a
    /// [`RunDescriptor`]; with contraction the spill accumulator is walked
    /// block by block in exactly the reference association order, keeping
    /// the `spill_accum` f64 trajectory bit-identical.
    fn plan_scan(&mut self, run: &mut ActionRun, build: bool) {
        debug_assert_eq!(self.pending_cpu, 0);
        let block = self.cfg.block_pages;
        let (total, file) = if build {
            (self.r_pages, FileRef::Base(self.r_file))
        } else {
            (self.s_pages, FileRef::Base(self.s_file))
        };
        let scanning = if build {
            State::BuildScan
        } else {
            State::ProbeScan
        };
        let per_block_cpu = if build {
            block as u64 * self.cfg.tuples_per_page as u64 * cost::HASH_INSERT
        } else {
            self.probe_cpu_block
        };
        while run.len() < RUN_BATCH && self.state == scanning {
            if self.frac_con == 0.0 && self.spill_accum < 1.0 {
                // Nothing spools: the rest of the scan is homogeneous. The
                // reference still adds `pages · 0.0` to the accumulator per
                // block, which cannot change its value, so eliding the adds
                // preserves the trajectory.
                let pairs = ((RUN_BATCH - run.len()) / 2) as u32;
                let count = ((total - self.scan_pos) / block).min(pairs);
                if count > 0 {
                    RunDescriptor {
                        count,
                        cpu: per_block_cpu + cost::START_IO,
                        io: IoRequest {
                            file,
                            first_page: self.scan_pos,
                            pages: block,
                            kind: IoKind::Read,
                            prefetch: true,
                        },
                        stride: block,
                    }
                    .expand(run);
                    self.scan_pos += count * block;
                    continue;
                }
            }
            if self.spill_accum >= block as f64 {
                let pages = block;
                self.spill_accum -= pages as f64;
                if build {
                    self.spilled_r += pages as f64;
                } else {
                    self.spilled_s += pages as f64;
                }
                let write = self.spill_write(pages);
                run.push(write);
            } else if self.scan_pos >= total {
                self.state = if build {
                    State::BuildFlush
                } else {
                    State::ProbeFlush
                };
                return;
            } else {
                let pages = block.min(total - self.scan_pos);
                let first = self.scan_pos;
                self.scan_pos += pages;
                let cpu = if build {
                    pages as u64 * self.cfg.tuples_per_page as u64 * cost::HASH_INSERT
                } else if pages == block {
                    self.probe_cpu_block
                } else {
                    self.probe_cpu_for(pages)
                };
                self.pending_cpu += cpu + cost::START_IO;
                self.spill_accum += pages as f64 * self.frac_con;
                run.push(Action::Io(IoRequest {
                    file,
                    first_page: first,
                    pages,
                    kind: IoKind::Read,
                    prefetch: true,
                }));
            }
            // The single-step protocol drains the owed CPU as the next
            // action after each I/O; a full batch leaves it owed for the
            // next plan, exactly like a batch boundary mid-pair.
            if run.len() < RUN_BATCH {
                run.push(Action::Cpu(std::mem::take(&mut self.pending_cpu)));
            } else {
                return;
            }
        }
    }

    /// Plan the second pass: re-read spilled R (build) or S (probe) pages.
    /// The loop mirrors the reference arithmetic on the spilled-page f64
    /// totals but emits straight into the run, one I/O + CPU pair per
    /// block, without per-action re-entry.
    fn plan_second(&mut self, run: &mut ActionRun, build: bool) {
        debug_assert_eq!(self.pending_cpu, 0);
        let reading = if build {
            State::SecondBuild
        } else {
            State::SecondProbe
        };
        let per_tuple = if build {
            cost::HASH_INSERT
        } else {
            cost::HASH_PROBE + cost::HASH_COPY
        };
        while run.len() < RUN_BATCH && self.state == reading {
            let remaining = if build {
                self.spilled_r
            } else {
                self.spilled_s
            };
            if remaining < 1.0 {
                if build {
                    self.spilled_r = 0.0;
                    self.state = State::SecondProbe;
                } else {
                    self.spilled_s = 0.0;
                    self.state = State::Terminate;
                }
                return;
            }
            let pages = (remaining.floor() as u32).min(self.cfg.block_pages).max(1);
            if build {
                self.spilled_r = (self.spilled_r - pages as f64).max(0.0);
            } else {
                self.spilled_s = (self.spilled_s - pages as f64).max(0.0);
            }
            let first = (self.second_read as u32) % self.spill_capacity();
            self.second_read += pages as f64;
            let tuples = pages as u64 * self.cfg.tuples_per_page as u64;
            self.pending_cpu += tuples * per_tuple + cost::START_IO;
            run.push(Action::Io(IoRequest {
                file: FileRef::Temp(SPILL_SLOT),
                first_page: first,
                pages,
                kind: IoKind::Read,
                prefetch: true,
            }));
            if run.len() < RUN_BATCH {
                run.push(Action::Cpu(std::mem::take(&mut self.pending_cpu)));
            } else {
                return;
            }
        }
    }
}

impl Operator for HashJoin {
    fn max_memory(&self) -> u32 {
        Self::max_memory_for(&self.cfg, self.r_pages)
    }

    fn min_memory(&self) -> u32 {
        Self::min_memory_for(&self.cfg, self.r_pages)
    }

    fn allocation(&self) -> u32 {
        self.alloc
    }

    fn set_allocation(&mut self, pages: u32) {
        assert!(
            pages == 0 || pages >= self.min_memory(),
            "allocation {pages} below the minimum {}",
            self.min_memory()
        );
        if pages == self.alloc {
            return;
        }
        if self.started {
            self.fluctuations += 1;
        }
        self.alloc = pages;
        let old_e = self.expanded;
        let new_e = self.expanded_for(pages);
        if new_e < old_e {
            // Contraction: spool the current contents of the demoted
            // partitions ("late contraction" writes them only now, not at
            // admission time). Contents are raw R pages; the fudge factor
            // inflates only the in-memory footprint.
            let per_part =
                self.r_pages as f64 / self.partitions as f64 * self.build_fraction();
            let dump = (old_e - new_e) as f64 * per_part;
            self.pending_contract += dump;
            self.spilled_r += dump;
        } else if new_e > old_e && self.state == State::ProbeScan {
            // Late expansion: read the spilled pages of the promoted
            // partitions back in so remaining S tuples join directly.
            let contracted = self.partitions - old_e;
            if contracted > 0 && self.spilled_r > 0.0 {
                let per_part = self.spilled_r / contracted as f64;
                let back = (new_e - old_e) as f64 * per_part;
                self.pending_expand_read += back;
                self.spilled_r -= back;
            }
        }
        self.expanded = new_e;
        self.refresh_cost_caches();
    }

    /// Closed-form planning: the scan and second-pass phases expand whole
    /// homogeneous stretches into the run — per-phase descriptors and tight
    /// accumulator loops instead of one state-machine re-entry per action.
    /// Boundary states (init, flushes, owed work, termination) still go
    /// through [`HashJoin::step`], which remains the reference semantics;
    /// `tests/run_protocol_model.rs` pins the two paths action-for-action.
    fn plan_run(&mut self, run: &mut ActionRun) {
        self.saved = Some(self.snapshot());
        run.clear();
        while run.len() < RUN_BATCH {
            // Owed CPU / contraction spools / expansion reads and the short
            // boundary states take the single-step path.
            if self.pending_cpu > 0
                || self.pending_contract >= 1.0
                || self.pending_expand_read >= 1.0
                || self.alloc == 0
            {
                if !self.push_step(run) {
                    return;
                }
                continue;
            }
            match self.state {
                State::BuildScan => self.plan_scan(run, true),
                State::ProbeScan => self.plan_scan(run, false),
                State::SecondBuild => self.plan_second(run, true),
                State::SecondProbe => self.plan_second(run, false),
                _ => {
                    if !self.push_step(run) {
                        return;
                    }
                }
            }
        }
    }

    fn sync_run(&mut self, run: &ActionRun) {
        if !run.has_pending() {
            return;
        }
        // `take` consumes the checkpoint: a second sync against the same
        // (now abandoned) run would otherwise silently replay stale state.
        let saved = self.saved.take().expect("sync_run follows plan_run");
        self.restore(saved);
        // Deterministic replay: the state machine regenerates exactly the
        // consumed prefix, leaving the operator where the single-step
        // protocol would be.
        for _ in 0..run.consumed() {
            let _ = self.step();
        }
    }

    fn step(&mut self) -> Action {
        if let Some(action) = self.drain_pending() {
            return action;
        }
        if self.alloc == 0 {
            return Action::Parked;
        }
        match self.state {
            State::Init => {
                self.started = true;
                self.state = State::CreateSpill;
                Action::Cpu(cost::INIT_OP)
            }
            State::CreateSpill => {
                self.state = State::BuildScan;
                self.scan_pos = 0;
                Action::CreateTemp {
                    slot: SPILL_SLOT,
                    pages: self.spill_capacity(),
                }
            }
            State::BuildScan => {
                if self.spill_accum >= self.cfg.block_pages as f64 {
                    let pages = self.cfg.block_pages;
                    self.spill_accum -= pages as f64;
                    self.spilled_r += pages as f64;
                    return self.spill_write(pages);
                }
                if self.scan_pos >= self.r_pages {
                    self.state = State::BuildFlush;
                    return self.step();
                }
                let pages = self.cfg.block_pages.min(self.r_pages - self.scan_pos);
                let first = self.scan_pos;
                self.scan_pos += pages;
                let tuples = pages as u64 * self.cfg.tuples_per_page as u64;
                self.pending_cpu += tuples * cost::HASH_INSERT + cost::START_IO;
                self.spill_accum += pages as f64 * self.frac_con;
                Action::Io(IoRequest {
                    file: FileRef::Base(self.r_file),
                    first_page: first,
                    pages,
                    kind: IoKind::Read,
                    prefetch: true,
                })
            }
            State::BuildFlush => {
                if self.spill_accum >= 1.0 {
                    let pages =
                        (self.spill_accum.ceil() as u32).min(self.cfg.block_pages);
                    self.spill_accum = (self.spill_accum - pages as f64).max(0.0);
                    self.spilled_r += pages as f64;
                    return self.spill_write(pages);
                }
                self.spill_accum = 0.0;
                self.state = State::ProbeScan;
                self.scan_pos = 0;
                self.step()
            }
            State::ProbeScan => {
                if self.spill_accum >= self.cfg.block_pages as f64 {
                    let pages = self.cfg.block_pages;
                    self.spill_accum -= pages as f64;
                    self.spilled_s += pages as f64;
                    return self.spill_write(pages);
                }
                if self.scan_pos >= self.s_pages {
                    self.state = State::ProbeFlush;
                    return self.step();
                }
                let pages = self.cfg.block_pages.min(self.s_pages - self.scan_pos);
                let first = self.scan_pos;
                self.scan_pos += pages;
                let cpu = if pages == self.cfg.block_pages {
                    self.probe_cpu_block
                } else {
                    self.probe_cpu_for(pages)
                };
                self.pending_cpu += cpu + cost::START_IO;
                self.spill_accum += pages as f64 * self.frac_con;
                Action::Io(IoRequest {
                    file: FileRef::Base(self.s_file),
                    first_page: first,
                    pages,
                    kind: IoKind::Read,
                    prefetch: true,
                })
            }
            State::ProbeFlush => {
                if self.spill_accum >= 1.0 {
                    let pages =
                        (self.spill_accum.ceil() as u32).min(self.cfg.block_pages);
                    self.spill_accum = (self.spill_accum - pages as f64).max(0.0);
                    self.spilled_s += pages as f64;
                    return self.spill_write(pages);
                }
                self.spill_accum = 0.0;
                self.second_read = 0.0;
                self.state = State::SecondBuild;
                self.step()
            }
            State::SecondBuild => {
                if self.spilled_r < 1.0 {
                    self.spilled_r = 0.0;
                    self.state = State::SecondProbe;
                    return self.step();
                }
                let pages = (self.spilled_r.floor() as u32)
                    .min(self.cfg.block_pages)
                    .max(1);
                self.spilled_r = (self.spilled_r - pages as f64).max(0.0);
                let first = (self.second_read as u32) % self.spill_capacity();
                self.second_read += pages as f64;
                let tuples = pages as u64 * self.cfg.tuples_per_page as u64;
                self.pending_cpu += tuples * cost::HASH_INSERT + cost::START_IO;
                Action::Io(IoRequest {
                    file: FileRef::Temp(SPILL_SLOT),
                    first_page: first,
                    pages,
                    kind: IoKind::Read,
                    prefetch: true,
                })
            }
            State::SecondProbe => {
                if self.spilled_s < 1.0 {
                    self.spilled_s = 0.0;
                    self.state = State::Terminate;
                    return self.step();
                }
                let pages = (self.spilled_s.floor() as u32)
                    .min(self.cfg.block_pages)
                    .max(1);
                self.spilled_s = (self.spilled_s - pages as f64).max(0.0);
                let first = (self.second_read as u32) % self.spill_capacity();
                self.second_read += pages as f64;
                let tuples = pages as u64 * self.cfg.tuples_per_page as u64;
                self.pending_cpu +=
                    tuples * (cost::HASH_PROBE + cost::HASH_COPY) + cost::START_IO;
                Action::Io(IoRequest {
                    file: FileRef::Temp(SPILL_SLOT),
                    first_page: first,
                    pages,
                    kind: IoKind::Read,
                    prefetch: true,
                })
            }
            State::Terminate => {
                self.state = State::DropSpill;
                Action::Cpu(cost::TERMINATE_OP)
            }
            State::DropSpill => {
                self.state = State::Done;
                Action::DropTemp { slot: SPILL_SLOT }
            }
            State::Done => Action::Finished,
        }
    }

    fn fluctuations(&self) -> u32 {
        self.fluctuations
    }

    fn operand_pages(&self) -> u32 {
        self.r_pages + self.s_pages
    }
}

/// Number of blocked I/Os needed to read the operands once (workload
/// characteristic 2 of Section 3.3).
pub fn operand_read_ios(cfg: &ExecConfig, r_pages: u32, s_pages: u32) -> u32 {
    blocks_for(r_pages, cfg.block_pages) + blocks_for(s_pages, cfg.block_pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(r: u32, s: u32) -> HashJoin {
        HashJoin::new(
            ExecConfig::default(),
            FileId::Relation(0),
            r,
            FileId::Relation(1),
            s,
        )
    }

    /// Drive the operator to completion with a fixed allocation, returning
    /// (base reads, temp reads, temp writes, cpu instructions).
    fn run_fixed(op: &mut HashJoin, alloc: u32) -> (u32, u32, u32, u64) {
        op.set_allocation(alloc);
        let mut base_reads = 0;
        let mut temp_reads = 0;
        let mut temp_writes = 0;
        let mut cpu = 0u64;
        for _ in 0..1_000_000 {
            match op.step() {
                Action::Cpu(n) => cpu += n,
                Action::Io(io) => match (io.file, io.kind) {
                    (FileRef::Base(_), IoKind::Read) => base_reads += io.pages,
                    (FileRef::Temp(_), IoKind::Read) => temp_reads += io.pages,
                    (FileRef::Temp(_), IoKind::Write) => temp_writes += io.pages,
                    (FileRef::Base(_), IoKind::Write) => {
                        panic!("joins never write relations")
                    }
                },
                Action::CreateTemp { .. } | Action::DropTemp { .. } => {}
                Action::Parked => panic!("parked with non-zero allocation"),
                Action::Finished => return (base_reads, temp_reads, temp_writes, cpu),
            }
        }
        panic!("join did not terminate");
    }

    #[test]
    fn memory_bounds_match_paper_baseline() {
        // ‖R‖ = 1200 → max ≈ 1321, min = 37 (Section 5.1).
        let cfg = ExecConfig::default();
        assert_eq!(HashJoin::max_memory_for(&cfg, 1200), 1321);
        assert_eq!(HashJoin::min_memory_for(&cfg, 1200), 37);
    }

    #[test]
    fn max_memory_join_spills_nothing() {
        let mut op = join(600, 3000);
        let max = op.max_memory();
        let (base, tr, tw, cpu) = run_fixed(&mut op, max);
        assert_eq!(base, 3600, "reads each operand exactly once");
        assert_eq!(tr, 0);
        assert_eq!(tw, 0);
        assert!(cpu > 0);
    }

    #[test]
    fn min_memory_join_spills_everything() {
        let (r, s) = (600, 3000);
        let mut op = join(r, s);
        let min = op.min_memory();
        let (base, tr, tw, _) = run_fixed(&mut op, min);
        assert_eq!(base, r + s);
        // Two-pass (Grace-style) join: all of R and S written and re-read,
        // within block-rounding slack.
        let expect = r + s;
        assert!(
            (tw as i64 - expect as i64).unsigned_abs() <= 12,
            "writes {tw} vs {expect}"
        );
        assert!(
            (tr as i64 - tw as i64).unsigned_abs() <= 12,
            "reads {tr} vs writes {tw}"
        );
    }

    #[test]
    fn intermediate_allocation_spills_partially() {
        let (r, s) = (600, 3000);
        let mut op = join(r, s);
        let mid = (op.min_memory() + op.max_memory()) / 2;
        let (_, tr, tw, _) = run_fixed(&mut op, mid);
        assert!(tw > 0, "mid allocation must spill something");
        assert!(
            (tw as f64) < 0.8 * (r + s) as f64,
            "mid allocation must spill less than everything: {tw}"
        );
        assert!((tr as i64 - tw as i64).unsigned_abs() <= 12);
    }

    #[test]
    fn more_memory_means_less_io() {
        let totals: Vec<u32> = [37, 200, 600, 1321]
            .iter()
            .map(|&alloc| {
                let mut op = join(1200, 6000);
                let (_, tr, tw, _) = run_fixed(&mut op, alloc);
                tr + tw
            })
            .collect();
        for w in totals.windows(2) {
            assert!(
                w[1] <= w[0],
                "I/O must not increase with memory: {totals:?}"
            );
        }
        assert!(totals[0] > totals[3]);
    }

    #[test]
    fn cpu_cost_scales_with_relation_sizes() {
        let mut small = join(100, 500);
        let a = small.max_memory();
        let (_, _, _, cpu_small) = run_fixed(&mut small, a);
        let mut big = join(200, 1000);
        let a = big.max_memory();
        let (_, _, _, cpu_big) = run_fixed(&mut big, a);
        assert!(cpu_big > cpu_small);
        // Per Table 4 at max memory: init + term + R·tpp·100 + S·tpp·300 +
        // I/O starts. Check the big join's total against the closed form.
        let tpp = 40u64;
        let expected = 40_000
            + 10_000
            + 200 * tpp * 100
            + 1000 * tpp * 300
            + ((200 + 1000 + 5) / 6) as u64 * 1000;
        let ratio = cpu_big as f64 / expected as f64;
        assert!((0.95..1.05).contains(&ratio), "cpu {cpu_big} vs {expected}");
    }

    #[test]
    fn contraction_mid_build_spools_and_costs_io() {
        let mut op = join(1200, 6000);
        op.set_allocation(op.max_memory());
        // Read half the build input.
        let mut read = 0;
        while read < 600 {
            match op.step() {
                Action::Io(io) if matches!(io.file, FileRef::Base(_)) => read += io.pages,
                Action::Finished => panic!("premature finish"),
                _ => {}
            }
        }
        // Contract to the minimum: the in-memory half of R must spool out.
        op.set_allocation(op.min_memory());
        let mut spool_writes = 0;
        loop {
            match op.step() {
                Action::Io(io)
                    if matches!(io.file, FileRef::Temp(_))
                        && io.kind == IoKind::Write =>
                {
                    spool_writes += io.pages
                }
                Action::Finished => break,
                _ => {}
            }
        }
        // Roughly: 600 pages dumped + the other 600 spilled during the rest
        // of the build + all 6000 of S.
        assert!(
            (6800..=7600).contains(&spool_writes),
            "spool writes {spool_writes}"
        );
        assert_eq!(op.fluctuations(), 1);
    }

    #[test]
    fn late_expansion_reads_back_spilled_build_pages() {
        let mut op = join(1200, 6000);
        op.set_allocation(op.min_memory()); // everything contracted
                                            // Finish build, start probing.
        let mut s_read = 0;
        while s_read < 600 {
            match op.step() {
                Action::Io(io) if io.file == FileRef::Base(FileId::Relation(1)) => {
                    s_read += io.pages
                }
                Action::Finished => panic!("premature finish"),
                _ => {}
            }
        }
        // Grant the maximum: spilled R pages must be read back (expansion).
        op.set_allocation(op.max_memory());
        let mut expand_reads = 0.0;
        let mut finished = false;
        let mut steps = 0;
        while !finished {
            steps += 1;
            assert!(steps < 100_000);
            match op.step() {
                Action::Io(io)
                    if matches!(io.file, FileRef::Temp(_)) && io.kind == IoKind::Read =>
                {
                    expand_reads += io.pages as f64;
                }
                Action::Finished => finished = true,
                _ => {}
            }
        }
        // All ~1200 spilled R pages come back (expansion + second pass);
        // after expansion the remaining 5400 S pages join directly.
        assert!(
            (1100.0..=1900.0).contains(&expand_reads),
            "expansion reads {expand_reads}"
        );
    }

    #[test]
    fn suspension_parks_after_flush_and_resumes() {
        let mut op = join(600, 3000);
        op.set_allocation(op.max_memory());
        let mut read = 0;
        while read < 300 {
            match op.step() {
                Action::Io(io) if matches!(io.file, FileRef::Base(_)) => read += io.pages,
                _ => {}
            }
        }
        op.set_allocation(0);
        // Drain flush work, then we must park.
        let mut parked = false;
        for _ in 0..10_000 {
            match op.step() {
                Action::Parked => {
                    parked = true;
                    break;
                }
                Action::Finished => panic!("cannot finish while suspended"),
                _ => {}
            }
        }
        assert!(parked, "operator must park once flushed");
        // Resume and run to completion.
        op.set_allocation(op.min_memory());
        let mut done = false;
        for _ in 0..1_000_000 {
            if op.step() == Action::Finished {
                done = true;
                break;
            }
        }
        assert!(done);
        // Two mid-execution changes: suspend, resume (the initial grant
        // happened before execution started and does not count).
        assert_eq!(op.fluctuations(), 2);
    }

    #[test]
    fn io_requests_are_block_sized() {
        let mut op = join(1201, 6001); // non-multiples of the block size
        op.set_allocation(op.min_memory());
        loop {
            match op.step() {
                Action::Io(io) => {
                    assert!(io.pages >= 1 && io.pages <= 6, "bad block {io:?}");
                }
                Action::Finished => break,
                _ => {}
            }
        }
    }

    #[test]
    fn operand_read_ios_counts_blocks() {
        let cfg = ExecConfig::default();
        assert_eq!(operand_read_ios(&cfg, 1200, 6000), 200 + 1000);
        assert_eq!(operand_read_ios(&cfg, 1201, 6000), 201 + 1000);
    }

    #[test]
    fn allocation_below_min_is_rejected() {
        let mut op = join(1200, 6000);
        let min = op.min_memory();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            op.set_allocation(min - 1);
        }));
        assert!(result.is_err());
    }
}
