//! Model-based equivalence test for the run-length operator protocol.
//!
//! The single-step protocol ([`Operator::step`]) is the reference; the
//! run-length protocol ([`Operator::plan_run`] / [`Operator::sync_run`])
//! must emit the *identical* action stream under arbitrary allocation
//! schedules — including suspensions, mid-run contractions and expansions
//! landing at arbitrary consumption offsets (the engine's `reallocate`
//! interrupting a partially consumed run). Both drivers apply the same
//! `set_allocation` calls after the same number of consumed actions; the
//! streams and the final fluctuation counts must match exactly.

use exec::{Action, ActionRun, ExecConfig, ExternalSort, HashJoin, Operator};
use proptest::prelude::*;
use storage::FileId;

/// Hard cap on driven actions so a regression cannot hang the test.
const MAX_ACTIONS: usize = 2_000_000;

/// One schedule entry: consume `gap` actions, then set the allocation
/// selected by `sel` (0 = suspend, 1 = min, 2/3 = intermediate, 4 = max).
type Schedule = Vec<(usize, u8)>;

fn pick_alloc(sel: u8, min: u32, max: u32) -> u32 {
    match sel % 5 {
        0 => 0,
        1 => min,
        2 => min + (max - min) / 3,
        3 => min + 2 * (max - min) / 3,
        _ => max,
    }
}

/// Drive `op` through `schedule` with the single-step protocol.
fn drive_steps<O: Operator>(op: &mut O, schedule: &Schedule) -> (Vec<Action>, u32) {
    let min = op.min_memory();
    let max = op.max_memory();
    op.set_allocation(max);
    let mut out = Vec::new();
    // A parked operator stops being driven until the entry's allocation
    // change lands, exactly like the engine's `Waiting::Nothing` state.
    'sched: for &(gap, sel) in schedule {
        for _ in 0..gap {
            let a = op.step();
            out.push(a);
            match a {
                Action::Finished => break 'sched,
                Action::Parked => break,
                _ => {}
            }
        }
        op.set_allocation(pick_alloc(sel, min, max));
    }
    if out.last() != Some(&Action::Finished) {
        if op.allocation() == 0 {
            op.set_allocation(min);
        }
        loop {
            let a = op.step();
            out.push(a);
            assert_ne!(a, Action::Parked, "parked with a non-zero allocation");
            if a == Action::Finished {
                break;
            }
            assert!(out.len() < MAX_ACTIONS, "operator did not terminate");
        }
    }
    (out, op.fluctuations())
}

/// Drive `op` through `schedule` with the run-length protocol, abandoning
/// partially consumed runs at every allocation change exactly like the
/// engine does (`sync_run` then `set_allocation`).
fn drive_runs<O: Operator>(op: &mut O, schedule: &Schedule) -> (Vec<Action>, u32) {
    let min = op.min_memory();
    let max = op.max_memory();
    op.set_allocation(max);
    let mut out = Vec::new();
    let mut run = ActionRun::new();
    'sched: for &(gap, sel) in schedule {
        let mut left = gap;
        while left > 0 {
            let Some(a) = run.pop() else {
                op.plan_run(&mut run);
                assert!(!run.is_empty(), "planned run is never empty");
                continue;
            };
            out.push(a);
            left -= 1;
            match a {
                Action::Finished => break 'sched,
                Action::Parked => break,
                _ => {}
            }
        }
        if run.has_pending() {
            op.sync_run(&run);
        }
        run.clear();
        op.set_allocation(pick_alloc(sel, min, max));
    }
    if out.last() != Some(&Action::Finished) {
        if op.allocation() == 0 {
            if run.has_pending() {
                op.sync_run(&run);
            }
            run.clear();
            op.set_allocation(min);
        }
        loop {
            let Some(a) = run.pop() else {
                op.plan_run(&mut run);
                continue;
            };
            out.push(a);
            assert_ne!(a, Action::Parked, "parked with a non-zero allocation");
            if a == Action::Finished {
                break;
            }
            assert!(out.len() < MAX_ACTIONS, "operator did not terminate");
        }
    }
    (out, op.fluctuations())
}

fn assert_streams_match(
    (ref_actions, ref_fluct): (Vec<Action>, u32),
    (run_actions, run_fluct): (Vec<Action>, u32),
) {
    assert_eq!(
        ref_actions.len(),
        run_actions.len(),
        "stream lengths diverge"
    );
    for (i, (a, b)) in ref_actions.iter().zip(run_actions.iter()).enumerate() {
        assert_eq!(a, b, "action {i} diverges");
    }
    assert_eq!(ref_fluct, run_fluct, "fluctuation counts diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hash_join_run_protocol_matches_step_protocol(
        r_pages in 40u32..400,
        s_factor in 1u32..6,
        schedule in proptest::collection::vec((0usize..200, 0u8..255), 1..12),
    ) {
        let s_pages = r_pages * s_factor;
        let mk = || HashJoin::new(
            ExecConfig::default(),
            FileId::Relation(0),
            r_pages,
            FileId::Relation(1),
            s_pages,
        );
        let by_steps = drive_steps(&mut mk(), &schedule);
        let by_runs = drive_runs(&mut mk(), &schedule);
        assert_streams_match(by_steps, by_runs);
    }

    #[test]
    fn external_sort_run_protocol_matches_step_protocol(
        r_pages in 24u32..300,
        schedule in proptest::collection::vec((0usize..200, 0u8..255), 1..12),
    ) {
        let mk = || ExternalSort::new(ExecConfig::default(), FileId::Relation(0), r_pages);
        let by_steps = drive_steps(&mut mk(), &schedule);
        let by_runs = drive_runs(&mut mk(), &schedule);
        assert_streams_match(by_steps, by_runs);
    }
}

/// Directed case: interruptions at every offset of the first few runs of a
/// small join — catches off-by-one replay bugs the random schedules might
/// miss between two batch boundaries.
#[test]
fn every_interruption_offset_replays_exactly() {
    for offset in 0usize..140 {
        let schedule: Schedule = vec![(offset, 2), (37, 3), (11, 0), (5, 4)];
        let mk = || {
            HashJoin::new(
                ExecConfig::default(),
                FileId::Relation(0),
                60,
                FileId::Relation(1),
                180,
            )
        };
        let by_steps = drive_steps(&mut mk(), &schedule);
        let by_runs = drive_runs(&mut mk(), &schedule);
        assert_streams_match(by_steps, by_runs);
    }
}

/// Directed case: a sort suspended mid-merge and resumed must match across
/// protocols (exercises `split_requested` through checkpoint replay).
#[test]
fn sort_suspend_resume_mid_merge_matches() {
    for offset in [0usize, 3, 17, 40, 90, 150, 260] {
        let schedule: Schedule = vec![(120, 1), (offset, 0), (9, 4)];
        let mk = || ExternalSort::new(ExecConfig::default(), FileId::Relation(0), 120);
        let by_steps = drive_steps(&mut mk(), &schedule);
        let by_runs = drive_runs(&mut mk(), &schedule);
        assert_streams_match(by_steps, by_runs);
    }
}
