//! Sim-time tracing: typed events, a pluggable sink, and a text renderer.
//!
//! A [`Tracer`] owns an event-kind bitmask and a sink (null, ring, or
//! full, per [`TraceMode`]). `emit` is
//! `#[inline]` and checks the mask first, so a disabled tracer costs one
//! load, test, and (not-taken) branch per call site — the "compiles to
//! nothing on the hot path" null sink the flight-recorder design calls for.

use crate::{ObsConfig, TraceMode};
use simkit::{Duration, SimTime};

/// Event categories, one bit each, for the tracer's enable mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum TraceKind {
    /// A query entered the system.
    Arrival = 1 << 0,
    /// An inter-arrival gap was drawn from the arrival process.
    ArrivalGap = 1 << 1,
    /// A query received its first non-zero memory grant.
    Admission = 1 << 2,
    /// A query's memory grant changed.
    Grant = 1 << 3,
    /// A CPU burst was submitted for a query.
    Cpu = 1 << 4,
    /// A disk request started service (cache hit or media access).
    Io = 1 << 5,
    /// A query left the system (commit or deadline miss).
    Departure = 1 << 6,
    /// The memory policy recorded a strategy/target decision.
    PolicyDecision = 1 << 7,
    /// A feedback batch closed.
    Batch = 1 << 8,
    /// A fault-plan transition was applied (fault began or cleared).
    Fault = 1 << 9,
    /// A disk access failed during an outage and entered a retry backoff.
    IoRetry = 1 << 10,
    /// The degradation policy acted on a query (abort/requeue/suspend).
    Degraded = 1 << 11,
}

impl TraceKind {
    /// All kinds enabled.
    pub const ALL: u16 = (1 << 12) - 1;

    /// This kind's bit in the enable mask.
    #[inline]
    pub fn bit(self) -> u16 {
        self as u16
    }
}

/// The strategy mode a policy decision selected.
///
/// Mirror of `pmm::StrategyMode` (the `pmm` crate provides `From`
/// conversions both ways); `Display` is byte-identical to the original so
/// re-routed `TRACE_pmm_*.txt` artifacts keep their exact format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyMode {
    /// Allocate each admitted query its one-pass maximum.
    Max,
    /// Admit as many as possible at their minimum, top up leftovers.
    MinMax,
    /// Split memory proportionally to demand.
    Proportional,
}

impl std::fmt::Display for PolicyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyMode::Max => write!(f, "Max"),
            PolicyMode::MinMax => write!(f, "MinMax"),
            PolicyMode::Proportional => write!(f, "Proportional"),
        }
    }
}

/// Which fault shape a [`TraceEvent::FaultInjected`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// A disk's media service times are scaled by a factor.
    DiskDegrade,
    /// A disk is unreachable; accesses fail into the retry ladder.
    DiskOutage,
    /// Total buffer memory shrank (or restored).
    MemoryShock,
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultClass::DiskDegrade => "degrade",
            FaultClass::DiskOutage => "outage",
            FaultClass::MemoryShock => "shock",
        })
    }
}

/// What the degradation policy did to a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradedAction {
    /// Aborted and counted missed.
    Aborted,
    /// Its hard-failed I/O was put back on the disk queue.
    Requeued,
    /// Left parked at zero grant until memory returns.
    Suspended,
}

impl std::fmt::Display for DegradedAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradedAction::Aborted => "aborted",
            DegradedAction::Requeued => "requeued",
            DegradedAction::Suspended => "suspended",
        })
    }
}

/// One typed trace event. All payloads are `Copy`; identifiers are raw
/// integers so the crate stays independent of the engine's types.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A query entered the system.
    Arrival {
        /// Engine-assigned query id.
        query: u64,
        /// Workload class index.
        class: u32,
    },
    /// An inter-arrival gap was drawn (recorded even when the resulting
    /// arrival falls past the horizon, matching `--record-arrivals`).
    ArrivalGap {
        /// Workload class index.
        class: u32,
        /// The gap in seconds, exactly as drawn.
        gap_secs: f64,
    },
    /// First non-zero grant: the query finished its admission wait.
    Admitted {
        /// Engine-assigned query id.
        query: u64,
        /// Time spent waiting for admission.
        wait: Duration,
    },
    /// The query's page grant changed (including to zero).
    GrantChanged {
        /// Engine-assigned query id.
        query: u64,
        /// New grant in pages.
        pages: u32,
    },
    /// A CPU burst was submitted to the scheduler.
    CpuBurst {
        /// Engine-assigned query id.
        query: u64,
        /// Burst length in instructions.
        instructions: u64,
    },
    /// A disk request started service.
    Io {
        /// Owning query id.
        query: u64,
        /// Disk index.
        disk: u32,
        /// Pages transferred.
        pages: u32,
        /// True for writes.
        write: bool,
        /// True when served from the buffer pool (service time zero).
        cache_hit: bool,
        /// Media service time (zero on cache hits).
        service: Duration,
    },
    /// A query left the system.
    Completed {
        /// Engine-assigned query id.
        query: u64,
        /// Workload class index.
        class: u32,
        /// True when the firm deadline was missed (abort), false on commit.
        missed: bool,
    },
    /// The memory policy recorded a strategy decision.
    PolicyDecision {
        /// Strategy the policy switched to / reaffirmed.
        mode: PolicyMode,
        /// MPL target, when the strategy carries one.
        target_mpl: Option<u32>,
    },
    /// A feedback batch closed (sample-size completions reached).
    BatchClosed {
        /// Queries served in the batch.
        served: u64,
        /// Deadline misses in the batch.
        missed: u64,
    },
    /// A fault-plan transition was applied.
    FaultInjected {
        /// The fault shape.
        fault: FaultClass,
        /// Target disk for device faults; `None` for memory shocks.
        disk: Option<u32>,
        /// True when the fault begins, false when it clears.
        active: bool,
        /// Degrade factor, or surviving memory fraction for shocks;
        /// 1.0 for outages and on every clearing transition.
        factor: f64,
    },
    /// A disk access failed during an outage: retry after a backoff.
    IoRetry {
        /// Owning query id.
        query: u64,
        /// Disk index.
        disk: u32,
        /// 1-based retry attempt this backoff precedes.
        attempt: u32,
        /// The backoff span of sim time.
        backoff: Duration,
    },
    /// The degradation policy acted on a query.
    Degraded {
        /// Engine-assigned query id.
        query: u64,
        /// Workload class index.
        class: u32,
        /// What was done to it.
        action: DegradedAction,
    },
}

impl TraceEvent {
    /// The kind bit this event belongs to.
    #[inline]
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceEvent::Arrival { .. } => TraceKind::Arrival,
            TraceEvent::ArrivalGap { .. } => TraceKind::ArrivalGap,
            TraceEvent::Admitted { .. } => TraceKind::Admission,
            TraceEvent::GrantChanged { .. } => TraceKind::Grant,
            TraceEvent::CpuBurst { .. } => TraceKind::Cpu,
            TraceEvent::Io { .. } => TraceKind::Io,
            TraceEvent::Completed { .. } => TraceKind::Departure,
            TraceEvent::PolicyDecision { .. } => TraceKind::PolicyDecision,
            TraceEvent::BatchClosed { .. } => TraceKind::Batch,
            TraceEvent::FaultInjected { .. } => TraceKind::Fault,
            TraceEvent::IoRetry { .. } => TraceKind::IoRetry,
            TraceEvent::Degraded { .. } => TraceKind::Degraded,
        }
    }
}

/// A trace event stamped with the virtual time it happened at.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// The event payload.
    pub event: TraceEvent,
}

/// An incremental file sink: records are rendered and written as they are
/// emitted, so a long traced run never buffers its full trace in memory.
#[derive(Debug)]
struct FileSink {
    w: std::io::BufWriter<std::fs::File>,
    /// Scratch line buffer, reused per record.
    line: String,
    /// Records written so far.
    written: usize,
}

/// Where accepted records go.
#[derive(Debug)]
enum Sink {
    /// Drop everything (the mask is zero too, so `emit` never reaches here).
    Null,
    /// Fixed-capacity circular buffer keeping the most recent records.
    Ring {
        buf: Vec<TraceRecord>,
        head: usize,
        cap: usize,
    },
    /// Unbounded in-memory log.
    Full(Vec<TraceRecord>),
    /// Streaming file sink: write each record out incrementally.
    Stream(FileSink),
}

/// The recording front end: an enable mask plus a sink.
#[derive(Debug)]
pub struct Tracer {
    mask: u16,
    sink: Sink,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::off()
    }
}

impl Tracer {
    /// A disabled tracer: mask zero, null sink, `emit` is a no-op branch.
    pub fn off() -> Self {
        Tracer {
            mask: 0,
            sink: Sink::Null,
        }
    }

    /// Build from an [`ObsConfig`]: all kinds enabled unless the mode is
    /// `Off`.
    pub fn new(cfg: &ObsConfig) -> Self {
        let mask = match cfg.trace {
            TraceMode::Off => 0,
            _ => TraceKind::ALL,
        };
        Tracer::with_mask(cfg.trace, cfg.ring_capacity, mask)
    }

    /// Build with an explicit enable mask (bits from [`TraceKind::bit`]).
    /// A zero mask forces the null sink regardless of `mode`.
    pub fn with_mask(mode: TraceMode, ring_capacity: usize, mask: u16) -> Self {
        let sink = if mask == 0 {
            Sink::Null
        } else {
            match mode {
                TraceMode::Off => Sink::Null,
                TraceMode::Ring => Sink::Ring {
                    buf: Vec::with_capacity(ring_capacity.min(1 << 20)),
                    head: 0,
                    cap: ring_capacity.max(1),
                },
                TraceMode::Full => Sink::Full(Vec::new()),
            }
        };
        let mask = match sink {
            Sink::Null => 0,
            _ => mask,
        };
        Tracer { mask, sink }
    }

    /// Build a streaming tracer: records are rendered with the
    /// [`render_text`] line format and appended to the file at `path` as
    /// they are emitted, never buffered for the whole run. A zero mask
    /// still forces the null sink (and opens nothing).
    pub fn streaming<P: AsRef<std::path::Path>>(
        path: P,
        mask: u16,
    ) -> std::io::Result<Self> {
        if mask == 0 {
            return Ok(Tracer::off());
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Tracer {
            mask,
            sink: Sink::Stream(FileSink {
                w: std::io::BufWriter::new(file),
                line: String::with_capacity(96),
                written: 0,
            }),
        })
    }

    /// Flush any buffered stream output. A no-op for in-memory sinks.
    ///
    /// # Panics
    /// Panics when the underlying file write fails — trace loss is a
    /// corrupted artifact, not a degraded run.
    pub fn finish(&mut self) {
        if let Sink::Stream(s) = &mut self.sink {
            std::io::Write::flush(&mut s.w).expect("cannot flush trace stream");
        }
    }

    /// True when `kind` events are being recorded.
    #[inline]
    pub fn wants(&self, kind: TraceKind) -> bool {
        self.mask & kind.bit() != 0
    }

    /// True when nothing is recorded (the hot-path fast case).
    #[inline]
    pub fn is_off(&self) -> bool {
        self.mask == 0
    }

    /// Record `event` at virtual time `at`, if its kind is enabled.
    #[inline]
    pub fn emit(&mut self, at: SimTime, event: TraceEvent) {
        if self.mask & event.kind().bit() == 0 {
            return;
        }
        self.push(TraceRecord { at, event });
    }

    #[inline(never)]
    fn push(&mut self, rec: TraceRecord) {
        match &mut self.sink {
            Sink::Null => {}
            Sink::Ring { buf, head, cap } => {
                if buf.len() < *cap {
                    buf.push(rec);
                } else {
                    buf[*head] = rec;
                    *head = (*head + 1) % *cap;
                }
            }
            Sink::Full(v) => v.push(rec),
            Sink::Stream(s) => {
                s.line.clear();
                render_record(&mut s.line, &rec);
                std::io::Write::write_all(&mut s.w, s.line.as_bytes())
                    .expect("cannot write trace stream");
                s.written += 1;
            }
        }
    }

    /// Number of records currently held (records already streamed to a
    /// file count as written, not held).
    pub fn len(&self) -> usize {
        match &self.sink {
            Sink::Null | Sink::Stream(_) => 0,
            Sink::Ring { buf, .. } => buf.len(),
            Sink::Full(v) => v.len(),
        }
    }

    /// Records written to a streaming sink so far (0 for in-memory sinks).
    pub fn streamed(&self) -> usize {
        match &self.sink {
            Sink::Stream(s) => s.written,
            _ => 0,
        }
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the held records in chronological order (ring buffers are
    /// unrotated first). The tracer keeps recording afterwards. A
    /// streaming sink holds nothing — its records are already on disk —
    /// so it flushes and returns empty.
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        match &mut self.sink {
            Sink::Null => Vec::new(),
            Sink::Ring { buf, head, .. } => {
                let mut out = Vec::with_capacity(buf.len());
                out.extend_from_slice(&buf[*head..]);
                out.extend_from_slice(&buf[..*head]);
                buf.clear();
                *head = 0;
                out
            }
            Sink::Full(v) => std::mem::take(v),
            Sink::Stream(_) => {
                self.finish();
                Vec::new()
            }
        }
    }
}

/// Render records as deterministic text, one line per record.
///
/// Times are seconds formatted with Rust's shortest-roundtrip `{:?}`, so
/// the output is byte-identical for identical records — across runs,
/// seeds, and driver thread counts.
pub fn render_text(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 48);
    for r in records {
        render_record(&mut out, r);
    }
    out
}

/// Render one record as its `render_text` line (the streaming sink writes
/// through this, so streamed and buffered traces are byte-identical).
fn render_record(out: &mut String, r: &TraceRecord) {
    let t = r.at.as_secs_f64();
    match r.event {
        TraceEvent::Arrival { query, class } => {
            out.push_str(&format!("{t:?} arrival query={query} class={class}\n"));
        }
        TraceEvent::ArrivalGap { class, gap_secs } => {
            out.push_str(&format!("{t:?} gap class={class} secs={gap_secs:?}\n"));
        }
        TraceEvent::Admitted { query, wait } => {
            out.push_str(&format!(
                "{t:?} admitted query={query} wait={:?}\n",
                wait.as_secs_f64()
            ));
        }
        TraceEvent::GrantChanged { query, pages } => {
            out.push_str(&format!("{t:?} grant query={query} pages={pages}\n"));
        }
        TraceEvent::CpuBurst {
            query,
            instructions,
        } => {
            out.push_str(&format!("{t:?} cpu query={query} instr={instructions}\n"));
        }
        TraceEvent::Io {
            query,
            disk,
            pages,
            write,
            cache_hit,
            service,
        } => {
            let kind = if write { "write" } else { "read" };
            out.push_str(&format!(
                    "{t:?} io query={query} disk={disk} pages={pages} kind={kind} hit={cache_hit} service={:?}\n",
                    service.as_secs_f64()
                ));
        }
        TraceEvent::Completed {
            query,
            class,
            missed,
        } => {
            out.push_str(&format!(
                "{t:?} done query={query} class={class} missed={missed}\n"
            ));
        }
        TraceEvent::PolicyDecision { mode, target_mpl } => {
            let target = target_mpl.map_or("-".to_string(), |m| m.to_string());
            out.push_str(&format!("{t:?} policy mode={mode} target={target}\n"));
        }
        TraceEvent::BatchClosed { served, missed } => {
            out.push_str(&format!("{t:?} batch served={served} missed={missed}\n"));
        }
        TraceEvent::FaultInjected {
            fault,
            disk,
            active,
            factor,
        } => {
            let disk = disk.map_or("-".to_string(), |d| d.to_string());
            out.push_str(&format!(
                    "{t:?} fault kind={fault} disk={disk} active={active} factor={factor:?}\n"
                ));
        }
        TraceEvent::IoRetry {
            query,
            disk,
            attempt,
            backoff,
        } => {
            out.push_str(&format!(
                    "{t:?} io-retry query={query} disk={disk} attempt={attempt} backoff={:?}\n",
                    backoff.as_secs_f64()
                ));
        }
        TraceEvent::Degraded {
            query,
            class,
            action,
        } => {
            out.push_str(&format!(
                "{t:?} degraded query={query} class={class} action={action}\n"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(us: u64, q: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime(us),
            event: TraceEvent::Arrival { query: q, class: 0 },
        }
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut t = Tracer::off();
        assert!(t.is_off());
        t.emit(SimTime(1), TraceEvent::Arrival { query: 0, class: 0 });
        assert!(t.is_empty());
        assert!(t.take_records().is_empty());
    }

    #[test]
    fn full_sink_keeps_everything_in_order() {
        let cfg = ObsConfig {
            trace: TraceMode::Full,
            ..ObsConfig::default()
        };
        let mut t = Tracer::new(&cfg);
        for i in 0..10 {
            t.emit(rec(i, i).at, rec(i, i).event);
        }
        let got = t.take_records();
        assert_eq!(got.len(), 10);
        assert!(got.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(t.is_empty());
    }

    #[test]
    fn ring_sink_keeps_most_recent_in_order() {
        let cfg = ObsConfig {
            trace: TraceMode::Ring,
            ring_capacity: 4,
            ..ObsConfig::default()
        };
        let mut t = Tracer::new(&cfg);
        for i in 0..11u64 {
            t.emit(SimTime(i), TraceEvent::Arrival { query: i, class: 0 });
        }
        let got = t.take_records();
        assert_eq!(got.len(), 4);
        let qs: Vec<u64> = got
            .iter()
            .map(|r| match r.event {
                TraceEvent::Arrival { query, .. } => query,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(qs, vec![7, 8, 9, 10]);
    }

    #[test]
    fn mask_filters_kinds() {
        let mut t = Tracer::with_mask(TraceMode::Full, 0, TraceKind::ArrivalGap.bit());
        assert!(t.wants(TraceKind::ArrivalGap));
        assert!(!t.wants(TraceKind::Arrival));
        t.emit(SimTime(1), TraceEvent::Arrival { query: 0, class: 0 });
        t.emit(
            SimTime(2),
            TraceEvent::ArrivalGap {
                class: 0,
                gap_secs: 0.5,
            },
        );
        let got = t.take_records();
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0].event, TraceEvent::ArrivalGap { .. }));
    }

    #[test]
    fn zero_mask_forces_null_sink() {
        let t = Tracer::with_mask(TraceMode::Full, 0, 0);
        assert!(t.is_off());
    }

    #[test]
    fn render_text_is_deterministic_and_covers_all_kinds() {
        let records = vec![
            TraceRecord {
                at: SimTime(1_000_000),
                event: TraceEvent::Arrival { query: 1, class: 0 },
            },
            TraceRecord {
                at: SimTime(1_000_000),
                event: TraceEvent::ArrivalGap {
                    class: 0,
                    gap_secs: 12.25,
                },
            },
            TraceRecord {
                at: SimTime(1_500_000),
                event: TraceEvent::Admitted {
                    query: 1,
                    wait: Duration(500_000),
                },
            },
            TraceRecord {
                at: SimTime(1_500_000),
                event: TraceEvent::GrantChanged {
                    query: 1,
                    pages: 40,
                },
            },
            TraceRecord {
                at: SimTime(1_600_000),
                event: TraceEvent::CpuBurst {
                    query: 1,
                    instructions: 5000,
                },
            },
            TraceRecord {
                at: SimTime(1_700_000),
                event: TraceEvent::Io {
                    query: 1,
                    disk: 0,
                    pages: 8,
                    write: false,
                    cache_hit: false,
                    service: Duration(21_000),
                },
            },
            TraceRecord {
                at: SimTime(2_000_000),
                event: TraceEvent::Completed {
                    query: 1,
                    class: 0,
                    missed: false,
                },
            },
            TraceRecord {
                at: SimTime(2_000_000),
                event: TraceEvent::PolicyDecision {
                    mode: PolicyMode::MinMax,
                    target_mpl: Some(12),
                },
            },
            TraceRecord {
                at: SimTime(2_000_000),
                event: TraceEvent::BatchClosed {
                    served: 30,
                    missed: 4,
                },
            },
        ];
        let a = render_text(&records);
        let b = render_text(&records);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), records.len());
        assert!(a.contains("1.0 arrival query=1 class=0"));
        assert!(a.contains("gap class=0 secs=12.25"));
        assert!(a.contains("policy mode=MinMax target=12"));
        assert!(a.contains("io query=1 disk=0 pages=8 kind=read hit=false service=0.021"));
    }

    fn fault_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                at: SimTime(60_000_000),
                event: TraceEvent::FaultInjected {
                    fault: FaultClass::DiskDegrade,
                    disk: Some(0),
                    active: true,
                    factor: 3.0,
                },
            },
            TraceRecord {
                at: SimTime(61_000_000),
                event: TraceEvent::FaultInjected {
                    fault: FaultClass::MemoryShock,
                    disk: None,
                    active: true,
                    factor: 0.5,
                },
            },
            TraceRecord {
                at: SimTime(62_000_000),
                event: TraceEvent::IoRetry {
                    query: 5,
                    disk: 2,
                    attempt: 1,
                    backoff: Duration(250_000),
                },
            },
            TraceRecord {
                at: SimTime(63_000_000),
                event: TraceEvent::Degraded {
                    query: 5,
                    class: 0,
                    action: DegradedAction::Aborted,
                },
            },
        ]
    }

    #[test]
    fn render_text_covers_fault_kinds() {
        let a = render_text(&fault_records());
        assert_eq!(a.lines().count(), 4);
        assert!(a.contains("60.0 fault kind=degrade disk=0 active=true factor=3.0"));
        assert!(a.contains("61.0 fault kind=shock disk=- active=true factor=0.5"));
        assert!(a.contains("62.0 io-retry query=5 disk=2 attempt=1 backoff=0.25"));
        assert!(a.contains("63.0 degraded query=5 class=0 action=aborted"));
    }

    #[test]
    fn fault_kinds_have_distinct_mask_bits() {
        let mut t = Tracer::with_mask(TraceMode::Full, 0, TraceKind::Degraded.bit());
        assert!(t.wants(TraceKind::Degraded));
        assert!(!t.wants(TraceKind::Fault));
        assert!(!t.wants(TraceKind::IoRetry));
        for r in fault_records() {
            t.emit(r.at, r.event);
        }
        let got = t.take_records();
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0].event, TraceEvent::Degraded { .. }));
    }

    #[test]
    fn streaming_sink_matches_render_text_byte_for_byte() {
        let dir = std::env::temp_dir().join("obs-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let records: Vec<TraceRecord> =
            (0..10).map(|i| rec(i, i)).chain(fault_records()).collect();
        {
            let mut t = Tracer::streaming(&path, TraceKind::ALL).unwrap();
            for r in &records {
                t.emit(r.at, r.event);
            }
            assert_eq!(t.len(), 0, "nothing buffered");
            assert_eq!(t.streamed(), records.len());
            assert!(t.take_records().is_empty(), "records live on disk");
        }
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed, render_text(&records));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streaming_with_zero_mask_opens_nothing() {
        let t = Tracer::streaming("/nonexistent-dir/never-created.txt", 0).unwrap();
        assert!(t.is_off());
    }
}
