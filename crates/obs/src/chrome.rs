//! Chrome trace-event JSON export.
//!
//! Renders a slice of [`TraceRecord`]s to the Chrome trace-event format
//! (the JSON Object Format: `{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). Virtual
//! time maps directly onto the trace clock: one simulator tick is one
//! microsecond, which is exactly the unit of the `ts`/`dur` fields, so
//! timestamps are emitted as exact integers.
//!
//! Lane layout (all under pid 0):
//! - tid 0 — engine control: policy decisions and batch boundaries;
//! - tid 1 — query lifecycle: async `b`/`n`/`e` spans keyed by query id
//!   (arrival → admission → completion), plus grant-change instants;
//! - tid 2 — CPU burst submissions;
//! - tid `10 + d` — disk `d`: media accesses as complete (`X`) slices
//!   with their service time as the duration, cache hits as instants.

use crate::trace::{TraceEvent, TraceRecord};

const ENGINE_TID: u32 = 0;
const QUERY_TID: u32 = 1;
const CPU_TID: u32 = 2;
const DISK_TID_BASE: u32 = 10;

fn push_event(out: &mut String, body: &str) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push('\n');
    out.push_str(body);
}

fn meta_thread(out: &mut String, tid: u32, name: &str) {
    push_event(
        out,
        &format!(
            r#"{{"ph":"M","pid":0,"tid":{tid},"name":"thread_name","args":{{"name":"{name}"}}}}"#
        ),
    );
}

/// Render `records` as a Chrome trace-event JSON document.
///
/// Output is deterministic: identical records yield identical bytes.
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"traceEvents\": [");
    push_event(
        &mut out,
        r#"{"ph":"M","pid":0,"name":"process_name","args":{"name":"pmm-sim"}}"#,
    );
    meta_thread(&mut out, ENGINE_TID, "engine");
    meta_thread(&mut out, QUERY_TID, "queries");
    meta_thread(&mut out, CPU_TID, "cpu");
    let mut disks_seen: Vec<u32> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::Io { disk, .. } | TraceEvent::IoRetry { disk, .. } => Some(disk),
            TraceEvent::FaultInjected { disk, .. } => disk,
            _ => None,
        })
        .collect();
    disks_seen.sort_unstable();
    disks_seen.dedup();
    for d in &disks_seen {
        meta_thread(&mut out, DISK_TID_BASE + d, &format!("disk{d}"));
    }

    // Open outage windows per disk, so the clearing transition can be
    // rendered as a complete (`X`) slice spanning the whole window.
    let mut outage_open: Vec<(u32, u64)> = Vec::new();
    for r in records {
        let ts = r.at.0;
        match r.event {
            TraceEvent::Arrival { query, class } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"b","cat":"query","id":{query},"name":"q{query}","pid":0,"tid":{QUERY_TID},"ts":{ts},"args":{{"class":{class}}}}}"#
                    ),
                );
            }
            TraceEvent::ArrivalGap { .. } => {}
            TraceEvent::Admitted { query, wait } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"n","cat":"query","id":{query},"name":"q{query}","pid":0,"tid":{QUERY_TID},"ts":{ts},"args":{{"admitted_after_us":{}}}}}"#,
                        wait.0
                    ),
                );
            }
            TraceEvent::GrantChanged { query, pages } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"i","s":"t","name":"grant q{query}","pid":0,"tid":{QUERY_TID},"ts":{ts},"args":{{"pages":{pages}}}}}"#
                    ),
                );
            }
            TraceEvent::CpuBurst {
                query,
                instructions,
            } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"i","s":"t","name":"cpu q{query}","pid":0,"tid":{CPU_TID},"ts":{ts},"args":{{"instructions":{instructions}}}}}"#
                    ),
                );
            }
            TraceEvent::Io {
                query,
                disk,
                pages,
                write,
                cache_hit,
                service,
            } => {
                let tid = DISK_TID_BASE + disk;
                let kind = if write { "write" } else { "read" };
                if cache_hit {
                    push_event(
                        &mut out,
                        &format!(
                            r#"{{"ph":"i","s":"t","name":"hit q{query}","pid":0,"tid":{tid},"ts":{ts},"args":{{"pages":{pages},"kind":"{kind}"}}}}"#
                        ),
                    );
                } else {
                    push_event(
                        &mut out,
                        &format!(
                            r#"{{"ph":"X","name":"io q{query}","pid":0,"tid":{tid},"ts":{ts},"dur":{},"args":{{"pages":{pages},"kind":"{kind}"}}}}"#,
                            service.0
                        ),
                    );
                }
            }
            TraceEvent::Completed {
                query,
                class,
                missed,
            } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"e","cat":"query","id":{query},"name":"q{query}","pid":0,"tid":{QUERY_TID},"ts":{ts},"args":{{"class":{class},"missed":{missed}}}}}"#
                    ),
                );
            }
            TraceEvent::PolicyDecision { mode, target_mpl } => {
                let target = target_mpl.map_or("null".to_string(), |m| m.to_string());
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"i","s":"g","name":"policy {mode}","pid":0,"tid":{ENGINE_TID},"ts":{ts},"args":{{"target_mpl":{target}}}}}"#
                    ),
                );
            }
            TraceEvent::BatchClosed { served, missed } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"i","s":"g","name":"batch","pid":0,"tid":{ENGINE_TID},"ts":{ts},"args":{{"served":{served},"missed":{missed}}}}}"#
                    ),
                );
            }
            TraceEvent::FaultInjected {
                fault,
                disk,
                active,
                factor,
            } => {
                use crate::trace::FaultClass;
                match (fault, disk) {
                    (FaultClass::DiskOutage, Some(d)) => {
                        // Outage windows render as per-disk duration spans:
                        // an instant at the opening transition, the `X`
                        // slice once the window's extent is known.
                        if active {
                            outage_open.push((d, ts));
                            push_event(
                                &mut out,
                                &format!(
                                    r#"{{"ph":"i","s":"t","name":"outage begin","pid":0,"tid":{},"ts":{ts}}}"#,
                                    DISK_TID_BASE + d
                                ),
                            );
                        } else if let Some(i) =
                            outage_open.iter().position(|&(od, _)| od == d)
                        {
                            let (_, start) = outage_open.swap_remove(i);
                            push_event(
                                &mut out,
                                &format!(
                                    r#"{{"ph":"X","name":"outage","pid":0,"tid":{},"ts":{start},"dur":{}}}"#,
                                    DISK_TID_BASE + d,
                                    ts - start
                                ),
                            );
                        }
                    }
                    (_, d) => {
                        let tid = d.map_or(ENGINE_TID, |d| DISK_TID_BASE + d);
                        push_event(
                            &mut out,
                            &format!(
                                r#"{{"ph":"i","s":"g","name":"{fault} {}","pid":0,"tid":{tid},"ts":{ts},"args":{{"factor":{factor:?}}}}}"#,
                                if active { "begin" } else { "end" }
                            ),
                        );
                    }
                }
            }
            TraceEvent::IoRetry {
                query,
                disk,
                attempt,
                backoff,
            } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"i","s":"t","name":"retry q{query}","pid":0,"tid":{},"ts":{ts},"args":{{"attempt":{attempt},"backoff_us":{}}}}}"#,
                        DISK_TID_BASE + disk,
                        backoff.0
                    ),
                );
            }
            TraceEvent::Degraded {
                query,
                class,
                action,
            } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"i","s":"t","name":"degraded q{query}","pid":0,"tid":{QUERY_TID},"ts":{ts},"args":{{"class":{class},"action":"{action}"}}}}"#
                    ),
                );
            }
        }
    }
    // Outages still open at the end of the trace span to its last instant.
    if let Some(last) = records.last() {
        outage_open.sort_unstable();
        for (d, start) in outage_open {
            push_event(
                &mut out,
                &format!(
                    r#"{{"ph":"X","name":"outage","pid":0,"tid":{},"ts":{start},"dur":{}}}"#,
                    DISK_TID_BASE + d,
                    last.at.0.saturating_sub(start)
                ),
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::PolicyMode;
    use simkit::{Duration, SimTime};

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                at: SimTime(1_000_000),
                event: TraceEvent::Arrival { query: 1, class: 0 },
            },
            TraceRecord {
                at: SimTime(1_100_000),
                event: TraceEvent::Admitted {
                    query: 1,
                    wait: Duration(100_000),
                },
            },
            TraceRecord {
                at: SimTime(1_200_000),
                event: TraceEvent::Io {
                    query: 1,
                    disk: 0,
                    pages: 8,
                    write: false,
                    cache_hit: false,
                    service: Duration(21_000),
                },
            },
            TraceRecord {
                at: SimTime(1_300_000),
                event: TraceEvent::Io {
                    query: 1,
                    disk: 1,
                    pages: 1,
                    write: true,
                    cache_hit: true,
                    service: Duration(0),
                },
            },
            TraceRecord {
                at: SimTime(2_000_000),
                event: TraceEvent::Completed {
                    query: 1,
                    class: 0,
                    missed: true,
                },
            },
            TraceRecord {
                at: SimTime(2_000_000),
                event: TraceEvent::PolicyDecision {
                    mode: PolicyMode::Max,
                    target_mpl: None,
                },
            },
        ]
    }

    #[test]
    fn export_is_wrapped_and_deterministic() {
        let a = chrome_trace_json(&sample());
        let b = chrome_trace_json(&sample());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\": ["));
        assert!(a.ends_with("]}\n"));
    }

    #[test]
    fn export_contains_expected_phases_and_lanes() {
        let json = chrome_trace_json(&sample());
        assert!(json.contains(r#""ph":"b","cat":"query","id":1"#));
        assert!(json.contains(r#""ph":"e","cat":"query","id":1"#));
        assert!(json.contains(r#""ph":"X","name":"io q1""#));
        assert!(json.contains(r#""dur":21000"#));
        assert!(json.contains(r#""name":"disk0""#));
        assert!(json.contains(r#""name":"disk1""#));
        assert!(json.contains(r#""name":"policy Max""#));
        assert!(json.contains(r#""target_mpl":null"#));
        assert!(json.contains(r#""ts":1000000"#));
    }

    #[test]
    fn outage_windows_render_as_disk_duration_spans() {
        use crate::trace::{DegradedAction, FaultClass};
        let records = vec![
            TraceRecord {
                at: SimTime(120_000_000),
                event: TraceEvent::FaultInjected {
                    fault: FaultClass::DiskOutage,
                    disk: Some(2),
                    active: true,
                    factor: 1.0,
                },
            },
            TraceRecord {
                at: SimTime(125_000_000),
                event: TraceEvent::IoRetry {
                    query: 9,
                    disk: 2,
                    attempt: 1,
                    backoff: Duration(250_000),
                },
            },
            TraceRecord {
                at: SimTime(130_000_000),
                event: TraceEvent::Degraded {
                    query: 9,
                    class: 0,
                    action: DegradedAction::Aborted,
                },
            },
            TraceRecord {
                at: SimTime(210_000_000),
                event: TraceEvent::FaultInjected {
                    fault: FaultClass::DiskOutage,
                    disk: Some(2),
                    active: false,
                    factor: 1.0,
                },
            },
            TraceRecord {
                at: SimTime(220_000_000),
                event: TraceEvent::FaultInjected {
                    fault: FaultClass::MemoryShock,
                    disk: None,
                    active: true,
                    factor: 0.5,
                },
            },
        ];
        let json = chrome_trace_json(&records);
        // The outage is a complete slice on disk 2's lane spanning the
        // whole window.
        assert!(json.contains(
            r#""ph":"X","name":"outage","pid":0,"tid":12,"ts":120000000,"dur":90000000"#
        ));
        assert!(
            json.contains(r#""name":"disk2""#),
            "fault-only disks get lanes"
        );
        assert!(json.contains(r#""name":"retry q9""#));
        assert!(json.contains(r#""name":"degraded q9""#));
        assert!(json.contains(r#""name":"shock begin""#));
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
    }

    #[test]
    fn unclosed_outage_spans_to_the_last_record() {
        use crate::trace::FaultClass;
        let records = vec![
            TraceRecord {
                at: SimTime(100),
                event: TraceEvent::FaultInjected {
                    fault: FaultClass::DiskOutage,
                    disk: Some(0),
                    active: true,
                    factor: 1.0,
                },
            },
            TraceRecord {
                at: SimTime(500),
                event: TraceEvent::Arrival { query: 1, class: 0 },
            },
        ];
        let json = chrome_trace_json(&records);
        assert!(json
            .contains(r#""ph":"X","name":"outage","pid":0,"tid":10,"ts":100,"dur":400"#));
    }

    #[test]
    fn export_balances_braces_and_brackets() {
        let json = chrome_trace_json(&sample());
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
