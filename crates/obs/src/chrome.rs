//! Chrome trace-event JSON export.
//!
//! Renders a slice of [`TraceRecord`]s to the Chrome trace-event format
//! (the JSON Object Format: `{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). Virtual
//! time maps directly onto the trace clock: one simulator tick is one
//! microsecond, which is exactly the unit of the `ts`/`dur` fields, so
//! timestamps are emitted as exact integers.
//!
//! Lane layout (all under pid 0):
//! - tid 0 — engine control: policy decisions and batch boundaries;
//! - tid 1 — query lifecycle: async `b`/`n`/`e` spans keyed by query id
//!   (arrival → admission → completion), plus grant-change instants;
//! - tid 2 — CPU burst submissions;
//! - tid `10 + d` — disk `d`: media accesses as complete (`X`) slices
//!   with their service time as the duration, cache hits as instants.

use crate::trace::{TraceEvent, TraceRecord};

const ENGINE_TID: u32 = 0;
const QUERY_TID: u32 = 1;
const CPU_TID: u32 = 2;
const DISK_TID_BASE: u32 = 10;

fn push_event(out: &mut String, body: &str) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push('\n');
    out.push_str(body);
}

fn meta_thread(out: &mut String, tid: u32, name: &str) {
    push_event(
        out,
        &format!(
            r#"{{"ph":"M","pid":0,"tid":{tid},"name":"thread_name","args":{{"name":"{name}"}}}}"#
        ),
    );
}

/// Render `records` as a Chrome trace-event JSON document.
///
/// Output is deterministic: identical records yield identical bytes.
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"traceEvents\": [");
    push_event(
        &mut out,
        r#"{"ph":"M","pid":0,"name":"process_name","args":{"name":"pmm-sim"}}"#,
    );
    meta_thread(&mut out, ENGINE_TID, "engine");
    meta_thread(&mut out, QUERY_TID, "queries");
    meta_thread(&mut out, CPU_TID, "cpu");
    let mut disks_seen: Vec<u32> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::Io { disk, .. } => Some(disk),
            _ => None,
        })
        .collect();
    disks_seen.sort_unstable();
    disks_seen.dedup();
    for d in &disks_seen {
        meta_thread(&mut out, DISK_TID_BASE + d, &format!("disk{d}"));
    }

    for r in records {
        let ts = r.at.0;
        match r.event {
            TraceEvent::Arrival { query, class } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"b","cat":"query","id":{query},"name":"q{query}","pid":0,"tid":{QUERY_TID},"ts":{ts},"args":{{"class":{class}}}}}"#
                    ),
                );
            }
            TraceEvent::ArrivalGap { .. } => {}
            TraceEvent::Admitted { query, wait } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"n","cat":"query","id":{query},"name":"q{query}","pid":0,"tid":{QUERY_TID},"ts":{ts},"args":{{"admitted_after_us":{}}}}}"#,
                        wait.0
                    ),
                );
            }
            TraceEvent::GrantChanged { query, pages } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"i","s":"t","name":"grant q{query}","pid":0,"tid":{QUERY_TID},"ts":{ts},"args":{{"pages":{pages}}}}}"#
                    ),
                );
            }
            TraceEvent::CpuBurst {
                query,
                instructions,
            } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"i","s":"t","name":"cpu q{query}","pid":0,"tid":{CPU_TID},"ts":{ts},"args":{{"instructions":{instructions}}}}}"#
                    ),
                );
            }
            TraceEvent::Io {
                query,
                disk,
                pages,
                write,
                cache_hit,
                service,
            } => {
                let tid = DISK_TID_BASE + disk;
                let kind = if write { "write" } else { "read" };
                if cache_hit {
                    push_event(
                        &mut out,
                        &format!(
                            r#"{{"ph":"i","s":"t","name":"hit q{query}","pid":0,"tid":{tid},"ts":{ts},"args":{{"pages":{pages},"kind":"{kind}"}}}}"#
                        ),
                    );
                } else {
                    push_event(
                        &mut out,
                        &format!(
                            r#"{{"ph":"X","name":"io q{query}","pid":0,"tid":{tid},"ts":{ts},"dur":{},"args":{{"pages":{pages},"kind":"{kind}"}}}}"#,
                            service.0
                        ),
                    );
                }
            }
            TraceEvent::Completed {
                query,
                class,
                missed,
            } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"e","cat":"query","id":{query},"name":"q{query}","pid":0,"tid":{QUERY_TID},"ts":{ts},"args":{{"class":{class},"missed":{missed}}}}}"#
                    ),
                );
            }
            TraceEvent::PolicyDecision { mode, target_mpl } => {
                let target = target_mpl.map_or("null".to_string(), |m| m.to_string());
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"i","s":"g","name":"policy {mode}","pid":0,"tid":{ENGINE_TID},"ts":{ts},"args":{{"target_mpl":{target}}}}}"#
                    ),
                );
            }
            TraceEvent::BatchClosed { served, missed } => {
                push_event(
                    &mut out,
                    &format!(
                        r#"{{"ph":"i","s":"g","name":"batch","pid":0,"tid":{ENGINE_TID},"ts":{ts},"args":{{"served":{served},"missed":{missed}}}}}"#
                    ),
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::PolicyMode;
    use simkit::{Duration, SimTime};

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                at: SimTime(1_000_000),
                event: TraceEvent::Arrival { query: 1, class: 0 },
            },
            TraceRecord {
                at: SimTime(1_100_000),
                event: TraceEvent::Admitted {
                    query: 1,
                    wait: Duration(100_000),
                },
            },
            TraceRecord {
                at: SimTime(1_200_000),
                event: TraceEvent::Io {
                    query: 1,
                    disk: 0,
                    pages: 8,
                    write: false,
                    cache_hit: false,
                    service: Duration(21_000),
                },
            },
            TraceRecord {
                at: SimTime(1_300_000),
                event: TraceEvent::Io {
                    query: 1,
                    disk: 1,
                    pages: 1,
                    write: true,
                    cache_hit: true,
                    service: Duration(0),
                },
            },
            TraceRecord {
                at: SimTime(2_000_000),
                event: TraceEvent::Completed {
                    query: 1,
                    class: 0,
                    missed: true,
                },
            },
            TraceRecord {
                at: SimTime(2_000_000),
                event: TraceEvent::PolicyDecision {
                    mode: PolicyMode::Max,
                    target_mpl: None,
                },
            },
        ]
    }

    #[test]
    fn export_is_wrapped_and_deterministic() {
        let a = chrome_trace_json(&sample());
        let b = chrome_trace_json(&sample());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\": ["));
        assert!(a.ends_with("]}\n"));
    }

    #[test]
    fn export_contains_expected_phases_and_lanes() {
        let json = chrome_trace_json(&sample());
        assert!(json.contains(r#""ph":"b","cat":"query","id":1"#));
        assert!(json.contains(r#""ph":"e","cat":"query","id":1"#));
        assert!(json.contains(r#""ph":"X","name":"io q1""#));
        assert!(json.contains(r#""dur":21000"#));
        assert!(json.contains(r#""name":"disk0""#));
        assert!(json.contains(r#""name":"disk1""#));
        assert!(json.contains(r#""name":"policy Max""#));
        assert!(json.contains(r#""target_mpl":null"#));
        assert!(json.contains(r#""ts":1000000"#));
    }

    #[test]
    fn export_balances_braces_and_brackets() {
        let json = chrome_trace_json(&sample());
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
