//! Metrics registry: named counters, gauges, and fixed-bucket histograms
//! with windowed counter-delta snapshots.
//!
//! Instruments are registered once up front and addressed by typed index
//! handles ([`CounterId`], [`GaugeId`], [`HistId`]) so the hot path is an
//! array index, never a name lookup. `roll(t_secs)` snapshots per-counter
//! deltas at the same window boundaries the engine uses for the fig12
//! series, making the windowed metrics mergeable across seeds with the
//! driver's existing ragged-tolerant window machinery.

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// Handle to a registered counter family (one label dimension).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterFamilyId(usize);

/// Handle to a registered gauge family (one label dimension).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeFamilyId(usize);

#[derive(Clone, Debug)]
struct Counter {
    name: &'static str,
    value: u64,
}

#[derive(Clone, Debug)]
struct Gauge {
    name: &'static str,
    value: f64,
}

#[derive(Clone, Debug)]
struct Hist {
    name: &'static str,
    bounds: &'static [f64],
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<u64>,
}

/// A counter with one label dimension of fixed cardinality (e.g. one cell
/// per tenant). Storage is a dense array — label values are the indices
/// `0..n`, so a 10³-tenant registry is one allocation, not 10³ name-keyed
/// instruments, and updates stay a plain array index.
#[derive(Clone, Debug)]
struct CounterFamily {
    name: &'static str,
    values: Vec<u64>,
}

/// A gauge family: the [`CounterFamily`] shape for last-value readings.
#[derive(Clone, Debug)]
struct GaugeFamily {
    name: &'static str,
    values: Vec<f64>,
}

/// One windowed snapshot: per-counter deltas since the previous roll,
/// in counter registration order.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsWindow {
    /// Window end, seconds of virtual time.
    pub t_secs: f64,
    /// Counter deltas over the window, registration order.
    pub deltas: Vec<u64>,
}

/// The live registry. Register instruments first, then update by handle.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    hists: Vec<Hist>,
    counter_families: Vec<CounterFamily>,
    gauge_families: Vec<GaugeFamily>,
    windows: Vec<MetricsWindow>,
    last: Vec<u64>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register a counter. Names follow `<subsystem>.<noun>` (see README).
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.counters.push(Counter { name, value: 0 });
        self.last.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.gauges.push(Gauge { name, value: 0.0 });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a fixed-bucket histogram; `bounds` are inclusive upper
    /// bucket bounds, strictly increasing, with an implicit overflow
    /// bucket appended.
    pub fn histogram(&mut self, name: &'static str, bounds: &'static [f64]) -> HistId {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        self.hists.push(Hist {
            name,
            bounds,
            counts: vec![0; bounds.len() + 1],
        });
        HistId(self.hists.len() - 1)
    }

    /// Register a counter family with `labels` dense label cells. Families
    /// do not participate in windowed delta snapshots, so registering one
    /// never changes the established window column order.
    pub fn counter_family(
        &mut self,
        name: &'static str,
        labels: usize,
    ) -> CounterFamilyId {
        self.counter_families.push(CounterFamily {
            name,
            values: vec![0; labels],
        });
        CounterFamilyId(self.counter_families.len() - 1)
    }

    /// Register a gauge family with `labels` dense label cells.
    pub fn gauge_family(&mut self, name: &'static str, labels: usize) -> GaugeFamilyId {
        self.gauge_families.push(GaugeFamily {
            name,
            values: vec![0.0; labels],
        });
        GaugeFamilyId(self.gauge_families.len() - 1)
    }

    /// Add `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].value += by;
    }

    /// Add `by` to label cell `label` of a counter family.
    #[inline]
    pub fn inc_cell(&mut self, id: CounterFamilyId, label: usize, by: u64) {
        self.counter_families[id.0].values[label] += by;
    }

    /// Set label cell `label` of a gauge family to its latest value.
    #[inline]
    pub fn set_gauge_cell(&mut self, id: GaugeFamilyId, label: usize, value: f64) {
        self.gauge_families[id.0].values[label] = value;
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Set a gauge to its latest observed value.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].value = value;
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistId, value: f64) {
        let h = &mut self.hists[id.0];
        let idx = h
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(h.bounds.len());
        h.counts[idx] += 1;
    }

    /// Close a window ending at `t_secs`: snapshot per-counter deltas
    /// since the previous roll.
    pub fn roll(&mut self, t_secs: f64) {
        let deltas = self
            .counters
            .iter()
            .zip(self.last.iter_mut())
            .map(|(c, last)| {
                let d = c.value - *last;
                *last = c.value;
                d
            })
            .collect();
        self.windows.push(MetricsWindow { t_secs, deltas });
    }

    /// Freeze into an owned report for the run's `RunReport`.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            counters: self
                .counters
                .iter()
                .map(|c| (c.name.to_string(), c.value))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| (g.name.to_string(), g.value))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|h| HistReport {
                    name: h.name.to_string(),
                    bounds: h.bounds.to_vec(),
                    counts: h.counts.clone(),
                })
                .collect(),
            counter_families: self
                .counter_families
                .iter()
                .map(|f| (f.name.to_string(), f.values.clone()))
                .collect(),
            gauge_families: self
                .gauge_families
                .iter()
                .map(|f| (f.name.to_string(), f.values.clone()))
                .collect(),
            windows: self.windows.clone(),
        }
    }
}

/// A frozen histogram for reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct HistReport {
    /// Instrument name.
    pub name: String,
    /// Inclusive upper bucket bounds.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts (last = overflow).
    pub counts: Vec<u64>,
}

/// Frozen end-of-run metrics, carried on `RunReport` and merged across
/// seeds by the driver.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// `(name, total)` per counter, registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, last value)` per gauge, registration order.
    pub gauges: Vec<(String, f64)>,
    /// Frozen histograms, registration order.
    pub hists: Vec<HistReport>,
    /// `(name, per-label totals)` per counter family, registration order.
    /// Empty unless the run registered labelled instruments (multi-tenant
    /// configs), so single-tenant metrics output is unchanged.
    pub counter_families: Vec<(String, Vec<u64>)>,
    /// `(name, per-label last values)` per gauge family.
    pub gauge_families: Vec<(String, Vec<f64>)>,
    /// Windowed counter-delta snapshots, chronological.
    pub windows: Vec<MetricsWindow>,
}

impl MetricsReport {
    /// Merge reports from several replications of the same cell: counters
    /// and histogram bucket counts are summed, gauges averaged in input
    /// order, and windows index-merged (ragged tails tolerated, like the
    /// driver's fig12 window merge). Instrument sets must match — they do
    /// by construction, since every replication registers identically.
    pub fn merge(reports: &[&MetricsReport]) -> MetricsReport {
        let Some(first) = reports.first() else {
            return MetricsReport::default();
        };
        let mut out = (*first).clone();
        for r in &reports[1..] {
            for (dst, src) in out.counters.iter_mut().zip(r.counters.iter()) {
                debug_assert_eq!(dst.0, src.0);
                dst.1 += src.1;
            }
            for (dst, src) in out.gauges.iter_mut().zip(r.gauges.iter()) {
                dst.1 += src.1;
            }
            for (dst, src) in out.hists.iter_mut().zip(r.hists.iter()) {
                for (c, s) in dst.counts.iter_mut().zip(src.counts.iter()) {
                    *c += *s;
                }
            }
            for (dst, src) in out.counter_families.iter_mut().zip(&r.counter_families) {
                debug_assert_eq!(dst.0, src.0);
                for (c, s) in dst.1.iter_mut().zip(src.1.iter()) {
                    *c += *s;
                }
            }
            for (dst, src) in out.gauge_families.iter_mut().zip(&r.gauge_families) {
                for (c, s) in dst.1.iter_mut().zip(src.1.iter()) {
                    *c += *s;
                }
            }
            for (wi, w) in r.windows.iter().enumerate() {
                if wi < out.windows.len() {
                    for (d, s) in out.windows[wi].deltas.iter_mut().zip(w.deltas.iter()) {
                        *d += *s;
                    }
                } else {
                    out.windows.push(w.clone());
                }
            }
        }
        let n = reports.len() as f64;
        for g in &mut out.gauges {
            g.1 /= n;
        }
        for f in &mut out.gauge_families {
            for v in &mut f.1 {
                *v /= n;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_windows_roll_deltas() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("engine.arrivals");
        let s = reg.counter("engine.served");
        reg.inc(a, 3);
        reg.roll(100.0);
        reg.inc(a, 2);
        reg.inc(s, 5);
        reg.roll(200.0);
        let rep = reg.report();
        assert_eq!(
            rep.counters,
            vec![
                ("engine.arrivals".to_string(), 5),
                ("engine.served".to_string(), 5)
            ]
        );
        assert_eq!(rep.windows.len(), 2);
        assert_eq!(rep.windows[0].deltas, vec![3, 0]);
        assert_eq!(rep.windows[1].deltas, vec![2, 5]);
    }

    #[test]
    fn histogram_buckets_including_overflow() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("engine.response_secs", &[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            reg.observe(h, v);
        }
        let rep = reg.report();
        assert_eq!(rep.hists[0].counts, vec![2, 1, 1]);
    }

    #[test]
    fn gauge_keeps_last_value() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("engine.mpl");
        reg.set_gauge(g, 4.0);
        reg.set_gauge(g, 7.5);
        assert_eq!(reg.report().gauges, vec![("engine.mpl".to_string(), 7.5)]);
    }

    #[test]
    fn merge_sums_counters_and_averages_gauges() {
        let mut a = MetricsRegistry::new();
        let c = a.counter("x.count");
        let g = a.gauge("x.gauge");
        let h = a.histogram("x.hist", &[1.0]);
        a.inc(c, 2);
        a.set_gauge(g, 1.0);
        a.observe(h, 0.5);
        a.roll(10.0);
        let mut b = a.clone();
        b.inc(c, 3);
        b.set_gauge(g, 3.0);
        b.observe(h, 2.0);
        b.roll(20.0);
        let (ra, rb) = (a.report(), b.report());
        let merged = MetricsReport::merge(&[&ra, &rb]);
        assert_eq!(merged.counters[0].1, 2 + 5);
        assert_eq!(merged.gauges[0].1, 2.0);
        assert_eq!(merged.hists[0].counts, vec![2, 1]);
        assert_eq!(merged.windows.len(), 2);
        assert_eq!(merged.windows[0].deltas, vec![2 + 2]);
        assert_eq!(merged.windows[1].deltas, vec![3]);
    }

    #[test]
    fn merge_of_empty_is_default() {
        assert_eq!(MetricsReport::merge(&[]), MetricsReport::default());
    }

    #[test]
    fn families_store_densely_and_merge_per_label() {
        let mut reg = MetricsRegistry::new();
        let served = reg.counter_family("engine.tenant.served", 3);
        let mpl = reg.gauge_family("engine.tenant.mpl", 3);
        reg.inc_cell(served, 0, 2);
        reg.inc_cell(served, 2, 5);
        reg.set_gauge_cell(mpl, 1, 4.0);
        let a = reg.report();
        assert_eq!(
            a.counter_families,
            vec![("engine.tenant.served".to_string(), vec![2, 0, 5])]
        );
        assert_eq!(
            a.gauge_families,
            vec![("engine.tenant.mpl".to_string(), vec![0.0, 4.0, 0.0])]
        );
        let mut reg_b = MetricsRegistry::new();
        let served_b = reg_b.counter_family("engine.tenant.served", 3);
        let mpl_b = reg_b.gauge_family("engine.tenant.mpl", 3);
        reg_b.inc_cell(served_b, 0, 1);
        reg_b.set_gauge_cell(mpl_b, 1, 2.0);
        let b = reg_b.report();
        let merged = MetricsReport::merge(&[&a, &b]);
        assert_eq!(merged.counter_families[0].1, vec![3, 0, 5]);
        assert_eq!(merged.gauge_families[0].1, vec![0.0, 3.0, 0.0]);
    }

    #[test]
    fn families_never_perturb_windowed_deltas() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("engine.arrivals");
        let f = reg.counter_family("engine.tenant.served", 2);
        reg.inc(c, 1);
        reg.inc_cell(f, 1, 9);
        reg.roll(100.0);
        let rep = reg.report();
        assert_eq!(
            rep.windows[0].deltas,
            vec![1],
            "window columns stay plain-counter only"
        );
    }
}
