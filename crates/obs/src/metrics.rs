//! Metrics registry: named counters, gauges, and fixed-bucket histograms
//! with windowed counter-delta snapshots.
//!
//! Instruments are registered once up front and addressed by typed index
//! handles ([`CounterId`], [`GaugeId`], [`HistId`]) so the hot path is an
//! array index, never a name lookup. `roll(t_secs)` snapshots per-counter
//! deltas at the same window boundaries the engine uses for the fig12
//! series, making the windowed metrics mergeable across seeds with the
//! driver's existing ragged-tolerant window machinery.

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

#[derive(Clone, Debug)]
struct Counter {
    name: &'static str,
    value: u64,
}

#[derive(Clone, Debug)]
struct Gauge {
    name: &'static str,
    value: f64,
}

#[derive(Clone, Debug)]
struct Hist {
    name: &'static str,
    bounds: &'static [f64],
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<u64>,
}

/// One windowed snapshot: per-counter deltas since the previous roll,
/// in counter registration order.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsWindow {
    /// Window end, seconds of virtual time.
    pub t_secs: f64,
    /// Counter deltas over the window, registration order.
    pub deltas: Vec<u64>,
}

/// The live registry. Register instruments first, then update by handle.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    hists: Vec<Hist>,
    windows: Vec<MetricsWindow>,
    last: Vec<u64>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register a counter. Names follow `<subsystem>.<noun>` (see README).
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.counters.push(Counter { name, value: 0 });
        self.last.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.gauges.push(Gauge { name, value: 0.0 });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a fixed-bucket histogram; `bounds` are inclusive upper
    /// bucket bounds, strictly increasing, with an implicit overflow
    /// bucket appended.
    pub fn histogram(&mut self, name: &'static str, bounds: &'static [f64]) -> HistId {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        self.hists.push(Hist {
            name,
            bounds,
            counts: vec![0; bounds.len() + 1],
        });
        HistId(self.hists.len() - 1)
    }

    /// Add `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].value += by;
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Set a gauge to its latest observed value.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].value = value;
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistId, value: f64) {
        let h = &mut self.hists[id.0];
        let idx = h
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(h.bounds.len());
        h.counts[idx] += 1;
    }

    /// Close a window ending at `t_secs`: snapshot per-counter deltas
    /// since the previous roll.
    pub fn roll(&mut self, t_secs: f64) {
        let deltas = self
            .counters
            .iter()
            .zip(self.last.iter_mut())
            .map(|(c, last)| {
                let d = c.value - *last;
                *last = c.value;
                d
            })
            .collect();
        self.windows.push(MetricsWindow { t_secs, deltas });
    }

    /// Freeze into an owned report for the run's `RunReport`.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            counters: self
                .counters
                .iter()
                .map(|c| (c.name.to_string(), c.value))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| (g.name.to_string(), g.value))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|h| HistReport {
                    name: h.name.to_string(),
                    bounds: h.bounds.to_vec(),
                    counts: h.counts.clone(),
                })
                .collect(),
            windows: self.windows.clone(),
        }
    }
}

/// A frozen histogram for reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct HistReport {
    /// Instrument name.
    pub name: String,
    /// Inclusive upper bucket bounds.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts (last = overflow).
    pub counts: Vec<u64>,
}

/// Frozen end-of-run metrics, carried on `RunReport` and merged across
/// seeds by the driver.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// `(name, total)` per counter, registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, last value)` per gauge, registration order.
    pub gauges: Vec<(String, f64)>,
    /// Frozen histograms, registration order.
    pub hists: Vec<HistReport>,
    /// Windowed counter-delta snapshots, chronological.
    pub windows: Vec<MetricsWindow>,
}

impl MetricsReport {
    /// Merge reports from several replications of the same cell: counters
    /// and histogram bucket counts are summed, gauges averaged in input
    /// order, and windows index-merged (ragged tails tolerated, like the
    /// driver's fig12 window merge). Instrument sets must match — they do
    /// by construction, since every replication registers identically.
    pub fn merge(reports: &[&MetricsReport]) -> MetricsReport {
        let Some(first) = reports.first() else {
            return MetricsReport::default();
        };
        let mut out = (*first).clone();
        for r in &reports[1..] {
            for (dst, src) in out.counters.iter_mut().zip(r.counters.iter()) {
                debug_assert_eq!(dst.0, src.0);
                dst.1 += src.1;
            }
            for (dst, src) in out.gauges.iter_mut().zip(r.gauges.iter()) {
                dst.1 += src.1;
            }
            for (dst, src) in out.hists.iter_mut().zip(r.hists.iter()) {
                for (c, s) in dst.counts.iter_mut().zip(src.counts.iter()) {
                    *c += *s;
                }
            }
            for (wi, w) in r.windows.iter().enumerate() {
                if wi < out.windows.len() {
                    for (d, s) in out.windows[wi].deltas.iter_mut().zip(w.deltas.iter()) {
                        *d += *s;
                    }
                } else {
                    out.windows.push(w.clone());
                }
            }
        }
        let n = reports.len() as f64;
        for g in &mut out.gauges {
            g.1 /= n;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_windows_roll_deltas() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("engine.arrivals");
        let s = reg.counter("engine.served");
        reg.inc(a, 3);
        reg.roll(100.0);
        reg.inc(a, 2);
        reg.inc(s, 5);
        reg.roll(200.0);
        let rep = reg.report();
        assert_eq!(
            rep.counters,
            vec![
                ("engine.arrivals".to_string(), 5),
                ("engine.served".to_string(), 5)
            ]
        );
        assert_eq!(rep.windows.len(), 2);
        assert_eq!(rep.windows[0].deltas, vec![3, 0]);
        assert_eq!(rep.windows[1].deltas, vec![2, 5]);
    }

    #[test]
    fn histogram_buckets_including_overflow() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("engine.response_secs", &[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            reg.observe(h, v);
        }
        let rep = reg.report();
        assert_eq!(rep.hists[0].counts, vec![2, 1, 1]);
    }

    #[test]
    fn gauge_keeps_last_value() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("engine.mpl");
        reg.set_gauge(g, 4.0);
        reg.set_gauge(g, 7.5);
        assert_eq!(reg.report().gauges, vec![("engine.mpl".to_string(), 7.5)]);
    }

    #[test]
    fn merge_sums_counters_and_averages_gauges() {
        let mut a = MetricsRegistry::new();
        let c = a.counter("x.count");
        let g = a.gauge("x.gauge");
        let h = a.histogram("x.hist", &[1.0]);
        a.inc(c, 2);
        a.set_gauge(g, 1.0);
        a.observe(h, 0.5);
        a.roll(10.0);
        let mut b = a.clone();
        b.inc(c, 3);
        b.set_gauge(g, 3.0);
        b.observe(h, 2.0);
        b.roll(20.0);
        let (ra, rb) = (a.report(), b.report());
        let merged = MetricsReport::merge(&[&ra, &rb]);
        assert_eq!(merged.counters[0].1, 2 + 5);
        assert_eq!(merged.gauges[0].1, 2.0);
        assert_eq!(merged.hists[0].counts, vec![2, 1]);
        assert_eq!(merged.windows.len(), 2);
        assert_eq!(merged.windows[0].deltas, vec![2 + 2]);
        assert_eq!(merged.windows[1].deltas, vec![3]);
    }

    #[test]
    fn merge_of_empty_is_default() {
        assert_eq!(MetricsReport::merge(&[]), MetricsReport::default());
    }
}
