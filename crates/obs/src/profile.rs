//! Wall-clock self-profiling of engine subsystems.
//!
//! A [`Profiler`] attributes *real* (not virtual) time to a small fixed set
//! of [`Section`]s. Disabled, `begin` returns `None` and `end` is a single
//! branch — the engine pays nothing unless `--profile` is passed.
//! Attribution is inclusive: `Section::Reallocate` covers everything the
//! allocation pass triggers, including any `Section::DiskStart` work
//! nested inside it, so section totals can overlap.

use std::time::Instant;

/// The profiled engine subsystems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Section {
    /// `Calendar::pop` — extracting the next event.
    CalendarPop = 0,
    /// Event dispatch — everything a popped event triggers (inclusive).
    Dispatch = 1,
    /// `Disk::start` — picking and pricing the next disk request.
    DiskStart = 2,
    /// `reallocate()` — snapshot, policy call, and grant application
    /// (inclusive).
    Reallocate = 3,
}

/// Section names, indexed by `Section as usize`.
pub const SECTION_NAMES: [&str; 4] =
    ["calendar_pop", "dispatch", "disk_start", "reallocate"];

/// Accumulates wall-clock time and call counts per section.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    enabled: bool,
    nanos: [u64; 4],
    counts: [u64; 4],
}

impl Profiler {
    /// A profiler that is free when `enabled` is false.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            ..Profiler::default()
        }
    }

    /// True when timing is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Start timing a section. Returns `None` (no clock read) when
    /// disabled.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Stop timing: attribute the elapsed wall time to `section`.
    #[inline]
    pub fn end(&mut self, section: Section, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let i = section as usize;
            self.nanos[i] += t0.elapsed().as_nanos() as u64;
            self.counts[i] += 1;
        }
    }

    /// Freeze into a report; `None` when profiling was disabled.
    pub fn report(&self) -> Option<ProfileReport> {
        if !self.enabled {
            return None;
        }
        Some(ProfileReport {
            sections: (0..SECTION_NAMES.len())
                .map(|i| SectionStats {
                    name: SECTION_NAMES[i].to_string(),
                    wall_secs: self.nanos[i] as f64 * 1e-9,
                    calls: self.counts[i],
                })
                .collect(),
        })
    }
}

/// Wall-clock totals for one section.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SectionStats {
    /// Section name (see [`SECTION_NAMES`]).
    pub name: String,
    /// Total wall-clock seconds attributed (inclusive).
    pub wall_secs: f64,
    /// Number of timed calls.
    pub calls: u64,
}

/// Per-run profile carried on `RunReport`; wall-clock and therefore
/// machine-dependent — never byte-diffed by determinism tests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileReport {
    /// One entry per [`Section`], fixed order.
    pub sections: Vec<SectionStats>,
}

impl ProfileReport {
    /// Sum another report into this one (for cross-replication
    /// aggregation in the driver).
    pub fn absorb(&mut self, other: &ProfileReport) {
        if self.sections.is_empty() {
            self.sections = other.sections.clone();
            return;
        }
        for (dst, src) in self.sections.iter_mut().zip(other.sections.iter()) {
            debug_assert_eq!(dst.name, src.name);
            dst.wall_secs += src.wall_secs;
            dst.calls += src.calls;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_reports_none_and_skips_clock() {
        let mut p = Profiler::new(false);
        let t0 = p.begin();
        assert!(t0.is_none());
        p.end(Section::Dispatch, t0);
        assert!(p.report().is_none());
    }

    #[test]
    fn enabled_profiler_attributes_time_and_counts() {
        let mut p = Profiler::new(true);
        for _ in 0..3 {
            let t0 = p.begin();
            p.end(Section::CalendarPop, t0);
        }
        let rep = p.report().unwrap();
        assert_eq!(rep.sections.len(), 4);
        assert_eq!(rep.sections[0].name, "calendar_pop");
        assert_eq!(rep.sections[0].calls, 3);
        assert_eq!(rep.sections[1].calls, 0);
    }

    #[test]
    fn absorb_sums_sections() {
        let mut p = Profiler::new(true);
        let t0 = p.begin();
        p.end(Section::Reallocate, t0);
        let one = p.report().unwrap();
        let mut total = ProfileReport::default();
        total.absorb(&one);
        total.absorb(&one);
        assert_eq!(total.sections[3].calls, 2);
    }
}
