//! `obs` — sim-time observability for the reproduction.
//!
//! Four pieces, all independent of the engine so every crate can use them:
//!
//! 1. **Tracing** ([`trace`]): typed [`TraceEvent`] records stamped in
//!    *virtual* time, written through a pluggable [`Tracer`] whose sink is a
//!    null device (compiles to one load+test+branch on the hot path), a
//!    fixed-capacity ring-buffer flight recorder, or a full in-memory log.
//! 2. **Metrics** ([`metrics`]): a registry of named counters, gauges, and
//!    fixed-bucket histograms with windowed counter-delta snapshots that
//!    reuse the fig12 window boundaries.
//! 3. **Self-profiling** ([`profile`]): wall-clock attribution per engine
//!    subsystem (calendar pop, dispatch, `Disk::start`, `reallocate()`),
//!    off by default and free when disabled.
//! 4. **Chrome trace export** ([`chrome`]): renders a trace to the Chrome
//!    trace-event JSON format so a replication's virtual-time timeline can
//!    be opened in `chrome://tracing` or Perfetto.
//!
//! Everything here is deterministic given the input records: text and JSON
//! renderings are byte-identical across runs and thread counts.

pub mod chrome;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use metrics::{
    CounterFamilyId, CounterId, GaugeFamilyId, GaugeId, HistId, HistReport,
    MetricsRegistry, MetricsReport, MetricsWindow,
};
pub use profile::{ProfileReport, Profiler, Section, SectionStats};
pub use trace::{
    render_text, DegradedAction, FaultClass, PolicyMode, TraceEvent, TraceKind,
    TraceRecord, Tracer,
};

/// Per-run observability switches, carried on the simulator config.
///
/// The default is everything off: no trace records, no metrics registry,
/// no profiling, and a golden report byte-identical to the pre-obs engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Trace sink mode for this run.
    pub trace: TraceMode,
    /// Capacity (records) of the ring-buffer flight recorder. Only used
    /// when `trace == TraceMode::Ring`; must be non-zero then.
    pub ring_capacity: usize,
    /// Stream trace records to this file incrementally (rendered text,
    /// one line per record, appended) instead of buffering the full run
    /// in memory. Only honored when `trace != TraceMode::Off`; the run's
    /// in-memory trace then stays empty.
    pub trace_path: Option<std::path::PathBuf>,
    /// Enable the metrics registry (counters/gauges/histograms with
    /// windowed snapshots on the fig12 boundaries).
    pub metrics: bool,
    /// Enable wall-clock self-profiling of engine subsystems.
    pub profile: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace: TraceMode::Off,
            ring_capacity: 4096,
            trace_path: None,
            metrics: false,
            profile: false,
        }
    }
}

/// Which trace sink a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// Null sink: `Tracer::emit` is a single masked branch, no storage.
    Off,
    /// Flight recorder: keep only the most recent `ring_capacity` records.
    Ring,
    /// Full log: keep every record for the whole run.
    Full,
}
