//! Figures 17/18 family: Small + Medium classes concurrently on 12 disks.

use bench::make_policy;
use criterion::{criterion_group, criterion_main, Criterion};
use pmm_core::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_multiclass");
    g.sample_size(10);
    for small_rate in [0.2f64, 0.8] {
        g.bench_function(format!("PMM@small={small_rate}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::multiclass(small_rate);
                cfg.duration_secs = 600.0;
                black_box(run_simulation(cfg, make_policy("PMM")))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
