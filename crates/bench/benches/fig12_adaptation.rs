//! Figures 12–15 family: the alternating Small/Medium workload, one phase
//! switch per iteration so the change-detection path is exercised.

use bench::make_policy;
use criterion::{criterion_group, criterion_main, Criterion};
use pmm_core::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_adaptation");
    g.sample_size(10);
    for policy in ["Max", "MinMax", "PMM"] {
        g.bench_function(format!("{policy}@alternating"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::workload_changes();
                cfg.duration_secs = 1_200.0;
                black_box(run_simulation(cfg, make_policy(policy)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
