//! Micro-benchmarks of the substrates: event calendar, RNG, disk service
//! model, the operators' state machines, and the least-squares fits.

use criterion::{criterion_group, criterion_main, Criterion};
use pmm_core::exec::{Action, ExecConfig, HashJoin, Operator};
use pmm_core::simkit::{Calendar, Rng, SimTime};
use pmm_core::stats::QuadFit;
use pmm_core::storage::{DiskGeometry, FileId};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("calendar_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            for i in 0..10_000u64 {
                cal.schedule(SimTime(i * 37 % 100_000 + 100_000), i);
            }
            let mut n = 0;
            while cal.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    c.bench_function("rng_exponential_10k", |b| {
        let mut rng = Rng::new(7);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.exponential(0.07);
            }
            black_box(acc)
        })
    });
    c.bench_function("disk_access_time", |b| {
        let g = DiskGeometry::default();
        b.iter(|| black_box(g.access_time(black_box(123), black_box(6))))
    });
    c.bench_function("pphj_full_drive_min_memory", |b| {
        b.iter(|| {
            let mut op = HashJoin::new(
                ExecConfig::default(),
                FileId::Relation(0),
                600,
                FileId::Relation(1),
                3_000,
            );
            op.set_allocation(op.min_memory());
            let mut steps = 0u64;
            while op.step() != Action::Finished {
                steps += 1;
            }
            black_box(steps)
        })
    });
    c.bench_function("quadfit_add_solve", |b| {
        b.iter(|| {
            let mut fit = QuadFit::new();
            for i in 0..100 {
                let x = i as f64;
                fit.add(x, 0.1 + 0.01 * (x - 10.0) * (x - 10.0));
            }
            black_box(fit.solve())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
