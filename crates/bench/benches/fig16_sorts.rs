//! Figure 16 family: the external-sort workload.

use bench::make_policy;
use criterion::{criterion_group, criterion_main, Criterion};
use pmm_core::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_sorts");
    g.sample_size(10);
    for policy in ["Max", "MinMax", "PMM"] {
        g.bench_function(format!("{policy}@0.10"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::sorts(0.10);
                cfg.duration_secs = 600.0;
                black_box(run_simulation(cfg, make_policy(policy)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
