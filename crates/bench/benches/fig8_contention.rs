//! Figure 8/9/10 family: the moderate-disk-contention sweep (6 disks).

use bench::make_policy;
use criterion::{criterion_group, criterion_main, Criterion};
use pmm_core::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_contention");
    g.sample_size(10);
    for policy in ["Max", "MinMax", "MinMax-2", "PMM"] {
        g.bench_function(format!("{policy}@0.06x6disks"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::disk_contention(0.06);
                cfg.duration_secs = 600.0;
                black_box(run_simulation(cfg, make_policy(policy)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
