//! Figure 3/4/5 family: the baseline sweep. Each benchmark iteration runs
//! a 600-simulated-second slice of one (policy, rate) cell; the shape data
//! itself is produced by `--bin experiments -- fig3 --secs 36000`.

use bench::make_policy;
use criterion::{criterion_group, criterion_main, Criterion};
use pmm_core::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_baseline");
    g.sample_size(10);
    for policy in ["Max", "MinMax", "Proportional", "PMM"] {
        g.bench_function(format!("{policy}@0.06"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::baseline(0.06);
                cfg.duration_secs = 600.0;
                black_box(run_simulation(cfg, make_policy(policy)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
