//! Hot-path micro-benchmarks: the substrates the event loop spends its
//! time in — the calendar (push/pop/cancel), the memory-division
//! allocators behind `reallocate()`, the per-disk ED+elevator queue, and
//! the operator-stepping protocols (single-step vs. run-length) at
//! paper-scale relation sizes.
//!
//! These track the repo's perf trajectory: run
//! `cargo bench -p bench --bench hotpath_micro` before and after touching
//! the event loop, and keep `BENCH_perf.json` (the driver's events/sec
//! reading) moving in the same direction.

// The allocating-vs-`_into` comparison benches intentionally drive the
// deprecated wrappers: the allocation saving is the point being measured.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use pmm_core::exec::{
    Action, ActionRun, ExecConfig, ExternalSort, HashJoin, Operator, RUN_BATCH,
};
use pmm_core::obs::{MetricsRegistry, TraceEvent, TraceKind, TraceMode, Tracer};
use pmm_core::pmm::{
    minmax_allocate, minmax_allocate_into, partitioned_allocate_with_into,
    proportional_allocate, AllocScratch, DirtySet, Grants, IncrementalPartitioned,
    PartitionScratch, PartitionSpec, PartitionStrategy, QueryDemand, QueryId,
};
use pmm_core::simkit::{Calendar, Duration, SimTime};
use pmm_core::storage::{DiskQueue, FileId, QueuedRequest};
use std::hint::black_box;

/// Deterministic pseudo-random stream (SplitMix64) for bench inputs.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn demands(n: u64) -> Vec<QueryDemand> {
    (0..n)
        .map(|i| QueryDemand {
            id: QueryId(i),
            deadline: SimTime(1_000_000 + mix(i) % 10_000_000),
            min_mem: 37,
            max_mem: 200 + (mix(i ^ 0xABCD) % 1200) as u32,
            tenant: 0,
        })
        .collect()
}

/// Per-tenant demand groups for the scale-out reallocation cells: `n`
/// tenants of `per` queries each, every query billed to its group.
fn tenant_groups(n: usize, per: usize) -> Vec<Vec<QueryDemand>> {
    (0..n)
        .map(|g| {
            (0..per)
                .map(|i| {
                    let k = (g * per + i) as u64;
                    QueryDemand {
                        id: QueryId(k),
                        deadline: SimTime(1_000_000 + mix(k) % 10_000_000),
                        min_mem: 37,
                        max_mem: 64 + (mix(k ^ 0xBEEF) % 400) as u32,
                        tenant: g as u32,
                    }
                })
                .collect()
        })
        .collect()
}

/// One churn round: re-demand one query in each of `churn` pseudo-randomly
/// chosen tenants (≈1% of the population in the cells below), marking the
/// touched partitions when a dirty set rides along.
fn churn_round(
    groups: &mut [Vec<QueryDemand>],
    churn: usize,
    round: u64,
    mut dirty: Option<&mut DirtySet>,
) {
    for j in 0..churn {
        let g = (mix(round ^ ((j as u64) << 17)) as usize) % groups.len();
        if groups[g].is_empty() {
            continue;
        }
        let qi = (mix(round.wrapping_add(j as u64 * 7919)) as usize) % groups[g].len();
        let q = &mut groups[g][qi];
        q.max_mem = 64 + (mix(round ^ q.id.0) % 400) as u32;
        if let Some(d) = dirty.as_deref_mut() {
            d.mark(g);
        }
    }
}

/// Drive an operator to completion one `step()` at a time (the seed
/// protocol), tallying the actions so nothing is optimized away.
fn drain_steps(op: &mut dyn Operator) -> u64 {
    let mut n = 0u64;
    let mut cpu = 0u64;
    loop {
        match op.step() {
            Action::Cpu(c) => cpu += c,
            Action::Finished => return n ^ cpu,
            Action::Parked => unreachable!("fixed allocation never parks"),
            _ => {}
        }
        n += 1;
    }
}

/// Drive an operator to completion through the run-length protocol (the
/// engine's hot path: buffered pops, operator re-entered per batch only).
fn drain_runs(op: &mut dyn Operator) -> u64 {
    let mut run = ActionRun::new();
    let mut n = 0u64;
    let mut cpu = 0u64;
    loop {
        let Some(action) = run.pop() else {
            op.plan_run(&mut run);
            continue;
        };
        match action {
            Action::Cpu(c) => cpu += c,
            Action::Finished => return n ^ cpu,
            Action::Parked => unreachable!("fixed allocation never parks"),
            _ => {}
        }
        n += 1;
    }
}

/// Drive an operator to completion through a *step-replay* planner: the
/// pre-descriptor run protocol, re-entering the state machine once per
/// action to fill each [`RUN_BATCH`] buffer. Against `drain_runs` (the
/// closed-form descriptor planner) this isolates the analytic-planning win:
/// same buffer round-trip, same action stream, only the fill differs.
fn drain_step_replay(op: &mut dyn Operator) -> u64 {
    let mut run = ActionRun::new();
    let mut n = 0u64;
    let mut cpu = 0u64;
    loop {
        let Some(action) = run.pop() else {
            run.clear();
            for _ in 0..RUN_BATCH {
                let a = op.step();
                let stop = matches!(a, Action::Parked | Action::Finished);
                run.push(a);
                if stop {
                    break;
                }
            }
            continue;
        };
        match action {
            Action::Cpu(c) => cpu += c,
            Action::Finished => return n ^ cpu,
            Action::Parked => unreachable!("fixed allocation never parks"),
            _ => {}
        }
        n += 1;
    }
}

fn bench(c: &mut Criterion) {
    // Engine-realistic calendar depth: one in-flight event plus one deadline
    // per live query tops out around a couple hundred entries. Drain/refill
    // many times so the timing is dominated by steady-state churn.
    c.bench_function("calendar/push_pop_256", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            let mut n = 0u64;
            for round in 0..40u64 {
                for i in 0..256u64 {
                    let k = round * 256 + i;
                    cal.schedule(cal.now() + Duration(1 + mix(k) % 10_000), k);
                }
                while cal.pop().is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });

    // Stress depth (far beyond what the engine builds): keeps the asymptote
    // honest in the trajectory.
    c.bench_function("calendar/push_pop_10k", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            for i in 0..10_000u64 {
                cal.schedule(SimTime(100_000 + mix(i) % 1_000_000), i);
            }
            let mut n = 0u64;
            while cal.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    c.bench_function("calendar/cancel_half_10k", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            let handles: Vec<_> = (0..10_000u64)
                .map(|i| cal.schedule(SimTime(100_000 + mix(i) % 1_000_000), i))
                .collect();
            for h in handles.iter().step_by(2) {
                cal.cancel(*h);
            }
            let mut n = 0u64;
            while cal.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    // Epoch skip vs per-event heap traffic. The engine's inner loop is a
    // schedule-then-pop chain: each dispatched action schedules its
    // completion, which is the next event to fire. The one-element front
    // buffer turns that whole epoch into buffer swaps — the resident
    // deadline set below never sees a sift. `_front` is the chain shape
    // (pure fast path); `_heap` schedules a second, later event per round
    // so every other pop walks the heap — the per-event cost the front
    // buffer skips.
    c.bench_function("calendar/epoch_chain_front_10k", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            for i in 0..256u64 {
                cal.schedule(SimTime(u64::MAX / 2 + i), i);
            }
            let mut n = 0u64;
            for k in 0..10_000u64 {
                cal.schedule(cal.now() + Duration(1 + mix(k) % 1_000), k);
                n += u64::from(cal.pop().is_some());
            }
            black_box(n)
        })
    });

    c.bench_function("calendar/epoch_chain_heap_10k", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            for i in 0..256u64 {
                cal.schedule(SimTime(u64::MAX / 2 + i), i);
            }
            let mut n = 0u64;
            for k in 0..5_000u64 {
                let now = cal.now();
                let d = 1 + mix(k) % 1_000;
                cal.schedule(now + Duration(d), k);
                cal.schedule(now + Duration(d + 1), k);
                n += u64::from(cal.pop().is_some());
                n += u64::from(cal.pop().is_some());
            }
            black_box(n)
        })
    });

    // The engine's firm-deadline pattern: every query schedules a far-future
    // deadline event that is cancelled when the query completes first.
    c.bench_function("calendar/deadline_churn_10k", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            let mut live = 0u64;
            for i in 0..10_000u64 {
                let now = cal.now();
                // Deadline far out; work lands first, then the deadline is
                // cancelled — so cancelled entries pile up in the calendar.
                let h = cal.schedule(now + Duration::from_secs(100), i);
                cal.schedule(now + Duration(1 + mix(i) % 100), i);
                if cal.pop().is_some() {
                    live += 1;
                }
                cal.cancel(h);
            }
            while cal.pop().is_some() {
                live += 1;
            }
            black_box(live)
        })
    });

    // Operator stepping at paper scale (Table 2 / Section 5.1 sizes):
    // the baseline join builds ‖R‖ = 1200 and probes ‖S‖ = 6000 pages; the
    // sort forms runs over 1200 pages with a 100-page workspace and merges
    // them. Three protocols over the *same* action stream (pinned by
    // `crates/exec/tests/run_protocol_model.rs`): `_step` is the seed
    // one-`Action`-per-call protocol, `_replay` fills each RUN_BATCH buffer
    // by stepping the state machine per action (the pre-descriptor run
    // protocol), and `_run` is the engine's hot path — closed-form
    // `RunDescriptor` planning that expands a whole homogeneous stretch
    // without re-entering the operator. The `_replay` → `_run` delta is the
    // analytic-planning win in isolation; engine-level events/s
    // (`BENCH_perf.json`) is the in-situ measure, where descriptor
    // planning plus the calendar front buffer carry the PR's ≥1.5×
    // fig3/fig8 win.
    let join_mid = || {
        let mut op = HashJoin::new(
            ExecConfig::default(),
            FileId::Relation(0),
            1200,
            FileId::Relation(1),
            6000,
        );
        // Mid allocation: both the in-memory and the spill/second-pass
        // paths are exercised, like a contended engine run.
        let alloc = (op.min_memory() + op.max_memory()) / 2;
        op.set_allocation(alloc);
        op
    };
    c.bench_function("opstep/join_build_probe_step_1200x6000", |b| {
        b.iter(|| black_box(drain_steps(&mut join_mid())))
    });
    c.bench_function("opstep/join_build_probe_replay_1200x6000", |b| {
        b.iter(|| black_box(drain_step_replay(&mut join_mid())))
    });
    c.bench_function("opstep/join_build_probe_run_1200x6000", |b| {
        b.iter(|| black_box(drain_runs(&mut join_mid())))
    });

    let sort_two_pass = || {
        let mut op = ExternalSort::new(ExecConfig::default(), FileId::Relation(0), 1200);
        op.set_allocation(100); // ~198-page runs, single merge pass
        op
    };
    c.bench_function("opstep/sort_form_merge_step_1200_w100", |b| {
        b.iter(|| black_box(drain_steps(&mut sort_two_pass())))
    });
    c.bench_function("opstep/sort_form_merge_replay_1200_w100", |b| {
        b.iter(|| black_box(drain_step_replay(&mut sort_two_pass())))
    });
    c.bench_function("opstep/sort_form_merge_run_1200_w100", |b| {
        b.iter(|| black_box(drain_runs(&mut sort_two_pass())))
    });

    c.bench_function("reallocate/minmax_64", |b| {
        let queries = demands(64);
        b.iter(|| black_box(minmax_allocate(black_box(&queries), 2560, None)))
    });

    c.bench_function("reallocate/proportional_64", |b| {
        let queries = demands(64);
        b.iter(|| black_box(proportional_allocate(black_box(&queries), 2560, None)))
    });

    // The engine's actual steady-state path: warm caller-owned scratch, no
    // allocation per call. (Absent from the pre-refactor baseline — the
    // `_into` API is new.)
    c.bench_function("reallocate/minmax_into_64_warm", |b| {
        let queries = demands(64);
        let mut scratch = AllocScratch::default();
        let mut out = Grants::new();
        b.iter(|| {
            minmax_allocate_into(black_box(&queries), 2560, None, &mut scratch, &mut out);
            black_box(out.len())
        })
    });

    // Scale-out tenancy: incremental dirty-set reallocation vs the full
    // snapshot path at 10/100/1000 tenants under ~1% churn per feedback
    // event. The snapshot arm re-collects and re-divides every tenant every
    // round (the seed path: cost ∝ population); the incremental arm
    // re-divides only the dirtied partitions (cost ∝ churn). The
    // `snapshot_1000 / incremental_1000` ratio is the PR's headline number
    // — CI asserts it stays ≥ 5×.
    for n in [10usize, 100, 1000] {
        let total = 256 * n as u32;
        let churn = (n / 100).max(1);
        c.bench_function(format!("realloc/incremental_{n}"), |b| {
            let partitions = vec![
                PartitionSpec {
                    quota: 256,
                    soft: true
                };
                n
            ];
            let strategies = vec![PartitionStrategy::MinMax(None); n];
            let mut inc = IncrementalPartitioned::new(partitions);
            let mut groups = tenant_groups(n, 8);
            let mut dirty = DirtySet::new(n);
            let mut out = Grants::new();
            // Prime: the first call full-rebuilds; the timed rounds are
            // steady-state incremental re-runs.
            dirty.mark_all();
            inc.allocate_dirty_into(&groups, &strategies, total, &dirty, &mut out);
            dirty.clear();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                churn_round(&mut groups, churn, round, Some(&mut dirty));
                inc.allocate_dirty_into(&groups, &strategies, total, &dirty, &mut out);
                dirty.clear();
                black_box(out.len())
            })
        });
        c.bench_function(format!("realloc/snapshot_{n}"), |b| {
            let partitions = vec![
                PartitionSpec {
                    quota: 256,
                    soft: true
                };
                n
            ];
            let strategies = vec![PartitionStrategy::MinMax(None); n];
            let mut groups = tenant_groups(n, 8);
            let mut flat: Vec<QueryDemand> = Vec::with_capacity(n * 8);
            let mut scratch = PartitionScratch::default();
            let mut out = Grants::new();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                churn_round(&mut groups, churn, round, None);
                // The engine's snapshot path rebuilds the demand list from
                // the live table every reallocation; the flatten is part of
                // the measured cost.
                flat.clear();
                for g in &groups {
                    flat.extend_from_slice(g);
                }
                partitioned_allocate_with_into(
                    &flat,
                    &partitions,
                    &strategies,
                    total,
                    &mut scratch,
                    &mut out,
                );
                black_box(out.len())
            })
        });
    }

    // Hierarchical borrow-back: the two-level partition tree (32-tenant
    // groups with cached idle totals) vs the flat per-partition scan
    // (`with_group_size(…, 1)` degenerates every group to one partition).
    // Half the tenants idle, half over-demand their soft quota, so every
    // round borrows from the idle pool — the path the subtree cache prunes.
    for (cell, group_size) in [("tree_borrow_1000", 32), ("flat_borrow_1000", 1)] {
        c.bench_function(format!("partition/{cell}"), |b| {
            let n = 1000usize;
            let total = 256 * n as u32;
            let partitions = vec![
                PartitionSpec {
                    quota: 256,
                    soft: true
                };
                n
            ];
            let strategies = vec![PartitionStrategy::MinMax(None); n];
            let mut inc = IncrementalPartitioned::with_group_size(partitions, group_size);
            let mut groups = tenant_groups(n, 4);
            for (g, group) in groups.iter_mut().enumerate() {
                if g % 2 == 0 {
                    group.clear(); // idle tenant: pure lender
                } else {
                    for q in group.iter_mut() {
                        q.max_mem = 600; // over-demands the 256-page quota
                    }
                }
            }
            let mut dirty = DirtySet::new(n);
            let mut out = Grants::new();
            dirty.mark_all();
            inc.allocate_dirty_into(&groups, &strategies, total, &dirty, &mut out);
            dirty.clear();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                // Churn an over-demanding tenant: its re-divide hits the
                // borrow-back walk over the idle pool.
                let g = 2 * ((mix(round) as usize) % (n / 2)) + 1;
                let qi = (mix(round ^ 0xD1CE) as usize) % groups[g].len();
                groups[g][qi].max_mem = 300 + (mix(round ^ 0xFEED) % 600) as u32;
                dirty.mark(g);
                inc.allocate_dirty_into(&groups, &strategies, total, &dirty, &mut out);
                dirty.clear();
                black_box(out.len())
            })
        });
    }

    // The engine-shaped case: every request carries a distinct deadline
    // (a deadline level is one query, and each query has at most one
    // outstanding I/O), depth bounded by the live-query population.
    c.bench_function("disk_queue/engine_mix_96", |b| {
        b.iter(|| {
            let mut q: DiskQueue<u64> = DiskQueue::new();
            let mut head = 0u32;
            let mut n = 0u64;
            for round in 0..100u64 {
                for i in 0..96u64 {
                    let k = round * 96 + i;
                    q.push(QueuedRequest {
                        deadline: SimTime(1_000_000 + k * 37 + mix(k) % 17),
                        cylinder: (mix(k ^ 0x5A5A) % 1500) as u32,
                        tag: k,
                    });
                }
                while let Some(r) = q.pop(head) {
                    head = r.cylinder;
                    n += 1;
                }
            }
            black_box(n)
        })
    });

    // Tie-heavy stress: 12-deep deadline levels and same-cylinder piles.
    // The engine cannot produce these shapes (see above), but they record
    // the flat scan's worst case in the trajectory.
    c.bench_function("disk_queue/push_pop_96", |b| {
        b.iter(|| {
            let mut q: DiskQueue<u64> = DiskQueue::new();
            let mut head = 0u32;
            let mut n = 0u64;
            for round in 0..100u64 {
                for i in 0..96u64 {
                    let k = round * 96 + i;
                    q.push(QueuedRequest {
                        // Few distinct deadlines → wide levels,
                        // elevator-heavy.
                        deadline: SimTime(1_000 + round * 10 + mix(k) % 8),
                        cylinder: (mix(k ^ 0x5A5A) % 1500) as u32,
                        tag: k,
                    });
                }
                while let Some(r) = q.pop(head) {
                    head = r.cylinder;
                    n += 1;
                }
            }
            black_box(n)
        })
    });

    c.bench_function("disk_queue/fifo_bucket_96", |b| {
        b.iter(|| {
            let mut q: DiskQueue<u64> = DiskQueue::new();
            let mut n = 0u64;
            // One deadline, one cylinder: a pure FIFO bucket — the
            // `Vec::remove(0)` path of the seed implementation.
            for round in 0..100u64 {
                for i in 0..96u64 {
                    q.push(QueuedRequest {
                        deadline: SimTime(7 + round),
                        cylinder: 42,
                        tag: i,
                    });
                }
                while q.pop(42).is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });

    // Observability overhead cells: the engine calls `Tracer::emit` and
    // `MetricsRegistry::inc` on every arrival/burst/departure, so the off
    // path must price at a masked branch (the <2% hot-path budget) and the
    // ring path at a bounded rotate — these cells pin both in the
    // trajectory.
    c.bench_function("obs/emit_off_10k", |b| {
        let mut tracer = Tracer::off();
        b.iter(|| {
            let mut n = 0u64;
            for i in 0..10_000u64 {
                tracer.emit(
                    SimTime(i),
                    TraceEvent::CpuBurst {
                        query: i,
                        instructions: mix(i),
                    },
                );
                n += 1;
            }
            black_box((n, tracer.len()))
        })
    });

    c.bench_function("obs/emit_ring_10k", |b| {
        b.iter(|| {
            let mut tracer = Tracer::with_mask(TraceMode::Ring, 1024, TraceKind::ALL);
            for i in 0..10_000u64 {
                tracer.emit(
                    SimTime(i),
                    TraceEvent::CpuBurst {
                        query: i,
                        instructions: mix(i),
                    },
                );
            }
            black_box(tracer.len())
        })
    });

    c.bench_function("obs/metrics_inc_10k", |b| {
        let mut reg = MetricsRegistry::new();
        let bursts = reg.counter("cpu.bursts");
        b.iter(|| {
            for _ in 0..10_000u64 {
                reg.inc(bursts, 1);
            }
            black_box(reg.report().counters.len())
        })
    });

    // Stress depth: ~10× deeper than the engine ever queues. The flat scan
    // is O(n) per pop, so this case deliberately records the asymptote.
    c.bench_function("disk_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q: DiskQueue<u64> = DiskQueue::new();
            for i in 0..1_024u64 {
                q.push(QueuedRequest {
                    deadline: SimTime(1_000 + mix(i) % 8),
                    cylinder: (mix(i ^ 0x5A5A) % 1500) as u32,
                    tag: i,
                });
            }
            let mut head = 0u32;
            let mut n = 0u64;
            while let Some(r) = q.pop(head) {
                head = r.cylinder;
                n += 1;
            }
            black_box(n)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
