//! Ablation benches for the design choices DESIGN.md calls out:
//! firm vs run-to-completion deadlines, RU-heuristic initialization, and
//! the two-phase-sort variant.

use bench::make_policy;
use criterion::{criterion_group, criterion_main, Criterion};
use pmm_core::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("firm_deadlines", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::baseline(0.06);
            cfg.duration_secs = 600.0;
            black_box(run_simulation(cfg, make_policy("PMM")))
        })
    });
    g.bench_function("run_to_completion", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::baseline(0.06);
            cfg.duration_secs = 600.0;
            cfg.firm_deadlines = false;
            black_box(run_simulation(cfg, make_policy("PMM")))
        })
    });
    g.bench_function("two_phase_sorts", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::sorts(0.10);
            cfg.duration_secs = 600.0;
            cfg.resources.exec.always_two_phase_sort = true;
            black_box(run_simulation(cfg, make_policy("MinMax")))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
