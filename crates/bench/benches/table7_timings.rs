//! Table 7 family: the timing breakdown comes from the same baseline runs;
//! this bench times the measurement pipeline end to end at the three rates
//! the table reports.

use bench::make_policy;
use criterion::{criterion_group, criterion_main, Criterion};
use pmm_core::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table7_timings");
    g.sample_size(10);
    for rate in [0.04f64, 0.06, 0.08] {
        g.bench_function(format!("MinMax@{rate}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::baseline(rate);
                cfg.duration_secs = 600.0;
                let r = run_simulation(cfg, make_policy("MinMax"));
                black_box((r.timings.waiting, r.timings.execution, r.timings.response))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
