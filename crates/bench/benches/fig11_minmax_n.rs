//! Figure 11 family: MinMax-N at λ = 0.07 on 6 disks, sweeping N.

use bench::make_policy;
use criterion::{criterion_group, criterion_main, Criterion};
use pmm_core::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_minmax_n");
    g.sample_size(10);
    for n in [2u32, 6, 10, 20] {
        g.bench_function(format!("MinMax-{n}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::disk_contention(0.07);
                cfg.duration_secs = 600.0;
                black_box(run_simulation(cfg, make_policy(&format!("MinMax-{n}"))))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
