//! The driver's core contract: merged output depends only on
//! `(figure, secs, seeds, master_seed)` — never on the thread count or on
//! which worker ran which replication.

use bench::driver::{run_figure, DriverConfig};

/// A parallel 4-thread run over N seeds produces byte-identical merged JSON
/// to the serial run over the same seeds.
#[test]
fn parallel_json_matches_serial() {
    let base = DriverConfig {
        seeds: 3,
        threads: 1,
        secs: 200.0,
        master_seed: 1994,
        ..DriverConfig::default()
    };
    let serial = run_figure("fig3", base.clone()).expect("serial run");
    let parallel = run_figure(
        "fig3",
        DriverConfig {
            threads: 4,
            ..base.clone()
        },
    )
    .expect("parallel run");
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "4-thread merged JSON must be byte-identical to the serial run"
    );
}

/// Oversubscribing workers far beyond the unit count must not change the
/// merge either (workers racing on an empty queue).
#[test]
fn oversubscribed_threads_match_serial() {
    let base = DriverConfig {
        seeds: 2,
        threads: 1,
        secs: 150.0,
        master_seed: 42,
        ..DriverConfig::default()
    };
    let serial = run_figure("fig11", base.clone()).expect("serial run");
    let flooded = run_figure(
        "fig11",
        DriverConfig {
            threads: 32,
            ..base
        },
    )
    .expect("flooded run");
    assert_eq!(serial.to_json(), flooded.to_json());
}

/// The wider-workload figures (MMPP bursts, multi-tenant partitions) obey
/// the same contract: merged JSON — including the per-tenant
/// quota-utilization/borrow-volume aggregates and the adaptive policy
/// columns (`PMM-regime`, `PMM-tenant`) — is byte-identical across thread
/// counts.
#[test]
fn burst_and_tenants_json_match_serial() {
    for figure in ["burst", "tenants"] {
        let base = DriverConfig {
            seeds: 2,
            threads: 1,
            secs: 200.0,
            master_seed: 1994,
            ..DriverConfig::default()
        };
        let serial = run_figure(figure, base.clone()).expect("serial run");
        let parallel = run_figure(
            figure,
            DriverConfig {
                threads: 4,
                ..base.clone()
            },
        )
        .expect("parallel run");
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "{figure}: 4-thread JSON must match the serial run"
        );
    }
}

/// The `tenants` figure's cells carry per-tenant aggregates and the
/// per-tenant-adaptive PMM column; the `burst` figure carries the
/// regime-aware PMM column plus its windowed miss-ratio series.
#[test]
fn tenant_and_regime_cells_are_emitted() {
    let cfg = DriverConfig {
        seeds: 2,
        threads: 2,
        secs: 200.0,
        master_seed: 1994,
        ..DriverConfig::default()
    };
    let tenants = run_figure("tenants", cfg.clone()).expect("tenants runs");
    assert!(
        tenants.cells.iter().any(|c| c.policy == "PMM-tenant"),
        "adaptive per-tenant PMM column present"
    );
    assert!(
        tenants.cells.iter().all(|c| c.tenants.len() == 2),
        "every tenants cell merges both partitions"
    );
    let json = tenants.to_json();
    assert!(json.contains("\"policy\":\"PMM-tenant\""), "{json}");
    assert!(
        json.contains("\"tenants\":[{\"name\":\"analytics\""),
        "per-tenant aggregates serialized: {json}"
    );
    assert!(json.contains("\"quota_utilization\""));
    assert!(json.contains("\"borrowed_pages\""));

    let burst = run_figure("burst", cfg).expect("burst runs");
    assert!(
        burst.cells.iter().any(|c| c.policy == "PMM-regime"),
        "regime-aware PMM column present"
    );
    // At 200 sim-secs a high-ratio MMPP cell can sit in its slow state the
    // whole run and serve nothing; the Poisson control cells (x = 1) must
    // still carry their windowed miss-ratio series.
    assert!(
        burst
            .cells
            .iter()
            .filter(|c| c.x == 1.0)
            .all(|c| !c.windows.is_empty()),
        "control cells carry the windowed miss-ratio series"
    );
    assert!(
        burst.cells.iter().all(|c| c.tenants.is_empty()),
        "burst is single-tenant: no tenants array"
    );
    let burst_json = burst.to_json();
    assert!(burst_json.contains("\"policy\":\"PMM-regime\""));
    assert!(!burst_json.contains("\"tenants\":["));
}

/// The device sweep obeys the same contract: merged JSON — across the
/// cylinder-vs-SSD service models and the LRU-vs-LRU-K buffer pools — is
/// byte-identical across thread counts, and the grid's cells all appear.
#[test]
fn devices_json_matches_serial_and_covers_grid() {
    let base = DriverConfig {
        seeds: 2,
        threads: 1,
        secs: 200.0,
        master_seed: 1994,
        ..DriverConfig::default()
    };
    let serial = run_figure("devices", base.clone()).expect("serial run");
    let parallel = run_figure(
        "devices",
        DriverConfig {
            threads: 4,
            ..base.clone()
        },
    )
    .expect("parallel");
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "devices: 4-thread JSON must match the serial run"
    );
    for combo in bench::DEVICE_COMBOS {
        for policy in bench::DEVICE_POLICIES {
            let name = format!("{combo}/{policy}");
            assert!(
                serial.cells.iter().any(|c| c.policy == name),
                "cell {name} present"
            );
        }
    }
    // The SSD's service times are a different distribution from the
    // cylinder disk's, so identical cells would mean the device spec was
    // dropped somewhere along the config plumbing.
    let json = serial.to_json();
    assert!(json.contains("\"policy\":\"ssd+lruk/PMM\""), "{json}");
    let cell = |name: &str| {
        serial
            .cells
            .iter()
            .find(|c| c.policy == name && c.x == 0.07)
            .expect("grid cell")
    };
    assert_ne!(
        cell("cyl+lru/PMM").disk_util.mean,
        cell("ssd+lru/PMM").disk_util.mean,
        "SSD cells must not replicate the cylinder disk's utilization"
    );
}

/// `--record-arrivals`: replication 0's gaps are captured per cell and
/// class, replay exactly through `workload::Trace`, and do not perturb the
/// merged JSON.
#[test]
fn recorded_arrival_traces_replay_and_leave_json_untouched() {
    let base = DriverConfig {
        seeds: 2,
        threads: 1,
        secs: 300.0,
        master_seed: 7,
        ..DriverConfig::default()
    };
    let plain = run_figure("fig11", base.clone()).expect("plain run");
    assert!(plain.traces.is_empty(), "recording is off by default");
    let recorded = run_figure(
        "fig11",
        DriverConfig {
            record_arrivals: true,
            ..base
        },
    )
    .expect("recording run");
    assert_eq!(
        plain.to_json(),
        recorded.to_json(),
        "recording must not perturb the merged JSON"
    );
    assert_eq!(
        recorded.traces.len(),
        recorded.cells.len(),
        "one single-class trace per cell"
    );
    for t in &recorded.traces {
        assert_eq!(t.class, 0);
        assert!(!t.gaps.is_empty(), "cell {} recorded no gaps", t.cell);
        // The recorded gaps replay through the Trace process exactly.
        let mut trace = pmm_core::workload::Trace::from_gaps(t.gaps.clone(), false);
        let mut rng = pmm_core::simkit::Rng::new(1);
        use pmm_core::workload::ArrivalProcess;
        for (i, &g) in t.gaps.iter().enumerate() {
            let replayed = trace
                .next_interarrival(&mut rng)
                .unwrap_or_else(|| panic!("gap {i} missing"));
            assert_eq!(
                replayed,
                pmm_core::simkit::Duration::from_secs_f64(g),
                "gap {i} must replay bit-for-bit"
            );
        }
        assert!(trace.next_interarrival(&mut rng).is_none());
    }
}

/// `--trace`: every observability artifact — the rendered structured
/// traces, the merged metrics JSON, and the Chrome trace-event export — is
/// byte-identical across thread counts, and the recording leaves the
/// merged figure JSON untouched.
#[test]
fn trace_artifacts_are_thread_count_invariant() {
    let base = DriverConfig {
        seeds: 2,
        threads: 1,
        secs: 300.0,
        master_seed: 1994,
        trace: true,
        ..DriverConfig::default()
    };
    let serial = run_figure("fig12", base.clone()).expect("serial run");
    let parallel = run_figure(
        "fig12",
        DriverConfig {
            threads: 4,
            ..base.clone()
        },
    )
    .expect("parallel run");
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.obs_traces.len(), parallel.obs_traces.len());
    for (s, p) in serial.obs_traces.iter().zip(&parallel.obs_traces) {
        assert_eq!(
            pmm_core::obs::render_text(&s.records),
            pmm_core::obs::render_text(&p.records),
            "cell {}: rendered trace must be byte-identical across thread \
             counts",
            s.cell
        );
        assert_eq!(
            pmm_core::obs::chrome_trace_json(&s.records),
            pmm_core::obs::chrome_trace_json(&p.records),
            "cell {}: Chrome export must be byte-identical across thread \
             counts",
            s.cell
        );
    }
    assert_eq!(
        bench::driver::metrics_json(&serial),
        bench::driver::metrics_json(&parallel),
        "merged metrics JSON must be byte-identical across thread counts"
    );
    // A trace run leaves the figure JSON identical to a no-trace run: the
    // observability path never perturbs the simulation.
    let off = run_figure(
        "fig12",
        DriverConfig {
            trace: false,
            ..base
        },
    )
    .expect("plain run");
    assert_eq!(off.to_json(), serial.to_json());
}

/// The `scale` figure obeys the same contract at every tenant population:
/// merged JSON is byte-identical across thread counts, the full
/// tenant-count × policy grid appears, and — the tentpole equivalence —
/// the incremental `Partitioned-soft` arm merges to exactly the same
/// statistics as the pinned `snapshot/Partitioned-soft` reference arm.
#[test]
fn scale_json_matches_serial_and_incremental_equals_snapshot() {
    let base = DriverConfig {
        seeds: 2,
        threads: 1,
        secs: 150.0,
        master_seed: 1994,
        ..DriverConfig::default()
    };
    let serial = run_figure("scale", base.clone()).expect("serial run");
    let parallel =
        run_figure("scale", DriverConfig { threads: 4, ..base }).expect("parallel run");
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "scale: 4-thread JSON must match the serial run"
    );
    for n in bench::SCALE_TENANTS {
        for policy in bench::SCALE_POLICIES {
            assert!(
                serial
                    .cells
                    .iter()
                    .any(|c| c.x == n as f64 && c.policy == policy),
                "cell ({n}, {policy}) present"
            );
        }
        let cell = |policy: &str| {
            serial
                .cells
                .iter()
                .find(|c| c.x == n as f64 && c.policy == policy)
                .expect("grid cell")
        };
        let inc = cell("Partitioned-soft");
        let snap = cell("snapshot/Partitioned-soft");
        assert_eq!(inc.served, snap.served, "{n} tenants: served");
        assert_eq!(inc.missed, snap.missed, "{n} tenants: missed");
        assert_eq!(
            inc.miss_pct.mean.to_bits(),
            snap.miss_pct.mean.to_bits(),
            "{n} tenants: incremental and snapshot arms must merge to \
             bit-identical miss ratios"
        );
        assert_eq!(
            inc.avg_mpl.mean.to_bits(),
            snap.avg_mpl.mean.to_bits(),
            "{n} tenants: bit-identical MPL"
        );
        assert_eq!(
            inc.avg_fluctuations.mean.to_bits(),
            snap.avg_fluctuations.mean.to_bits(),
            "{n} tenants: bit-identical allocation-fluctuation counts"
        );
        assert_eq!(inc.tenants.len(), n, "{n} tenants: one aggregate each");
        for (ti, tj) in inc.tenants.iter().zip(&snap.tenants) {
            assert_eq!(ti.served, tj.served);
            assert_eq!(ti.missed, tj.missed);
            assert_eq!(
                ti.borrowed_pages.mean.to_bits(),
                tj.borrowed_pages.mean.to_bits(),
                "{n} tenants: bit-identical borrow volume for {}",
                ti.name
            );
        }
    }
}

/// Per-tenant metric label families: multi-tenant cells carry dense
/// per-tenant counters/gauges in their merged metrics JSON, the output is
/// byte-identical across thread counts, and single-tenant figures' metrics
/// JSON keeps its established family-free shape.
#[test]
fn tenant_metric_families_merge_and_stay_thread_invariant() {
    let base = DriverConfig {
        seeds: 2,
        threads: 1,
        secs: 200.0,
        master_seed: 1994,
        metrics: true,
        ..DriverConfig::default()
    };
    let serial = run_figure("tenants", base.clone()).expect("serial run");
    let parallel = run_figure(
        "tenants",
        DriverConfig {
            threads: 4,
            ..base.clone()
        },
    )
    .expect("parallel run");
    let json = bench::driver::metrics_json(&serial);
    assert_eq!(
        json,
        bench::driver::metrics_json(&parallel),
        "tenants metrics JSON must be byte-identical across thread counts"
    );
    assert!(json.contains("\"families\":["), "{json}");
    assert!(
        json.contains(
            "{\"name\":\"engine.tenant.served\",\"kind\":\"counter\",\"values\":["
        ),
        "{json}"
    );
    assert!(json.contains("\"engine.tenant.missed\""));
    assert!(
        json.contains("{\"name\":\"engine.tenant.mpl\",\"kind\":\"gauge\",\"values\":["),
        "{json}"
    );
    for cm in &serial.metrics {
        let served: u64 = cm
            .metrics
            .counter_families
            .iter()
            .find(|(n, _)| n == "engine.tenant.served")
            .map(|(_, v)| v.iter().sum())
            .expect("tenants cells carry the served family");
        let total = cm
            .metrics
            .counters
            .iter()
            .find(|(n, _)| n == "engine.served")
            .map(|(_, v)| *v)
            .expect("plain served counter present");
        assert_eq!(
            served, total,
            "cell {}: per-tenant served cells must sum to the global counter",
            cm.cell
        );
    }
    // Single-tenant figures: no families key, same shape as before.
    let single = run_figure(
        "fig11",
        DriverConfig {
            seeds: 1,
            secs: 150.0,
            ..base
        },
    )
    .expect("fig11 runs");
    assert!(!bench::driver::metrics_json(&single).contains("\"families\""));
}

/// Different master seeds must actually change the results — otherwise the
/// determinism assertions above would be vacuous.
#[test]
fn master_seed_changes_results() {
    let a = run_figure(
        "fig11",
        DriverConfig {
            seeds: 2,
            threads: 2,
            secs: 150.0,
            master_seed: 1,
            ..DriverConfig::default()
        },
    )
    .expect("seed 1");
    let b = run_figure(
        "fig11",
        DriverConfig {
            seeds: 2,
            threads: 2,
            secs: 150.0,
            master_seed: 2,
            ..DriverConfig::default()
        },
    )
    .expect("seed 2");
    assert_ne!(a.to_json(), b.to_json());
}
