//! The driver's core contract: merged output depends only on
//! `(figure, secs, seeds, master_seed)` — never on the thread count or on
//! which worker ran which replication.

use bench::driver::{run_figure, DriverConfig};

/// A parallel 4-thread run over N seeds produces byte-identical merged JSON
/// to the serial run over the same seeds.
#[test]
fn parallel_json_matches_serial() {
    let base = DriverConfig {
        seeds: 3,
        threads: 1,
        secs: 200.0,
        master_seed: 1994,
    };
    let serial = run_figure("fig3", base).expect("serial run");
    let parallel =
        run_figure("fig3", DriverConfig { threads: 4, ..base }).expect("parallel run");
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "4-thread merged JSON must be byte-identical to the serial run"
    );
}

/// Oversubscribing workers far beyond the unit count must not change the
/// merge either (workers racing on an empty queue).
#[test]
fn oversubscribed_threads_match_serial() {
    let base = DriverConfig {
        seeds: 2,
        threads: 1,
        secs: 150.0,
        master_seed: 42,
    };
    let serial = run_figure("fig11", base).expect("serial run");
    let flooded = run_figure(
        "fig11",
        DriverConfig {
            threads: 32,
            ..base
        },
    )
    .expect("flooded run");
    assert_eq!(serial.to_json(), flooded.to_json());
}

/// The wider-workload figures (MMPP bursts, multi-tenant partitions) obey
/// the same contract: merged JSON is byte-identical across thread counts.
#[test]
fn burst_and_tenants_json_match_serial() {
    for figure in ["burst", "tenants"] {
        let base = DriverConfig {
            seeds: 2,
            threads: 1,
            secs: 200.0,
            master_seed: 1994,
        };
        let serial = run_figure(figure, base).expect("serial run");
        let parallel = run_figure(figure, DriverConfig { threads: 4, ..base })
            .expect("parallel run");
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "{figure}: 4-thread JSON must match the serial run"
        );
    }
}

/// Different master seeds must actually change the results — otherwise the
/// determinism assertions above would be vacuous.
#[test]
fn master_seed_changes_results() {
    let a = run_figure(
        "fig11",
        DriverConfig {
            seeds: 2,
            threads: 2,
            secs: 150.0,
            master_seed: 1,
        },
    )
    .expect("seed 1");
    let b = run_figure(
        "fig11",
        DriverConfig {
            seeds: 2,
            threads: 2,
            secs: 150.0,
            master_seed: 2,
        },
    )
    .expect("seed 2");
    assert_ne!(a.to_json(), b.to_json());
}
