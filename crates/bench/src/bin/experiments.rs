//! `experiments` — regenerate the paper's tables and figures.
//!
//! Two modes:
//!
//! **Driver mode** (`--figure`): the parallel multi-seed experiment driver.
//! Shards a figure's cells across a thread pool, one independently seeded
//! replication per `--seeds`, merges the per-seed reports into batch-means
//! confidence intervals, and writes machine-readable `BENCH_<figure>.json`.
//! The merged output is byte-identical for any `--threads` value.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- --figure fig3 --seeds 8 --threads 4
//! cargo run --release -p bench --bin experiments -- --figure all --smoke
//! ```
//!
//! Flags: `--figure
//! <fig3|fig8|fig11|fig12|fig16|fig17|burst|tenants|devices|faults|scale|all>`
//! (repeatable), `--seeds N` (default 8), `--threads N` (default: available
//! cores), `--secs S` (default 3600), `--master-seed S` (default 1994),
//! `--out DIR` (default `.`), `--smoke` (defaults-only: the seed and
//! sim-secs *defaults* become 1 and 300 — the CI smoke configuration —
//! but an explicit `--seeds`/`--secs` still wins, so a long-horizon smoke
//! like `--smoke --secs 36000` works), `--record-arrivals` (write
//! replication 0's
//! inter-arrival gaps per cell and class as `TRACE_<figure>_cell<i>_
//! class<j>.txt`, replayable via `workload::Trace::from_file` /
//! `ArrivalSpec::Trace`), `--record-pmm-decisions` (write replication 0's
//! PMM decision trace per adaptive cell as `TRACE_pmm_<figure>_cell<i>.txt`
//! — the Figure 15 series the merged JSON drops), `--trace` (record
//! replication 0's structured sim-time trace per cell as
//! `TRACE_obs_<figure>_cell<i>.txt`, export cell 0 as Chrome trace-event
//! JSON `CHROME_<figure>_cell0.json` for chrome://tracing / Perfetto, and
//! write the seed-merged metrics registry as
//! `BENCH_<figure>_metrics.json`), `--metrics` (collect and write
//! `BENCH_<figure>_metrics.json` *without* record-level tracing — the
//! long-horizon configuration: registry memory stays O(counters) while
//! `--trace` buffers or streams O(events); implied by `--trace`),
//! `--profile` (attribute wall-clock time
//! per engine subsystem and write `BENCH_profile.json` — machine-dependent,
//! like `BENCH_perf.json`).
//!
//! Beyond the paper: `--figure burst` sweeps MMPP burst ratios at the
//! baseline's mean rate under the static policies, v1 PMM, and the
//! regime-aware `PMM-regime`; `--figure tenants` sweeps multi-tenant quota
//! splits under shared vs. hard- vs. soft-partitioned memory and the
//! per-tenant-adaptive `PMM-tenant`, with per-tenant quota-utilization /
//! borrow-volume aggregates in each cell's `tenants` array. `fig12` cells
//! carry the merged per-window miss-ratio series (with 90% CIs across
//! seeds) in their `windows` array. `--figure devices` crosses the storage
//! service models (cylinder disk vs. SSD) with the buffer-pool eviction
//! policies (LRU vs. LRU-2) at two baseline arrival rates; each cell's
//! policy name reads `"<device>+<eviction>/<policy>"`. `--figure faults`
//! sweeps fault-plan intensity (0 = fault-free control) × degradation
//! policy; each cell's policy name reads `"<mode>/<policy>"` with mode
//! `abort` or `requeue`. `--figure scale` sweeps the tenant population
//! 10¹→10³ (one soft-quota tenant grid per cell) under incremental
//! partitioned reallocation, the pinned full-snapshot reference path
//! (`"snapshot/Partitioned-soft"` cells), and per-tenant-adaptive
//! `PMM-tenant`. Under `--trace` the faults figure streams each
//! cell's structured trace straight to `TRACE_obs_faults_cell<i>.txt`
//! instead of buffering it in memory (so no Chrome export is produced for
//! streamed cells). A replication that panics does not abort the sweep:
//! the surviving cells complete and the failed units are written to
//! `BENCH_<figure>_quarantine.json` with their cell, policy, replication
//! index, and seed.
//!
//! **Report mode** (positional artifact name): the original single-seed
//! text reports in the paper's layout.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- all [--secs N]
//! cargo run --release -p bench --bin experiments -- fig3 --secs 36000
//! ```
//!
//! Report-mode artifacts: fig3 fig4 fig5 table7 fig6 fig7 fig8 fig9 fig10
//! fig11 fig12_14 fig15 fig16 fig17 fig18 util_low scale ablation all

use bench::driver::{
    metrics_json, perf_json, profile_json, quarantine_json, run_figure, DriverConfig,
    FIGURES,
};
use bench::*;
use pmm_core::obs;
use std::path::PathBuf;
use std::process::ExitCode;

/// Flags that take a value, in both modes.
const VALUE_FLAGS: [&str; 6] = [
    "--figure",
    "--seeds",
    "--threads",
    "--secs",
    "--master-seed",
    "--out",
];

/// Artifact names accepted by report mode.
const ARTIFACTS: [&str; 18] = [
    "fig3", "fig4", "fig5", "table7", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12_14", "fig15", "fig16", "fig17", "fig18", "util_low", "scale", "ablation",
];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a flag's value; a present-but-unparsable value is an error, not a
/// silent fallback to the default.
fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value {v:?} for {flag}")),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn run_driver(args: &[String]) -> Result<(), String> {
    // Strict scan: collect `--figure` values, reject unknown flags and stray
    // positionals (a positional artifact name belongs to report mode — mixing
    // the modes would silently drop it otherwise).
    let mut figures: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--figure" {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => figures.push(v.clone()),
                _ => return Err("--figure requires a value".into()),
            }
            i += 2;
        } else if a == "--smoke"
            || a == "--record-arrivals"
            || a == "--record-pmm-decisions"
            || a == "--trace"
            || a == "--metrics"
            || a == "--profile"
        {
            i += 1;
        } else if VALUE_FLAGS.contains(&a.as_str()) {
            if args.get(i + 1).is_none() {
                return Err(format!("{a} requires a value"));
            }
            i += 2;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag {a}"));
        } else {
            return Err(format!(
                "unexpected positional argument {a:?} in driver mode; \
                 use `--figure {a}` (driver) or drop the driver flags (report mode)"
            ));
        }
    }
    // Bare `--smoke` (or explicit `all`) means the full sweep.
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = FIGURES.iter().map(|f| (*f).to_string()).collect();
    }

    // `--smoke` only moves the *defaults*: an explicit `--seeds`/`--secs`
    // still wins, so a long-horizon smoke (`--smoke --secs 36000`) keeps the
    // smoke posture without forfeiting the horizon.
    let smoke = args.iter().any(|a| a == "--smoke");
    let cfg = DriverConfig {
        seeds: parse_flag(args, "--seeds", if smoke { 1 } else { 8 })?,
        threads: parse_flag(args, "--threads", default_threads())?,
        secs: parse_flag(args, "--secs", if smoke { 300.0 } else { 3_600.0 })?,
        master_seed: parse_flag(args, "--master-seed", 1994)?,
        record_arrivals: args.iter().any(|a| a == "--record-arrivals"),
        record_pmm_decisions: args.iter().any(|a| a == "--record-pmm-decisions"),
        trace: args.iter().any(|a| a == "--trace"),
        metrics: args.iter().any(|a| a == "--metrics"),
        profile: args.iter().any(|a| a == "--profile"),
        stream_dir: None,
    };
    if cfg.seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    if cfg.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if !(cfg.secs > 0.0 && cfg.secs.is_finite()) {
        return Err("--secs must be a positive number".into());
    }
    let out_dir = PathBuf::from(flag_value(args, "--out").unwrap_or_else(|| ".".into()));

    let mut perf: Vec<(String, bench::driver::FigurePerf)> = Vec::new();
    let mut profiles: Vec<(String, obs::ProfileReport)> = Vec::new();
    for figure in &figures {
        let started = std::time::Instant::now();
        let mut fig_cfg = cfg.clone();
        // The faults sweep streams its structured traces to disk as the
        // runs progress — fault storms under Full tracing would otherwise
        // buffer large rings per cell.
        let streamed = figure == "faults"
            && fig_cfg.trace
            && !fig_cfg.record_arrivals
            && !fig_cfg.record_pmm_decisions;
        if streamed {
            fig_cfg.stream_dir = Some(out_dir.clone());
        }
        let result = run_figure(figure, fig_cfg)?;
        print!("{}", result.render());
        let path = out_dir.join(format!("BENCH_{figure}.json"));
        std::fs::write(&path, result.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!(
            "wrote {} ({} cells × {} seeds, {:.1}s wall on {} threads, \
             {:.0} events/s per core)\n",
            path.display(),
            result.cells.len(),
            cfg.seeds,
            started.elapsed().as_secs_f64(),
            cfg.threads,
            result.perf.events_per_sec(),
        );
        // Recorded arrival traces: one whitespace/comment text file per
        // cell and class, in the exact format `Trace::from_file` parses.
        for t in &result.traces {
            let trace_path = out_dir.join(format!(
                "TRACE_{figure}_cell{}_class{}.txt",
                t.cell, t.class
            ));
            let mut body = format!(
                "# {figure} cell {} (x={:?}, policy={}) class {} — replication 0 \
                 inter-arrival gaps (s)\n",
                t.cell, t.x, t.policy, t.class
            );
            for g in &t.gaps {
                body.push_str(&format!("{g:?}\n"));
            }
            std::fs::write(&trace_path, body)
                .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
        }
        if !result.traces.is_empty() {
            println!(
                "wrote {} arrival trace file(s) (replayable via ArrivalSpec::Trace)",
                result.traces.len()
            );
        }
        // PMM decision traces (Figure 15): one text file per cell whose
        // policy took adaptive decisions, in the Figures 6/15 layout.
        for t in &result.pmm_traces {
            let trace_path =
                out_dir.join(format!("TRACE_pmm_{figure}_cell{}.txt", t.cell));
            let mut body = format!(
                "# {figure} cell {} (x={:?}, policy={}) — replication 0 PMM \
                 decision trace: t_secs mode target_mpl\n",
                t.cell, t.x, t.policy
            );
            for p in &t.points {
                body.push_str(&format!(
                    "{:?} {} {}\n",
                    p.at.as_secs_f64(),
                    p.mode,
                    p.target_mpl.map_or("-".into(), |m| m.to_string())
                ));
            }
            std::fs::write(&trace_path, body)
                .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
        }
        if !result.pmm_traces.is_empty() {
            println!(
                "wrote {} PMM decision trace file(s) (Figure 15 series)",
                result.pmm_traces.len()
            );
        }
        // Structured observability artifacts (--trace): the rendered text
        // trace per cell, the seed-merged metrics registry, and a Chrome
        // trace-event export of cell 0 for chrome://tracing / Perfetto.
        for t in &result.obs_traces {
            let trace_path =
                out_dir.join(format!("TRACE_obs_{figure}_cell{}.txt", t.cell));
            let mut body = format!(
                "# {figure} cell {} (x={:?}, policy={}) — replication 0 \
                 structured sim-time trace\n",
                t.cell, t.x, t.policy
            );
            body.push_str(&obs::render_text(&t.records));
            std::fs::write(&trace_path, body)
                .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
        }
        if let Some(t) = result.obs_traces.first() {
            let chrome_path = out_dir.join(format!("CHROME_{figure}_cell0.json"));
            std::fs::write(&chrome_path, obs::chrome_trace_json(&t.records))
                .map_err(|e| format!("cannot write {}: {e}", chrome_path.display()))?;
            println!(
                "wrote {} structured trace file(s) and {} (Chrome trace-event \
                 export)",
                result.obs_traces.len(),
                chrome_path.display()
            );
        }
        if !result.metrics.is_empty() {
            let metrics_path = out_dir.join(format!("BENCH_{figure}_metrics.json"));
            std::fs::write(&metrics_path, metrics_json(&result))
                .map_err(|e| format!("cannot write {}: {e}", metrics_path.display()))?;
            println!(
                "wrote {} (merged metrics registry; thread-count invariant)",
                metrics_path.display()
            );
        }
        if streamed {
            println!(
                "streamed {} structured trace file(s) to {} \
                 (TRACE_obs_{figure}_cell<i>.txt; no Chrome export for \
                 streamed cells)",
                result.cells.len(),
                out_dir.display()
            );
        }
        // Quarantined replications: the sweep survived a panicking unit.
        // Keep the exit status green — the partial results are valid and
        // deterministic — but say so loudly and leave the evidence behind.
        if !result.quarantine.is_empty() {
            let q_path = out_dir.join(format!("BENCH_{figure}_quarantine.json"));
            std::fs::write(&q_path, quarantine_json(&result))
                .map_err(|e| format!("cannot write {}: {e}", q_path.display()))?;
            eprintln!(
                "warning: {} replication(s) of {figure} panicked and were \
                 quarantined; see {}",
                result.quarantine.len(),
                q_path.display()
            );
        }
        if let Some(p) = &result.profile {
            profiles.push((figure.clone(), p.clone()));
        }
        perf.push((figure.clone(), result.perf));
    }
    // The perf trajectory is a separate artifact: BENCH_<figure>.json stays
    // byte-identical across machines and thread counts, BENCH_perf.json
    // deliberately is not.
    let perf_path = out_dir.join("BENCH_perf.json");
    std::fs::write(&perf_path, perf_json(&cfg, &perf))
        .map_err(|e| format!("cannot write {}: {e}", perf_path.display()))?;
    println!(
        "wrote {} (perf trajectory; not determinism-pinned)",
        perf_path.display()
    );
    // The self-profile is wall-clock attribution per engine subsystem —
    // machine-dependent like the perf trajectory, and kept apart from it.
    if !profiles.is_empty() {
        let profile_path = out_dir.join("BENCH_profile.json");
        std::fs::write(&profile_path, profile_json(&cfg, &profiles))
            .map_err(|e| format!("cannot write {}: {e}", profile_path.display()))?;
        println!(
            "wrote {} (self-profile; not determinism-pinned)",
            profile_path.display()
        );
    }
    Ok(())
}

fn run_reports(args: &[String]) -> Result<(), String> {
    let what = args.first().cloned().unwrap_or_else(|| "all".into());
    if what != "all" && !ARTIFACTS.contains(&what.as_str()) {
        return Err(format!(
            "unknown artifact {what:?}; known artifacts: all, {}",
            ARTIFACTS.join(", ")
        ));
    }
    let secs = parse_flag(args, "--secs", 3_600.0)?;

    let run = |name: &str| what == "all" || what == name;

    if run("fig3") || run("fig4") || run("fig5") || run("table7") || run("fig7") {
        let rows = baseline_sweep(secs);
        print!(
            "{}",
            render_sweep(
                "Figure 3: Miss Ratio (Baseline)",
                "rate q/s",
                &rows,
                |r| r.miss_pct(),
                "% missed"
            )
        );
        print!(
            "{}",
            render_sweep(
                "Figure 4: Disk Utilization (Baseline)",
                "rate q/s",
                &rows,
                |r| 100.0 * r.disk_util,
                "% busy"
            )
        );
        print!(
            "{}",
            render_sweep(
                "Figure 5: Average MPL (Baseline)",
                "rate q/s",
                &rows,
                |r| r.avg_mpl,
                "queries"
            )
        );
        print!(
            "{}",
            render_sweep(
                "Figure 7: Memory Fluctuations (Baseline)",
                "rate q/s",
                &rows,
                |r| r.avg_fluctuations,
                "changes/query"
            )
        );
        println!("== Table 7: Average Timings (seconds) ==");
        for row in rows.iter().filter(|r| [0.04, 0.06, 0.08].contains(&r.x)) {
            println!("arrival rate {:.2}:", row.x);
            println!(
                "  {:<14} {:>9} {:>10} {:>9}",
                "algorithm", "waiting", "execution", "total"
            );
            for (name, r) in &row.reports {
                println!(
                    "  {:<14} {:>9.1} {:>10.1} {:>9.1}",
                    name, r.timings.waiting, r.timings.execution, r.timings.response
                );
            }
        }
        println!();
    }

    if run("fig6") {
        let r = fig6(secs);
        println!("== Figure 6: PMM target MPL trace (baseline, λ = 0.075) ==");
        println!("{:>10} {:>8} {:>10}", "t (s)", "mode", "target MPL");
        for p in &r.trace {
            println!(
                "{:>10.0} {:>8} {:>10}",
                p.at.as_secs_f64(),
                p.mode.to_string(),
                p.target_mpl.map_or("-".into(), |m| m.to_string())
            );
        }
        println!("final miss ratio: {:.1}%\n", r.miss_pct());
    }

    if run("fig8") || run("fig9") || run("fig10") {
        let rows = contention_sweep(secs, 2);
        print!(
            "{}",
            render_sweep(
                "Figure 8: Miss Ratio (Disk Contention, 6 disks)",
                "rate q/s",
                &rows,
                |r| r.miss_pct(),
                "% missed"
            )
        );
        print!(
            "{}",
            render_sweep(
                "Figure 9: Disk Utilization (Disk Contention)",
                "rate q/s",
                &rows,
                |r| 100.0 * r.disk_util,
                "% busy"
            )
        );
        print!(
            "{}",
            render_sweep(
                "Figure 10: Average MPL (Disk Contention)",
                "rate q/s",
                &rows,
                |r| r.avg_mpl,
                "queries"
            )
        );
    }

    if run("fig11") {
        println!("== Figure 11: MinMax-N sweep (λ = 0.07, 6 disks) ==");
        println!(
            "{:>5} {:>10} {:>8} {:>10}",
            "N", "miss %", "MPL", "disk util"
        );
        for (n, r) in fig11(secs, &FIG11_LIMITS) {
            println!(
                "{:>5} {:>10.1} {:>8.1} {:>10.2}",
                n,
                r.miss_pct(),
                r.avg_mpl,
                r.disk_util
            );
        }
        println!();
    }

    if run("fig12_14") || run("fig15") {
        let reports = workload_changes(if what == "all" {
            Some(secs.max(7_200.0))
        } else {
            None
        });
        for (name, r) in &reports {
            println!(
                "== Figures 12–14: {name} miss-ratio time series (workload changes) =="
            );
            println!(
                "{:>10} {:>8} {:>8} {:>8}",
                "t (s)", "served", "missed", "miss %"
            );
            for w in &r.windows {
                println!(
                    "{:>10.0} {:>8} {:>8} {:>8.1}",
                    w.t_secs,
                    w.served,
                    w.missed,
                    w.miss_pct()
                );
            }
            println!("overall: {:.1}%", r.miss_pct());
            for c in &r.classes {
                println!(
                    "  class {:<8} served {:>5}  miss {:>5.1}%",
                    c.name,
                    c.served,
                    c.miss_pct()
                );
            }
            if name == "PMM" {
                println!("== Figure 15: PMM MPL trace (workload changes) ==");
                for p in &r.trace {
                    println!(
                        "{:>10.0} {:>8} {:>10}",
                        p.at.as_secs_f64(),
                        p.mode.to_string(),
                        p.target_mpl.map_or("-".into(), |m| m.to_string())
                    );
                }
            }
            println!();
        }
    }

    if run("fig16") {
        let rows = fig16(secs);
        print!(
            "{}",
            render_sweep(
                "Figure 16: Miss Ratio (External Sort)",
                "rate q/s",
                &rows,
                |r| r.miss_pct(),
                "% missed"
            )
        );
    }

    if run("fig17") || run("fig18") {
        let rows = multiclass_sweep(secs);
        print!(
            "{}",
            render_sweep(
                "Figure 17: System Miss Ratio (Multiclass)",
                "Small q/s",
                &rows,
                |r| r.miss_pct(),
                "% missed"
            )
        );
        println!("== Figure 18: Class Miss Ratios under PMM (Multiclass) ==");
        println!("{:>10} {:>10} {:>10}", "Small q/s", "Medium %", "Small %");
        for row in &rows {
            let pmm = row
                .reports
                .iter()
                .find(|(n, _)| n == "PMM")
                .expect("PMM ran");
            let med = pmm.1.classes.first().map_or(0.0, |c| c.miss_pct());
            let small = pmm.1.classes.get(1).map_or(0.0, |c| c.miss_pct());
            println!("{:>10.2} {:>10.1} {:>10.1}", row.x, med, small);
        }
        println!();
    }

    if run("util_low") {
        println!("== Section 5.4: PMM sensitivity to UtilLow (baseline, λ = 0.07) ==");
        println!("{:>8} {:>10}", "UtilLow", "miss %");
        for (ul, r) in util_low_sensitivity(secs) {
            println!("{:>8.2} {:>10.1}", ul, r.miss_pct());
        }
        println!();
    }

    if run("scale") {
        println!("== Section 5.7: scale-down check (sizes ÷10, rates ×10) ==");
        println!(
            "{:<8} {:>12} {:>12}",
            "policy", "full miss %", "small miss %"
        );
        for (name, full, small) in scale_check(secs) {
            println!(
                "{:<8} {:>12.1} {:>12.1}",
                name,
                full.miss_pct(),
                small.miss_pct()
            );
        }
        println!();
    }

    if run("ablation") {
        println!("== Ablation: firm vs run-to-completion deadlines (PMM, λ = 0.06) ==");
        for (firm, r) in ablation_firm_deadlines(secs) {
            println!(
                "  firm={:<5} miss {:>5.1}%  exec {:>6.1}s  MPL {:>4.1}",
                firm,
                r.miss_pct(),
                r.timings.execution,
                r.avg_mpl
            );
        }
        println!();
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if args.iter().any(|a| a == "--figure" || a == "--smoke") {
        run_driver(&args)
    } else {
        run_reports(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
