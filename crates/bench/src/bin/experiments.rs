//! `experiments` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- all [--secs N]
//! cargo run --release -p bench --bin experiments -- fig3 --secs 36000
//! ```
//!
//! Artifacts: fig3 fig4 fig5 table7 fig6 fig7 fig8 fig9 fig10 fig11
//! fig12_14 fig15 fig16 fig17 fig18 util_low scale ablation all

use bench::*;


fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().cloned().unwrap_or_else(|| "all".into());
    let secs = args
        .iter()
        .position(|a| a == "--secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3_600.0);

    let run = |name: &str| what == "all" || what == name;

    if run("fig3") || run("fig4") || run("fig5") || run("table7") || run("fig7") {
        let rows = baseline_sweep(secs);
        print!("{}", render_sweep("Figure 3: Miss Ratio (Baseline)", "rate q/s", &rows, |r| r.miss_pct(), "% missed"));
        print!("{}", render_sweep("Figure 4: Disk Utilization (Baseline)", "rate q/s", &rows, |r| 100.0 * r.disk_util, "% busy"));
        print!("{}", render_sweep("Figure 5: Average MPL (Baseline)", "rate q/s", &rows, |r| r.avg_mpl, "queries"));
        print!("{}", render_sweep("Figure 7: Memory Fluctuations (Baseline)", "rate q/s", &rows, |r| r.avg_fluctuations, "changes/query"));
        println!("== Table 7: Average Timings (seconds) ==");
        for row in rows.iter().filter(|r| [0.04, 0.06, 0.08].contains(&r.x)) {
            println!("arrival rate {:.2}:", row.x);
            println!("  {:<14} {:>9} {:>10} {:>9}", "algorithm", "waiting", "execution", "total");
            for (name, r) in &row.reports {
                println!(
                    "  {:<14} {:>9.1} {:>10.1} {:>9.1}",
                    name, r.timings.waiting, r.timings.execution, r.timings.response
                );
            }
        }
        println!();
    }

    if run("fig6") {
        let r = fig6(secs);
        println!("== Figure 6: PMM target MPL trace (baseline, λ = 0.075) ==");
        println!("{:>10} {:>8} {:>10}", "t (s)", "mode", "target MPL");
        for p in &r.trace {
            println!(
                "{:>10.0} {:>8} {:>10}",
                p.at.as_secs_f64(),
                p.mode.to_string(),
                p.target_mpl.map_or("-".into(), |m| m.to_string())
            );
        }
        println!("final miss ratio: {:.1}%\n", r.miss_pct());
    }

    if run("fig8") || run("fig9") || run("fig10") {
        let rows = contention_sweep(secs, 2);
        print!("{}", render_sweep("Figure 8: Miss Ratio (Disk Contention, 6 disks)", "rate q/s", &rows, |r| r.miss_pct(), "% missed"));
        print!("{}", render_sweep("Figure 9: Disk Utilization (Disk Contention)", "rate q/s", &rows, |r| 100.0 * r.disk_util, "% busy"));
        print!("{}", render_sweep("Figure 10: Average MPL (Disk Contention)", "rate q/s", &rows, |r| r.avg_mpl, "queries"));
    }

    if run("fig11") {
        println!("== Figure 11: MinMax-N sweep (λ = 0.07, 6 disks) ==");
        println!("{:>5} {:>10} {:>8} {:>10}", "N", "miss %", "MPL", "disk util");
        for (n, r) in fig11(secs, &[2, 3, 4, 6, 8, 10, 15, 20]) {
            println!("{:>5} {:>10.1} {:>8.1} {:>10.2}", n, r.miss_pct(), r.avg_mpl, r.disk_util);
        }
        println!();
    }

    if run("fig12_14") || run("fig15") {
        let reports = workload_changes(if what == "all" { Some(secs.max(7_200.0)) } else { None });
        for (name, r) in &reports {
            println!("== Figures 12–14: {name} miss-ratio time series (workload changes) ==");
            println!("{:>10} {:>8} {:>8} {:>8}", "t (s)", "served", "missed", "miss %");
            for w in &r.windows {
                println!("{:>10.0} {:>8} {:>8} {:>8.1}", w.t_secs, w.served, w.missed, w.miss_pct());
            }
            println!("overall: {:.1}%", r.miss_pct());
            for c in &r.classes {
                println!("  class {:<8} served {:>5}  miss {:>5.1}%", c.name, c.served, c.miss_pct());
            }
            if name == "PMM" {
                println!("== Figure 15: PMM MPL trace (workload changes) ==");
                for p in &r.trace {
                    println!(
                        "{:>10.0} {:>8} {:>10}",
                        p.at.as_secs_f64(),
                        p.mode.to_string(),
                        p.target_mpl.map_or("-".into(), |m| m.to_string())
                    );
                }
            }
            println!();
        }
    }

    if run("fig16") {
        let rows = fig16(secs);
        print!("{}", render_sweep("Figure 16: Miss Ratio (External Sort)", "rate q/s", &rows, |r| r.miss_pct(), "% missed"));
    }

    if run("fig17") || run("fig18") {
        let rows = multiclass_sweep(secs);
        print!("{}", render_sweep("Figure 17: System Miss Ratio (Multiclass)", "Small q/s", &rows, |r| r.miss_pct(), "% missed"));
        println!("== Figure 18: Class Miss Ratios under PMM (Multiclass) ==");
        println!("{:>10} {:>10} {:>10}", "Small q/s", "Medium %", "Small %");
        for row in &rows {
            let pmm = row.reports.iter().find(|(n, _)| n == "PMM").expect("PMM ran");
            let med = pmm.1.classes.first().map_or(0.0, |c| c.miss_pct());
            let small = pmm.1.classes.get(1).map_or(0.0, |c| c.miss_pct());
            println!("{:>10.2} {:>10.1} {:>10.1}", row.x, med, small);
        }
        println!();
    }

    if run("util_low") {
        println!("== Section 5.4: PMM sensitivity to UtilLow (baseline, λ = 0.07) ==");
        println!("{:>8} {:>10}", "UtilLow", "miss %");
        for (ul, r) in util_low_sensitivity(secs) {
            println!("{:>8.2} {:>10.1}", ul, r.miss_pct());
        }
        println!();
    }

    if run("scale") {
        println!("== Section 5.7: scale-down check (sizes ÷10, rates ×10) ==");
        println!("{:<8} {:>12} {:>12}", "policy", "full miss %", "small miss %");
        for (name, full, small) in scale_check(secs) {
            println!("{:<8} {:>12.1} {:>12.1}", name, full.miss_pct(), small.miss_pct());
        }
        println!();
    }

    if run("ablation") {
        println!("== Ablation: firm vs run-to-completion deadlines (PMM, λ = 0.06) ==");
        for (firm, r) in ablation_firm_deadlines(secs) {
            println!(
                "  firm={:<5} miss {:>5.1}%  exec {:>6.1}s  MPL {:>4.1}",
                firm, r.miss_pct(), r.timings.execution, r.avg_mpl
            );
        }
        println!();
    }
}
