//! The parallel multi-seed experiment driver.
//!
//! The paper's measurement protocol is batched means over long runs; the
//! modern equivalent — and the Li & Deshpande consensus-over-replications
//! framing — is many *independently seeded* replications of each experiment
//! cell, merged into means with confidence intervals. This module shards the
//! figure experiments across a thread pool, one deterministic
//! `SeedSequence`-derived RNG stream per replication, and merges the per-seed
//! [`RunReport`]s into [`pmm_core::simkit::metrics::BatchMeans`] summaries — scalar
//! metrics and the windowed miss-ratio time series alike (Figures 12–14 plot
//! the latter).
//!
//! Determinism contract: the merged output (and therefore the emitted JSON)
//! depends only on `(figure, secs, seeds, master_seed)` — never on the
//! thread count or on scheduling. Replications are merged in seed order from
//! a pre-sized result table, so a 4-thread run is byte-identical to a serial
//! run. `tests/driver_determinism.rs` pins that property.

use crate::make_policy_for;
use pmm_core::obs;
use pmm_core::prelude::*;
use pmm_core::rtdbs::WindowPoint;
use pmm_core::simkit::metrics::BatchMeans;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Names of the figure experiments the driver knows how to shard. Beyond
/// the paper's figures, `burst` sweeps MMPP burst ratios, `tenants` sweeps
/// multi-tenant quota splits, `devices` crosses the storage service models
/// with the buffer-pool eviction policies, `faults` sweeps fault-storm
/// intensity × degradation policy, and `scale` sweeps tenant population
/// 10¹→10³ under incremental vs snapshot reallocation.
pub const FIGURES: [&str; 11] = [
    "fig3", "fig8", "fig11", "fig12", "fig16", "fig17", "burst", "tenants", "devices",
    "faults", "scale",
];

/// Two-sided 90% Student-t quantile (`t_{0.95, df}`) for the given degrees
/// of freedom. With a handful of replications the normal quantile (1.645)
/// understates the interval; this is the correct small-sample width. For
/// `df > 30` a Cornish–Fisher correction on the normal quantile is accurate
/// to three decimals.
pub fn t_quantile_90(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796,
        1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717,
        1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    ];
    match df {
        0 => f64::NAN,
        1..=30 => TABLE[df - 1],
        _ => {
            let z = 1.645;
            z + (z * z * z + z) / (4.0 * df as f64)
        }
    }
}

/// One experiment cell: a point on a figure's x-axis run under one policy.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// The swept parameter (arrival rate, MinMax N, Small-class rate, ...).
    pub x: f64,
    /// Policy short name, as accepted by [`crate::make_policy`].
    pub policy: String,
}

/// A figure experiment: its cells plus how to build each cell's config.
#[derive(Clone, Debug)]
pub struct FigureSpec {
    /// Figure name ("fig3", ...).
    pub name: &'static str,
    /// Meaning of the x axis, for reports.
    pub x_label: &'static str,
    /// The cells, in output order.
    pub cells: Vec<CellSpec>,
}

fn cross(xs: &[f64], policies: &[&str]) -> Vec<CellSpec> {
    xs.iter()
        .flat_map(|&x| {
            policies.iter().map(move |&p| CellSpec {
                x,
                policy: p.to_string(),
            })
        })
        .collect()
}

/// Look up a figure by name.
///
/// # Errors
/// Returns the list of known figures if `name` is not one of them.
pub fn figure_spec(name: &str) -> Result<FigureSpec, String> {
    let spec = match name {
        "fig3" => FigureSpec {
            name: "fig3",
            x_label: "arrival rate (queries/s)",
            cells: cross(&crate::BASELINE_RATES, &crate::BASELINE_POLICIES),
        },
        "fig8" => FigureSpec {
            name: "fig8",
            x_label: "arrival rate (queries/s)",
            cells: cross(
                &crate::BASELINE_RATES,
                &["Max", "MinMax", "PMM", "MinMax-2"],
            ),
        },
        "fig11" => FigureSpec {
            name: "fig11",
            x_label: "MinMax memory limit N",
            cells: crate::FIG11_LIMITS
                .iter()
                .map(|&n| CellSpec {
                    x: f64::from(n),
                    policy: format!("MinMax-{n}"),
                })
                .collect(),
        },
        "fig12" => FigureSpec {
            name: "fig12",
            x_label: "(single alternating workload)",
            cells: cross(&[0.0], &["Max", "MinMax", "PMM"]),
        },
        "fig16" => FigureSpec {
            name: "fig16",
            x_label: "arrival rate (queries/s)",
            cells: cross(&crate::SORT_RATES, &crate::BASELINE_POLICIES),
        },
        "fig17" => FigureSpec {
            name: "fig17",
            x_label: "Small-class arrival rate (queries/s)",
            cells: cross(&crate::MULTICLASS_SMALL_RATES, &["Max", "MinMax", "PMM"]),
        },
        "burst" => FigureSpec {
            name: "burst",
            x_label: "MMPP burst ratio (1 = Poisson control)",
            cells: cross(&crate::BURST_RATIOS, &crate::BURST_POLICIES),
        },
        "tenants" => FigureSpec {
            name: "tenants",
            x_label: "analytics-tenant memory fraction",
            cells: cross(&crate::TENANT_FRACTIONS, &crate::TENANT_POLICIES),
        },
        "devices" => FigureSpec {
            name: "devices",
            x_label: "arrival rate (queries/s)",
            // Every device × eviction combination under every policy; the
            // combo rides in the cell's policy name ("ssd+lruk/PMM") and is
            // split back out by `apply_device_cell` when the cell runs.
            cells: crate::DEVICE_RATES
                .iter()
                .flat_map(|&x| {
                    crate::DEVICE_COMBOS.iter().flat_map(move |&combo| {
                        crate::DEVICE_POLICIES.iter().map(move |&p| CellSpec {
                            x,
                            policy: format!("{combo}/{p}"),
                        })
                    })
                })
                .collect(),
        },
        "faults" => FigureSpec {
            name: "faults",
            x_label: "fault intensity (0 = fault-free control)",
            // Degradation mode rides in the cell's policy name
            // ("requeue/PMM") and is split back out by `apply_fault_cell`
            // when the cell runs.
            cells: cross(&crate::FAULT_INTENSITIES, &crate::FAULT_POLICIES),
        },
        "scale" => FigureSpec {
            name: "scale",
            x_label: "tenant count",
            // The `snapshot/` prefix pins the reference full-snapshot
            // allocation path (split back out by `split_snapshot_cell`),
            // so incremental vs snapshot reallocation is an arm of the
            // sweep rather than a separate figure.
            cells: cross(
                &crate::SCALE_TENANTS.map(|n| n as f64),
                &crate::SCALE_POLICIES,
            ),
        },
        // Hidden from `FIGURES` (and so from `--figure all`): a tiny sweep
        // whose middle cell runs the deliberately crashing `panic` policy,
        // proving end to end that a panicking replication is quarantined
        // while the neighbouring cells complete.
        "crashtest" => FigureSpec {
            name: "crashtest",
            x_label: "(crashtest cells)",
            cells: vec![
                CellSpec {
                    x: 0.0,
                    policy: "MinMax".to_string(),
                },
                CellSpec {
                    x: 1.0,
                    policy: "panic".to_string(),
                },
                CellSpec {
                    x: 2.0,
                    policy: "MinMax".to_string(),
                },
            ],
        },
        other => {
            return Err(format!(
                "unknown figure {other:?}; known figures: {}",
                FIGURES.join(", ")
            ))
        }
    };
    Ok(spec)
}

/// Build the simulation config for one cell of `figure` (seed and duration
/// are filled in per replication by the driver).
fn cell_config(figure: &str, x: f64) -> SimConfig {
    match figure {
        "fig3" => SimConfig::baseline(x),
        "fig8" => SimConfig::disk_contention(x),
        "fig11" => SimConfig::disk_contention(0.07),
        "fig12" => {
            let mut cfg = SimConfig::workload_changes();
            cfg.window_secs = crate::CHANGES_WINDOW_SECS;
            cfg
        }
        "fig16" => SimConfig::sorts(x),
        "fig17" => SimConfig::multiclass(x),
        "burst" => SimConfig::bursty(x),
        "tenants" => SimConfig::multi_tenant(x),
        // The device/eviction choice is per cell, not per figure: it is
        // applied from the cell's policy name by `apply_device_cell`.
        "devices" => SimConfig::baseline(x),
        // x is the fault-storm intensity; the degradation mode is per cell,
        // applied from the cell's policy name by `apply_fault_cell`.
        "faults" => SimConfig::faulty(x),
        "scale" => SimConfig::scale(x as usize),
        "crashtest" => SimConfig::baseline(0.05),
        other => unreachable!("figure_spec admitted unknown figure {other}"),
    }
}

/// Driver parameters.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Independent replications per cell.
    pub seeds: u64,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Simulated seconds per replication.
    pub secs: f64,
    /// Master seed the per-replication streams derive from.
    pub master_seed: u64,
    /// Record replication 0's inter-arrival gaps per cell into
    /// [`FigureResult::traces`], replayable via `workload::Trace`
    /// (`--record-arrivals`). Metric-only: the merged JSON is unaffected.
    pub record_arrivals: bool,
    /// Collect replication 0's PMM decision trace per cell into
    /// [`FigureResult::pmm_traces`] (`--record-pmm-decisions`) — the
    /// Figure 15 series the merged JSON drops. Metric-only: the points are
    /// recovered from the structured trace sink's `PolicyDecision` records.
    pub record_pmm_decisions: bool,
    /// Enable the observability subsystem (`--trace`): replication 0 of
    /// every cell records a full structured sim-time trace into
    /// [`FigureResult::obs_traces`], and every replication collects the
    /// metrics registry, merged per cell in seed order into
    /// [`FigureResult::metrics`]. Metric-only: the merged
    /// `BENCH_<figure>.json` is unaffected.
    pub trace: bool,
    /// Collect the metrics registry on every replication (`--metrics`)
    /// *without* structured tracing: [`FigureResult::metrics`] is populated
    /// exactly as under [`DriverConfig::trace`], but no replication buffers
    /// (or streams) a record-level trace. This is the long-horizon
    /// configuration — `BENCH_<figure>_metrics.json` over tens of thousands
    /// of sim-seconds with O(registry) memory instead of O(events). Implied
    /// by [`DriverConfig::trace`]; metric-only like it.
    pub metrics: bool,
    /// Enable engine self-profiling (`--profile`): wall-clock attribution
    /// per subsystem, aggregated over all replications into
    /// [`FigureResult::profile`]. Machine-dependent — never byte-diffed.
    pub profile: bool,
    /// Stream replication 0's structured trace of every cell to
    /// `TRACE_obs_<figure>_cell<i>.txt` under this directory *while the run
    /// executes* instead of buffering the full record stream in memory
    /// (long `--trace` runs). Only effective with [`DriverConfig::trace`];
    /// ignored when arrival or PMM-decision recording needs the in-memory
    /// records back. Streamed cells are absent from
    /// [`FigureResult::obs_traces`] — their bytes are already on disk.
    pub stream_dir: Option<std::path::PathBuf>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            seeds: 8,
            threads: 1,
            secs: 3_600.0,
            master_seed: 1994,
            record_arrivals: false,
            record_pmm_decisions: false,
            trace: false,
            metrics: false,
            profile: false,
            stream_dir: None,
        }
    }
}

/// Mean and 90% batch-means half-width of one metric over the replications.
#[derive(Clone, Copy, Debug)]
pub struct MetricSummary {
    /// Mean over replications.
    pub mean: f64,
    /// 90% half-width (`None` with fewer than two replications).
    pub ci90: Option<f64>,
}

fn summarize<F: Fn(&RunReport) -> f64>(reports: &[RunReport], f: F) -> MetricSummary {
    let mut bm = BatchMeans::new(1);
    for r in reports {
        bm.record(f(r));
    }
    MetricSummary {
        mean: bm.mean(),
        ci90: bm.half_width(t_quantile_90(reports.len().saturating_sub(1))),
    }
}

/// One window of the merged miss-ratio time series: the same batch-means
/// machinery as the scalar metrics, applied per window index across the
/// replications (closing the "fig12 windows are dropped" gap — Figures
/// 12–14 plot exactly this series).
#[derive(Clone, Debug)]
pub struct MergedWindow {
    /// Window end in simulated seconds.
    pub t_secs: f64,
    /// Replications contributing this window (late windows can be missing
    /// from replications that went quiet early).
    pub replications: u64,
    /// Total queries served in this window across replications.
    pub served: u64,
    /// Total misses in this window across replications.
    pub missed: u64,
    /// Window miss ratio (%), mean ± CI over replications.
    pub miss_pct: MetricSummary,
}

/// One tenant's merged statistics over the replications of a cell: the
/// quantitative isolation story of the `tenants` figure (quota utilization
/// and borrow volume per partition, with CIs across seeds).
#[derive(Clone, Debug)]
pub struct MergedTenant {
    /// Tenant label from the scenario's `TenantSpec`.
    pub name: String,
    /// Declared quota in pages.
    pub quota_pages: u32,
    /// Whether the quota is soft (borrowing allowed).
    pub soft: bool,
    /// Queries billed to this tenant across replications.
    pub served: u64,
    /// Of those, deadline misses.
    pub missed: u64,
    /// Tenant miss ratio (%), mean ± CI over replications.
    pub miss_pct: MetricSummary,
    /// Time-averaged tenant MPL.
    pub avg_mpl: MetricSummary,
    /// Time-averaged fraction of the quota in use (> 1 while borrowing).
    pub quota_utilization: MetricSummary,
    /// Time-averaged pages held beyond the quota (borrow volume).
    pub borrowed_pages: MetricSummary,
}

/// Merge the per-replication tenant outcomes index-by-index (every
/// replication of a cell runs the same tenant table).
fn merge_tenants(reports: &[RunReport]) -> Vec<MergedTenant> {
    let n = reports.first().map_or(0, |r| r.tenants.len());
    (0..n)
        .map(|j| {
            let first = &reports[0].tenants[j];
            let of = |f: &dyn Fn(&pmm_core::rtdbs::TenantOutcome) -> f64| {
                summarize(reports, |r| f(&r.tenants[j]))
            };
            MergedTenant {
                name: first.name.clone(),
                quota_pages: first.quota_pages,
                soft: first.soft,
                served: reports.iter().map(|r| r.tenants[j].served).sum(),
                missed: reports.iter().map(|r| r.tenants[j].missed).sum(),
                miss_pct: of(&|t| t.miss_pct()),
                avg_mpl: of(&|t| t.avg_mpl),
                quota_utilization: of(&|t| t.quota_utilization),
                borrowed_pages: of(&|t| t.borrowed_pages),
            }
        })
        .collect()
}

/// One recorded arrival trace: replication 0's inter-arrival gaps for one
/// class of one cell, replayable through `workload::Trace` /
/// `ArrivalSpec::Trace { gaps, repeat: false }`.
#[derive(Clone, Debug)]
pub struct RecordedTrace {
    /// Cell index in the figure's canonical order.
    pub cell: usize,
    /// The cell's swept parameter.
    pub x: f64,
    /// The cell's policy.
    pub policy: String,
    /// Workload class index within the cell's config.
    pub class: usize,
    /// Inter-arrival gaps in seconds, in arrival order.
    pub gaps: Vec<f64>,
}

/// One recorded PMM decision trace: replication 0's
/// [`pmm_core::pmm::TracePoint`] series
/// for one cell — the strategy-mode / target-MPL decisions Figures 6 and
/// 15 plot, which the merged `BENCH_<figure>.json` deliberately drops.
#[derive(Clone, Debug)]
pub struct RecordedPmmTrace {
    /// Cell index in the figure's canonical order.
    pub cell: usize,
    /// The cell's swept parameter.
    pub x: f64,
    /// The cell's policy.
    pub policy: String,
    /// Replication 0's decision points, in simulation order.
    pub points: Vec<pmm_core::pmm::TracePoint>,
}

/// One cell's recorded structured trace: replication 0's full sim-time
/// record stream (arrivals through departures, policy decisions, batch
/// boundaries), rendered by the binary as `TRACE_obs_<figure>_cell<i>.txt`
/// and exportable to Chrome trace-event JSON.
#[derive(Clone, Debug)]
pub struct RecordedObsTrace {
    /// Cell index in the figure's canonical order.
    pub cell: usize,
    /// The cell's swept parameter.
    pub x: f64,
    /// The cell's policy.
    pub policy: String,
    /// Replication 0's trace records, chronological.
    pub records: Vec<obs::TraceRecord>,
}

/// One cell's metrics registry, merged over the replications in seed order
/// (counters and histogram buckets sum, gauges average, windowed deltas
/// merge index-by-index) — the payload of `BENCH_<figure>_metrics.json`.
#[derive(Clone, Debug)]
pub struct CellMetrics {
    /// Cell index in the figure's canonical order.
    pub cell: usize,
    /// The cell's swept parameter.
    pub x: f64,
    /// The cell's policy.
    pub policy: String,
    /// The merged registry snapshot.
    pub metrics: obs::MetricsReport,
}

/// One cell's merged statistics over all replications.
#[derive(Clone, Debug)]
pub struct MergedCell {
    /// The swept parameter.
    pub x: f64,
    /// Policy short name.
    pub policy: String,
    /// Replications merged.
    pub replications: u64,
    /// Total queries served across replications.
    pub served: u64,
    /// Total deadline misses across replications.
    pub missed: u64,
    /// Miss ratio (%), mean ± CI over replications.
    pub miss_pct: MetricSummary,
    /// Time-averaged MPL.
    pub avg_mpl: MetricSummary,
    /// CPU utilization in `[0, 1]`.
    pub cpu_util: MetricSummary,
    /// Mean disk utilization in `[0, 1]`.
    pub disk_util: MetricSummary,
    /// Admission waiting time (s).
    pub waiting: MetricSummary,
    /// Execution time (s).
    pub execution: MetricSummary,
    /// Response time (s).
    pub response: MetricSummary,
    /// Memory-allocation changes per query.
    pub avg_fluctuations: MetricSummary,
    /// Merged windowed miss-ratio time series.
    pub windows: Vec<MergedWindow>,
    /// Merged per-tenant aggregates (empty for single-tenant figures).
    pub tenants: Vec<MergedTenant>,
}

/// Merge the per-replication window series index-by-index. Replication
/// windows share boundaries (same `window_secs` and duration), but a run
/// may emit one final partial window the others lack — each index is merged
/// over the replications that actually have it.
fn merge_windows(reports: &[RunReport]) -> Vec<MergedWindow> {
    let longest = reports.iter().map(|r| r.windows.len()).max().unwrap_or(0);
    (0..longest)
        .map(|j| {
            let points: Vec<&WindowPoint> =
                reports.iter().filter_map(|r| r.windows.get(j)).collect();
            let mut bm = BatchMeans::new(1);
            for p in &points {
                bm.record(p.miss_pct());
            }
            MergedWindow {
                t_secs: points[0].t_secs,
                replications: points.len() as u64,
                served: points.iter().map(|p| p.served).sum(),
                missed: points.iter().map(|p| p.missed).sum(),
                miss_pct: MetricSummary {
                    mean: bm.mean(),
                    ci90: bm.half_width(t_quantile_90(points.len().saturating_sub(1))),
                },
            }
        })
        .collect()
}

/// Wall-clock perf readings for one cell: calendar events dispatched and
/// wall seconds spent, summed over the cell's replications. `wall_secs` is
/// per-unit wall time (each unit is timed on its own worker), so
/// `events_per_sec` approximates per-core simulator throughput. For
/// trustworthy numbers run with `--threads 1`: oversubscribed workers on a
/// CPU-quota-limited machine timeshare, which inflates per-unit wall time.
#[derive(Clone, Debug)]
pub struct CellPerf {
    /// The swept parameter.
    pub x: f64,
    /// Policy short name.
    pub policy: String,
    /// Calendar events dispatched, summed over replications.
    pub events: u64,
    /// Wall seconds, summed over replications.
    pub wall_secs: f64,
}

impl CellPerf {
    /// Simulator throughput in events per wall second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// One figure's perf trajectory. Deliberately **not** part of
/// [`FigureResult::to_json`]: wall-clock readings vary by machine and run,
/// so they live in the separate `BENCH_perf.json` (see [`perf_json`]) which
/// is never diffed for byte-identity.
#[derive(Clone, Debug, Default)]
pub struct FigurePerf {
    /// Per-cell readings, in the figure's canonical cell order.
    pub cells: Vec<CellPerf>,
}

impl FigurePerf {
    /// Total events dispatched across cells.
    pub fn events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// Total wall seconds across cells.
    pub fn wall_secs(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_secs).sum()
    }

    /// Aggregate throughput in events per wall second.
    pub fn events_per_sec(&self) -> f64 {
        let wall = self.wall_secs();
        if wall > 0.0 {
            self.events() as f64 / wall
        } else {
            0.0
        }
    }
}

/// One replication that panicked mid-run: quarantined with its provenance
/// instead of aborting the sweep. The remaining replications of its cell
/// (and every other cell) still merge normally; the binary writes the list
/// as `BENCH_<figure>_quarantine.json` (see [`quarantine_json`]).
#[derive(Clone, Debug)]
pub struct QuarantinedUnit {
    /// Cell index in the figure's canonical order.
    pub cell: usize,
    /// The cell's swept parameter.
    pub x: f64,
    /// The cell's policy name.
    pub policy: String,
    /// Replication index within the cell.
    pub rep: u64,
    /// The replication's derived RNG seed — rerun it with
    /// `SimConfig { seed, .. }` to reproduce the panic.
    pub seed: u64,
    /// The panic payload, when it was a string.
    pub message: String,
}

/// A figure's complete merged result.
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Figure name.
    pub figure: &'static str,
    /// Meaning of the x axis.
    pub x_label: &'static str,
    /// Driver parameters the result was produced under.
    pub config: DriverConfig,
    /// Merged cells, in the figure's canonical order.
    pub cells: Vec<MergedCell>,
    /// Wall-clock perf readings (kept out of the deterministic JSON).
    pub perf: FigurePerf,
    /// Replication 0's recorded arrival traces per cell and class (empty
    /// unless [`DriverConfig::record_arrivals`] is set; kept out of the
    /// merged JSON — the binary writes them as separate `TRACE_*` files).
    pub traces: Vec<RecordedTrace>,
    /// Replication 0's PMM decision traces per cell (empty unless
    /// [`DriverConfig::record_pmm_decisions`] is set; cells whose policy
    /// produced no decisions — the static baselines — are skipped). The
    /// binary writes them as `TRACE_pmm_<figure>_cell<i>.txt`.
    pub pmm_traces: Vec<RecordedPmmTrace>,
    /// Replication 0's structured traces per cell (empty unless
    /// [`DriverConfig::trace`] is set; kept out of the merged JSON).
    pub obs_traces: Vec<RecordedObsTrace>,
    /// Per-cell merged metrics registries (empty unless
    /// [`DriverConfig::trace`] or [`DriverConfig::metrics`] is set).
    /// Serialized by [`metrics_json`] —
    /// byte-identical across thread counts, like the figure JSON.
    pub metrics: Vec<CellMetrics>,
    /// Wall-clock self-profile aggregated over every replication of every
    /// cell (`None` unless [`DriverConfig::profile`] is set).
    /// Machine-dependent: serialized by [`profile_json`], never diffed.
    pub profile: Option<obs::ProfileReport>,
    /// Replications that panicked, in cell-major / replication-minor order
    /// (deterministic across thread counts). Empty on a healthy sweep.
    pub quarantine: Vec<QuarantinedUnit>,
}

/// Derive the RNG seed for replication `rep` — stable for a given master
/// seed, independent of cell, thread count, and scheduling.
pub fn replication_seed(master_seed: u64, rep: u64) -> u64 {
    pmm_core::simkit::SeedSequence::new(master_seed)
        .substream("replication", rep)
        .next_u64()
}

/// Run one figure: shard `cells × seeds` simulation units across
/// `cfg.threads` workers, then merge per cell in seed order.
///
/// # Errors
/// Propagates [`figure_spec`]'s error for unknown figure names.
///
/// # Panics
/// A replication that panics does **not** abort the sweep: the panic is
/// caught on its worker and the unit lands in
/// [`FigureResult::quarantine`] while every other unit completes. Only
/// driver-internal invariant violations still panic.
pub fn run_figure(figure: &str, cfg: DriverConfig) -> Result<FigureResult, String> {
    let spec = figure_spec(figure)?;
    // Reject degenerate configs before any replication spawns: every cell's
    // fully-resolved config (device, eviction, and degradation mode
    // applied) must validate.
    for cell in &spec.cells {
        let mut sim = cell_config(spec.name, cell.x);
        sim.duration_secs = cfg.secs;
        let (sim, rest) = crate::apply_device_cell(sim, &cell.policy);
        let (sim, _) = crate::apply_fault_cell(sim, &rest);
        sim.validate().map_err(|e| {
            format!("invalid config for {figure} cell {:?}: {e}", cell.policy)
        })?;
    }
    let seeds: Vec<u64> = (0..cfg.seeds)
        .map(|rep| replication_seed(cfg.master_seed, rep))
        .collect();
    // Streaming applies only when nothing needs the in-memory records back.
    let streaming = cfg.stream_dir.is_some()
        && cfg.trace
        && !cfg.record_arrivals
        && !cfg.record_pmm_decisions;

    // One unit per (cell, replication); results land in a pre-sized table so
    // merge order is independent of which worker ran which unit.
    let units: Vec<(usize, usize)> = (0..spec.cells.len())
        .flat_map(|c| (0..seeds.len()).map(move |s| (c, s)))
        .collect();
    let results: Vec<OnceLock<Result<(RunReport, f64), String>>> =
        units.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);

    let run_unit = |unit: usize| {
        let (c, s) = units[unit];
        let cell = &spec.cells[c];
        let mut sim = cell_config(spec.name, cell.x);
        sim.duration_secs = cfg.secs;
        sim.seed = seeds[s];
        // Traces are per cell, not per replication: replication 0 is the
        // canonical recording (its seed derivation is stable).
        sim.record_arrivals = cfg.record_arrivals && s == 0;
        // Structured traces follow the same convention; PMM decision
        // recording rides the same sink (its points are recovered from the
        // `PolicyDecision` records). Metrics are collected on *every*
        // replication so the per-cell merge spans all seeds.
        if s == 0 && (cfg.trace || cfg.record_pmm_decisions) {
            sim.obs.trace = TraceMode::Full;
            if streaming {
                if let Some(dir) = &cfg.stream_dir {
                    sim.obs.trace_path =
                        Some(dir.join(format!("TRACE_obs_{}_cell{c}.txt", spec.name)));
                }
            }
        }
        sim.obs.metrics = cfg.trace || cfg.metrics;
        sim.obs.profile = cfg.profile;
        // Device-sweep cells fold a device × eviction choice into the
        // policy name, fault-sweep cells a degradation mode; all other
        // cells pass through unchanged.
        let (sim, rest) = crate::apply_device_cell(sim, &cell.policy);
        let (sim, policy_name) = crate::apply_fault_cell(sim, &rest);
        let started = std::time::Instant::now();
        // A panicking replication (crashing policy, engine invariant blown
        // on a hostile config) is caught here on its own worker: the unit
        // quarantines, the sweep survives.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let policy = make_policy_for(&sim, &policy_name);
            run_simulation(sim, policy)
        }));
        let wall = started.elapsed().as_secs_f64();
        let entry = match outcome {
            Ok(report) => Ok((report, wall)),
            Err(payload) => Err(panic_message(payload.as_ref())),
        };
        results[unit]
            .set(entry)
            .expect("each unit is claimed exactly once");
    };

    let workers = cfg.threads.max(1).min(units.len().max(1));
    if workers <= 1 {
        for unit in 0..units.len() {
            run_unit(unit);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let unit = next.fetch_add(1, Ordering::Relaxed);
                    if unit >= units.len() {
                        break;
                    }
                    run_unit(unit);
                });
            }
        });
    }

    let mut perf = FigurePerf::default();
    let mut traces: Vec<RecordedTrace> = Vec::new();
    let mut pmm_traces: Vec<RecordedPmmTrace> = Vec::new();
    let mut obs_traces: Vec<RecordedObsTrace> = Vec::new();
    let mut metrics: Vec<CellMetrics> = Vec::new();
    let mut profile: Option<obs::ProfileReport> = None;
    let mut quarantine: Vec<QuarantinedUnit> = Vec::new();
    let cells = spec
        .cells
        .iter()
        .enumerate()
        .map(|(c, cell)| {
            let mut wall_secs = 0.0;
            // Panicked replications drop out of the per-cell report set and
            // land in the quarantine instead, in cell-major / replication-
            // minor order — deterministic regardless of worker count.
            let mut reports: Vec<RunReport> = Vec::with_capacity(seeds.len());
            for s in 0..seeds.len() {
                match results[c * seeds.len() + s]
                    .get()
                    .expect("all units completed")
                {
                    Ok((report, wall)) => {
                        wall_secs += wall;
                        reports.push(report.clone());
                    }
                    Err(message) => quarantine.push(QuarantinedUnit {
                        cell: c,
                        x: cell.x,
                        policy: cell.policy.clone(),
                        rep: s as u64,
                        seed: seeds[s],
                        message: message.clone(),
                    }),
                }
            }
            if cfg.record_arrivals {
                if let Some(first) = reports.first() {
                    for (class, gaps) in first.arrival_gaps.iter().enumerate() {
                        traces.push(RecordedTrace {
                            cell: c,
                            x: cell.x,
                            policy: cell.policy.clone(),
                            class,
                            gaps: gaps.clone(),
                        });
                    }
                }
            }
            if cfg.record_pmm_decisions {
                // Replication 0 is the canonical recording, mirroring the
                // arrival traces. The points come back out of the unified
                // trace sink, not a side channel; static policies emit no
                // `PolicyDecision` records and are skipped.
                let points: Vec<pmm_core::pmm::TracePoint> = reports
                    .first()
                    .map(|first| {
                        first
                            .obs_trace
                            .iter()
                            .filter_map(|r| match r.event {
                                obs::TraceEvent::PolicyDecision { mode, target_mpl } => {
                                    Some(pmm_core::pmm::TracePoint {
                                        at: r.at,
                                        mode: mode.into(),
                                        target_mpl,
                                    })
                                }
                                _ => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                if !points.is_empty() {
                    pmm_traces.push(RecordedPmmTrace {
                        cell: c,
                        x: cell.x,
                        policy: cell.policy.clone(),
                        points,
                    });
                }
            }
            if cfg.trace && !streaming {
                // Streamed cells wrote their trace bytes to disk as the run
                // progressed; there is no in-memory copy to carry here.
                if let Some(first) = reports.first() {
                    obs_traces.push(RecordedObsTrace {
                        cell: c,
                        x: cell.x,
                        policy: cell.policy.clone(),
                        records: first.obs_trace.clone(),
                    });
                }
            }
            if cfg.trace || cfg.metrics {
                let per_seed: Vec<&obs::MetricsReport> =
                    reports.iter().filter_map(|r| r.metrics.as_ref()).collect();
                metrics.push(CellMetrics {
                    cell: c,
                    x: cell.x,
                    policy: cell.policy.clone(),
                    metrics: obs::MetricsReport::merge(&per_seed),
                });
            }
            for r in &reports {
                if let Some(p) = &r.profile {
                    match &mut profile {
                        Some(acc) => acc.absorb(p),
                        None => profile = Some(p.clone()),
                    }
                }
            }
            perf.cells.push(CellPerf {
                x: cell.x,
                policy: cell.policy.clone(),
                events: reports.iter().map(|r| r.events).sum(),
                wall_secs,
            });
            MergedCell {
                x: cell.x,
                policy: cell.policy.clone(),
                replications: reports.len() as u64,
                served: reports.iter().map(|r| r.served).sum(),
                missed: reports.iter().map(|r| r.missed).sum(),
                miss_pct: summarize(&reports, RunReport::miss_pct),
                avg_mpl: summarize(&reports, |r| r.avg_mpl),
                cpu_util: summarize(&reports, |r| r.cpu_util),
                disk_util: summarize(&reports, |r| r.disk_util),
                waiting: summarize(&reports, |r| r.timings.waiting),
                execution: summarize(&reports, |r| r.timings.execution),
                response: summarize(&reports, |r| r.timings.response),
                avg_fluctuations: summarize(&reports, |r| r.avg_fluctuations),
                windows: merge_windows(&reports),
                tenants: merge_tenants(&reports),
            }
        })
        .collect();

    Ok(FigureResult {
        figure: spec.name,
        x_label: spec.x_label,
        config: cfg,
        cells,
        perf,
        traces,
        pmm_traces,
        obs_traces,
        metrics,
        profile,
        quarantine,
    })
}

/// Recover a human-readable message from a caught panic payload. `panic!`
/// with a format string boxes a `String`; a bare literal boxes `&str`;
/// anything else is opaque.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Serialize a figure's quarantine to the `BENCH_<figure>_quarantine.json`
/// format: one entry per panicked replication, with enough provenance
/// (cell, policy, replication index, seed) to rerun the unit in isolation.
pub fn quarantine_json(result: &FigureResult) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "{{\n  \"figure\": \"{}\",\n  \"paper\": \"conf_sigmod_PangCL94\",\n  \
         \"kind\": \"quarantine\",\n  \"seeds\": {},\n  \"master_seed\": {},\n  \
         \"units\": [\n",
        result.figure, result.config.seeds, result.config.master_seed
    ));
    for (i, u) in result.quarantine.iter().enumerate() {
        out.push_str(&format!("    {{\"cell\":{},\"x\":", u.cell));
        push_f64(&mut out, u.x);
        out.push_str(&format!(
            ",\"policy\":\"{}\",\"rep\":{},\"seed\":{},\"message\":{}}}",
            u.policy,
            u.rep,
            u.seed,
            json_string(&u.message)
        ));
        out.push_str(if i + 1 < result.quarantine.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal JSON string escaping for panic messages (quotes, backslashes,
/// control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize the perf trajectory of one driver invocation to the
/// `BENCH_perf.json` format. Unlike `BENCH_<figure>.json` this output
/// contains wall-clock readings, so it varies by machine and run — CI
/// archives it as a trajectory artifact but never diffs it byte-for-byte.
pub fn perf_json(cfg: &DriverConfig, figures: &[(String, FigurePerf)]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "{{\n  \"paper\": \"conf_sigmod_PangCL94\",\n  \"kind\": \"perf\",\n  \
         \"note\": \"wall-clock perf trajectory; machine-dependent, never \
         diffed for byte-identity\",\n  \"seeds\": {},\n  \"master_seed\": {},\n  \
         \"threads\": {},\n  \"sim_secs\": ",
        cfg.seeds, cfg.master_seed, cfg.threads
    ));
    push_f64(&mut out, cfg.secs);
    out.push_str(",\n  \"figures\": [\n");
    for (i, (name, perf)) in figures.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"figure\":\"{name}\",\"events\":{},\"wall_secs\":",
            perf.events()
        ));
        push_f64(&mut out, perf.wall_secs());
        out.push_str(",\"events_per_sec\":");
        push_f64(&mut out, perf.events_per_sec());
        out.push_str(",\"cells\":[");
        for (j, c) in perf.cells.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"x\":{:?},\"policy\":\"{}\",\"events\":{},\"wall_secs\":",
                c.x, c.policy, c.events
            ));
            push_f64(&mut out, c.wall_secs);
            out.push_str(",\"events_per_sec\":");
            push_f64(&mut out, c.events_per_sec());
            out.push('}');
        }
        out.push_str("]}");
        if i + 1 < figures.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serialize one figure's merged metrics registries to the
/// `BENCH_<figure>_metrics.json` format. Like the figure JSON this is a
/// pure function of the seed-order merge: thread count and wall-clock time
/// never appear, so runs with different parallelism are byte-identical.
pub fn metrics_json(result: &FigureResult) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\n  \"figure\": \"{}\",\n  \"paper\": \"conf_sigmod_PangCL94\",\n  \
         \"kind\": \"metrics\",\n  \"seeds\": {},\n  \"master_seed\": {},\n  \
         \"sim_secs\": ",
        result.figure, result.config.seeds, result.config.master_seed
    ));
    push_f64(&mut out, result.config.secs);
    out.push_str(",\n  \"cells\": [\n");
    for (i, cm) in result.metrics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cell\":{},\"x\":{:?},\"policy\":\"{}\",\"counters\":{{",
            cm.cell, cm.x, cm.policy
        ));
        for (j, (name, total)) in cm.metrics.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{total}"));
        }
        out.push_str("},\"gauges\":{");
        for (j, (name, value)) in cm.metrics.gauges.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":"));
            push_f64(&mut out, *value);
        }
        out.push_str("},\"histograms\":[");
        for (j, h) in cm.metrics.hists.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{}\",\"bounds\":[", h.name));
            for (k, b) in h.bounds.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                push_f64(&mut out, *b);
            }
            out.push_str("],\"counts\":[");
            for (k, c) in h.counts.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        out.push(']');
        // Label families ride only in multi-tenant cells, so single-tenant
        // metrics JSON keeps its established byte-exact shape.
        if !cm.metrics.counter_families.is_empty()
            || !cm.metrics.gauge_families.is_empty()
        {
            out.push_str(",\"families\":[");
            let mut first = true;
            for (name, values) in &cm.metrics.counter_families {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"kind\":\"counter\",\"values\":["
                ));
                for (k, v) in values.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&v.to_string());
                }
                out.push_str("]}");
            }
            for (name, values) in &cm.metrics.gauge_families {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"kind\":\"gauge\",\"values\":["
                ));
                for (k, v) in values.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    push_f64(&mut out, *v);
                }
                out.push_str("]}");
            }
            out.push(']');
        }
        out.push_str(",\"windows\":[");
        for (j, w) in cm.metrics.windows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"t_secs\":{:?},\"deltas\":[", w.t_secs));
            for (k, d) in w.deltas.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&d.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        if i + 1 < result.metrics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serialize the self-profile of one driver invocation to the
/// `BENCH_profile.json` format. Like `BENCH_perf.json` this carries
/// wall-clock readings — machine-dependent, archived as a trajectory
/// artifact but never diffed for byte-identity.
pub fn profile_json(
    cfg: &DriverConfig,
    figures: &[(String, obs::ProfileReport)],
) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "{{\n  \"paper\": \"conf_sigmod_PangCL94\",\n  \"kind\": \"profile\",\n  \
         \"note\": \"wall-clock self-profile per engine subsystem; \
         machine-dependent, never diffed for byte-identity\",\n  \
         \"seeds\": {},\n  \"master_seed\": {},\n  \"threads\": {},\n  \
         \"sim_secs\": ",
        cfg.seeds, cfg.master_seed, cfg.threads
    ));
    push_f64(&mut out, cfg.secs);
    out.push_str(",\n  \"figures\": [\n");
    for (i, (name, report)) in figures.iter().enumerate() {
        out.push_str(&format!("    {{\"figure\":\"{name}\",\"sections\":["));
        for (j, s) in report.sections.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{}\",\"wall_secs\":", s.name));
            push_f64(&mut out, s.wall_secs);
            out.push_str(&format!(",\"calls\":{}}}", s.calls));
        }
        out.push_str("]}");
        if i + 1 < figures.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

// --- JSON emission (hand-rolled: no registry access, so no serde) ---------

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is shortest-roundtrip formatting: deterministic and exact.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn push_summary(out: &mut String, name: &str, m: MetricSummary) {
    out.push_str(&format!("\"{name}\":{{\"mean\":"));
    push_f64(out, m.mean);
    out.push_str(",\"ci90\":");
    match m.ci90 {
        Some(hw) => push_f64(out, hw),
        None => out.push_str("null"),
    }
    out.push('}');
}

impl FigureResult {
    /// Serialize to the machine-readable `BENCH_<figure>.json` format.
    ///
    /// The output is a pure function of the merged statistics — thread count
    /// and wall-clock time are deliberately excluded so that runs with
    /// different parallelism are byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\n  \"figure\": \"{}\",\n  \"paper\": \"conf_sigmod_PangCL94\",\n  \
             \"x_label\": \"{}\",\n  \"seeds\": {},\n  \"master_seed\": {},\n  \
             \"sim_secs\": ",
            self.figure, self.x_label, self.config.seeds, self.config.master_seed
        ));
        push_f64(&mut out, self.config.secs);
        out.push_str(",\n  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"x\":{:?},\"policy\":\"{}\",\"replications\":{},\
                 \"served\":{},\"missed\":{},",
                cell.x, cell.policy, cell.replications, cell.served, cell.missed
            ));
            push_summary(&mut out, "miss_pct", cell.miss_pct);
            out.push(',');
            push_summary(&mut out, "avg_mpl", cell.avg_mpl);
            out.push(',');
            push_summary(&mut out, "cpu_util", cell.cpu_util);
            out.push(',');
            push_summary(&mut out, "disk_util", cell.disk_util);
            out.push(',');
            push_summary(&mut out, "waiting_secs", cell.waiting);
            out.push(',');
            push_summary(&mut out, "execution_secs", cell.execution);
            out.push(',');
            push_summary(&mut out, "response_secs", cell.response);
            out.push(',');
            push_summary(&mut out, "avg_fluctuations", cell.avg_fluctuations);
            out.push_str(",\"windows\":[");
            for (j, w) in cell.windows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"t_secs\":{:?},\"replications\":{},\"served\":{},\
                     \"missed\":{},",
                    w.t_secs, w.replications, w.served, w.missed
                ));
                push_summary(&mut out, "miss_pct", w.miss_pct);
                out.push('}');
            }
            out.push(']');
            // Per-tenant aggregates: emitted only for multi-tenant cells,
            // so single-tenant figures keep their pre-v2 JSON shape.
            if !cell.tenants.is_empty() {
                out.push_str(",\"tenants\":[");
                for (j, t) in cell.tenants.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"quota_pages\":{},\"soft\":{},\
                         \"served\":{},\"missed\":{},",
                        t.name, t.quota_pages, t.soft, t.served, t.missed
                    ));
                    push_summary(&mut out, "miss_pct", t.miss_pct);
                    out.push(',');
                    push_summary(&mut out, "avg_mpl", t.avg_mpl);
                    out.push(',');
                    push_summary(&mut out, "quota_utilization", t.quota_utilization);
                    out.push(',');
                    push_summary(&mut out, "borrowed_pages", t.borrowed_pages);
                    out.push('}');
                }
                out.push(']');
            }
            out.push('}');
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render the merged miss-ratio table for terminal output.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} · {} seeds × {:.0} sim-secs (miss % ± 90% CI) ==",
            self.figure, self.config.seeds, self.config.secs
        );
        let _ = writeln!(
            out,
            "{:>10} {:>14} {:>10} {:>10} {:>8} {:>8}",
            "x", "policy", "miss %", "±ci90", "MPL", "disk %"
        );
        for c in &self.cells {
            let ci = c
                .miss_pct
                .ci90
                .map_or("-".to_string(), |h| format!("{h:.2}"));
            let _ = writeln!(
                out,
                "{:>10.3} {:>14} {:>10.2} {:>10} {:>8.2} {:>8.1}",
                c.x,
                c.policy,
                c.miss_pct.mean,
                ci,
                c.avg_mpl.mean,
                100.0 * c.disk_util.mean
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_spec_knows_all_figures() {
        for f in FIGURES {
            let spec = figure_spec(f).expect("known figure");
            assert!(!spec.cells.is_empty(), "{f} has cells");
        }
        assert!(figure_spec("fig99").is_err());
    }

    #[test]
    fn devices_figure_crosses_devices_evictions_and_policies() {
        let spec = figure_spec("devices").expect("known figure");
        assert_eq!(
            spec.cells.len(),
            crate::DEVICE_RATES.len()
                * crate::DEVICE_COMBOS.len()
                * crate::DEVICE_POLICIES.len()
        );
        // Every cell name splits back into a device, an eviction policy,
        // and a known allocation policy.
        for cell in &spec.cells {
            let (_, _, p) =
                crate::split_device_cell(&cell.policy).expect("device cell name");
            assert!(crate::DEVICE_POLICIES.contains(&p), "known policy {p}");
        }
        // The acceptance grid is present: cylinder vs SSD × LRU vs LRU-K.
        for combo in crate::DEVICE_COMBOS {
            assert!(
                spec.cells.iter().any(|c| c.policy.starts_with(combo)),
                "combo {combo} covered"
            );
        }
    }

    #[test]
    fn run_figure_validates_cells_before_spawning() {
        // All shipped figures pass validation with sane driver settings...
        for f in FIGURES {
            let spec = figure_spec(f).expect("known figure");
            for cell in &spec.cells {
                let mut sim = cell_config(spec.name, cell.x);
                sim.duration_secs = 600.0;
                let (sim, _) = crate::apply_device_cell(sim, &cell.policy);
                sim.validate().expect("shipped cells validate");
            }
        }
        // ...and a degenerate duration is rejected up front, not mid-run.
        let cfg = DriverConfig {
            seeds: 1,
            secs: 0.0,
            ..DriverConfig::default()
        };
        let err = run_figure("fig3", cfg).expect_err("zero duration rejected");
        assert!(err.contains("invalid config"), "got: {err}");
    }

    #[test]
    fn t_quantile_small_sample_widths() {
        assert!(
            t_quantile_90(0).is_nan(),
            "no interval from one replication"
        );
        assert!(
            (t_quantile_90(7) - 1.895).abs() < 1e-9,
            "default 8 seeds → 7 df"
        );
        assert!((t_quantile_90(30) - 1.697).abs() < 1e-9);
        // Cornish–Fisher tail: t_{0.95,40} ≈ 1.684, and large df → z.
        assert!((t_quantile_90(40) - 1.684).abs() < 2e-3);
        assert!((t_quantile_90(100_000) - 1.645).abs() < 1e-4);
        // Monotone non-increasing in df.
        for df in 1..100 {
            assert!(t_quantile_90(df) >= t_quantile_90(df + 1));
        }
    }

    #[test]
    fn replication_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..16).map(|r| replication_seed(1994, r)).collect();
        let b: Vec<u64> = (0..16).map(|r| replication_seed(1994, r)).collect();
        assert_eq!(a, b, "seed derivation must be stable");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "replication seeds must be distinct");
        assert_ne!(replication_seed(1, 0), replication_seed(2, 0));
    }

    #[test]
    fn merge_windows_handles_ragged_series() {
        let mk = |windows: Vec<(f64, u64, u64)>| RunReport {
            windows: windows
                .into_iter()
                .map(|(t, served, missed)| pmm_core::rtdbs::WindowPoint {
                    t_secs: t,
                    served,
                    missed,
                })
                .collect(),
            ..RunReport::default()
        };
        // Second replication lacks the final window.
        let reports = [
            mk(vec![(100.0, 10, 5), (200.0, 10, 0), (300.0, 4, 2)]),
            mk(vec![(100.0, 10, 0), (200.0, 10, 10)]),
        ];
        let merged = merge_windows(&reports);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].replications, 2);
        assert_eq!(merged[0].served, 20);
        assert_eq!(merged[0].missed, 5);
        assert!((merged[0].miss_pct.mean - 25.0).abs() < 1e-12);
        assert!(merged[0].miss_pct.ci90.is_some(), "two replications → CI");
        assert!((merged[1].miss_pct.mean - 50.0).abs() < 1e-12);
        assert_eq!(merged[2].replications, 1);
        assert!(merged[2].miss_pct.ci90.is_none(), "one replication → no CI");
        assert!(merge_windows(&[]).is_empty());
    }

    #[test]
    fn fig12_json_carries_merged_windows() {
        let cfg = DriverConfig {
            seeds: 2,
            threads: 2,
            secs: 600.0,
            master_seed: 9,
            ..DriverConfig::default()
        };
        let r = run_figure("fig12", cfg).expect("fig12 runs");
        assert!(
            r.cells.iter().all(|c| !c.windows.is_empty()),
            "every cell carries its windowed series"
        );
        let json = r.to_json();
        assert!(
            json.contains("\"windows\":[{\"t_secs\":"),
            "windows serialized: {json}"
        );
    }

    #[test]
    fn pmm_decision_traces_are_recorded_on_request() {
        // Off by default: the merged JSON keeps dropping the Figure 15
        // series unless the caller opts in.
        assert!(!DriverConfig::default().record_pmm_decisions);
        let cfg = DriverConfig {
            seeds: 1,
            threads: 1,
            secs: 1_500.0,
            master_seed: 1994,
            record_pmm_decisions: true,
            ..DriverConfig::default()
        };
        let r = run_figure("fig12", cfg.clone()).expect("fig12 runs");
        assert_eq!(
            r.pmm_traces.len(),
            1,
            "exactly the PMM cell produces decisions; static baselines trace \
             nothing"
        );
        let t = &r.pmm_traces[0];
        assert_eq!(t.policy, "PMM");
        assert_eq!(
            t.cell, 2,
            "fig12's canonical cell order is Max, MinMax, PMM"
        );
        assert!(!t.points.is_empty(), "decision trace carries points");
        for w in t.points.windows(2) {
            assert!(w[0].at <= w[1].at, "decisions are in simulation order");
        }
        // The recording is metric-only: the merged cells are byte-identical
        // to a run without it.
        let off = DriverConfig {
            record_pmm_decisions: false,
            ..cfg
        };
        let plain = run_figure("fig12", off).expect("rerun");
        assert!(plain.pmm_traces.is_empty());
        assert_eq!(plain.to_json(), r.to_json());
    }

    #[test]
    fn structured_traces_and_metrics_ride_along() {
        let cfg = DriverConfig {
            seeds: 2,
            threads: 1,
            secs: 300.0,
            master_seed: 1994,
            trace: true,
            profile: true,
            ..DriverConfig::default()
        };
        let r = run_figure("fig12", cfg.clone()).expect("fig12 runs");
        assert_eq!(r.obs_traces.len(), 3, "one structured trace per cell");
        assert!(r.obs_traces.iter().all(|t| !t.records.is_empty()));
        assert_eq!(r.metrics.len(), 3, "one merged registry per cell");
        for cm in &r.metrics {
            assert!(
                cm.metrics
                    .counters
                    .iter()
                    .any(|(n, v)| n == "engine.arrivals" && *v > 0),
                "merged registry counts arrivals"
            );
        }
        let prof = r.profile.as_ref().expect("profiling enabled");
        assert!(
            prof.sections
                .iter()
                .any(|s| s.name == "dispatch" && s.calls > 0),
            "dispatch section attributed"
        );
        let mjson = metrics_json(&r);
        assert!(mjson.contains("\"kind\": \"metrics\""));
        assert!(mjson.contains("\"engine.arrivals\""));
        assert_eq!(mjson.matches('{').count(), mjson.matches('}').count());
        // Observability is metric-only: the merged figure JSON is
        // unaffected, and everything stays empty when it is off.
        let off = DriverConfig {
            trace: false,
            profile: false,
            ..cfg.clone()
        };
        let plain = run_figure("fig12", off).expect("rerun");
        assert!(plain.obs_traces.is_empty());
        assert!(plain.metrics.is_empty());
        assert!(plain.profile.is_none());
        assert_eq!(plain.to_json(), r.to_json());
        let pjson = profile_json(&cfg, &[("fig12".to_string(), prof.clone())]);
        assert!(pjson.contains("\"kind\": \"profile\""));
        assert!(pjson.contains("\"name\":\"dispatch\""));
        assert_eq!(pjson.matches('{').count(), pjson.matches('}').count());
    }

    #[test]
    fn metrics_flag_collects_registries_without_tracing() {
        // The long-horizon configuration: `--metrics` alone produces the
        // same merged registries `--trace` would, with no record-level
        // trace buffered anywhere.
        assert!(!DriverConfig::default().metrics);
        let cfg = DriverConfig {
            seeds: 2,
            threads: 1,
            secs: 300.0,
            master_seed: 1994,
            metrics: true,
            ..DriverConfig::default()
        };
        let r = run_figure("fig12", cfg.clone()).expect("fig12 runs");
        assert!(r.obs_traces.is_empty(), "no trace is recorded");
        assert_eq!(r.metrics.len(), 3, "one merged registry per cell");
        assert!(metrics_json(&r).contains("\"engine.arrivals\""));
        // The registries are byte-identical to a traced run's: tracing is
        // observation, not perturbation.
        let traced = run_figure(
            "fig12",
            DriverConfig {
                trace: true,
                ..cfg.clone()
            },
        )
        .expect("traced rerun");
        assert_eq!(metrics_json(&r), metrics_json(&traced));
        // Metric-only, like every other observability knob: the merged
        // figure JSON is unaffected.
        let plain = run_figure(
            "fig12",
            DriverConfig {
                metrics: false,
                ..cfg
            },
        )
        .expect("plain rerun");
        assert!(plain.metrics.is_empty());
        assert_eq!(plain.to_json(), r.to_json());
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let cfg = DriverConfig {
            seeds: 2,
            threads: 1,
            secs: 150.0,
            master_seed: 7,
            ..DriverConfig::default()
        };
        let r = run_figure("fig11", cfg.clone()).expect("fig11 runs");
        let json = r.to_json();
        assert_eq!(json, run_figure("fig11", cfg).expect("rerun").to_json());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"figure\": \"fig11\""));
        assert!(json.contains("\"miss_pct\""));
        // Balanced braces ⇒ at least structurally JSON-shaped.
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
    }
}
