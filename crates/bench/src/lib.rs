//! `bench` — the experiment harness: one reproducible experiment per table
//! and figure of the paper's Section 5.
//!
//! Each `fig*` / `table*` function runs the simulations behind the
//! corresponding artifact and returns structured rows; the `experiments`
//! binary prints them in the paper's layout, and the Criterion benches time
//! representative slices.
//!
//! Scaling note: wall-clock cost grows with simulated duration, so every
//! experiment takes a `secs` parameter. Passing `PAPER_SECS` (10 simulated
//! hours, the paper's setting) reproduces the published measurement
//! protocol; the CI-friendly default in the binary is one simulated hour.

use pmm_core::pmm::TenantPmm;
use pmm_core::prelude::*;

pub mod driver;

/// The paper's run length: 10 simulated hours.
pub const PAPER_SECS: f64 = 36_000.0;

/// Construct a policy by short name.
///
/// # Panics
/// Panics on an unknown name.
pub fn make_policy(name: &str) -> Box<dyn MemoryPolicy> {
    if let Some(n) = name.strip_prefix("MinMax-") {
        return Box::new(pmm_core::pmm::MinMaxPolicy::with_limit(
            n.parse().expect("numeric MinMax limit"),
        ));
    }
    if let Some(n) = name.strip_prefix("Proportional-") {
        return Box::new(pmm_core::pmm::ProportionalPolicy::with_limit(
            n.parse().expect("numeric Proportional limit"),
        ));
    }
    match name {
        "Max" => Box::new(MaxPolicy),
        "MinMax" => Box::new(pmm_core::pmm::MinMaxPolicy::unlimited()),
        "Proportional" => Box::new(ProportionalPolicy::unlimited()),
        "PMM" => Box::new(Pmm::with_defaults()),
        "PMM-regime" => Box::new(Pmm::regime_aware()),
        "panic" => Box::new(PanicPolicy),
        other => panic!("unknown policy {other}"),
    }
}

/// A deliberately crashing policy: its first allocation panics. Exists only
/// for the hidden `crashtest` figure, which proves the driver quarantines a
/// panicking replication instead of losing the whole sweep.
pub struct PanicPolicy;

impl MemoryPolicy for PanicPolicy {
    fn name(&self) -> String {
        "panic".into()
    }

    fn allocate_into(
        &mut self,
        _snapshot: &pmm_core::pmm::SystemSnapshot,
        _scratch: &mut pmm_core::pmm::AllocScratch,
        _out: &mut pmm_core::pmm::Grants,
    ) {
        panic!("deliberate crashtest panic");
    }

    fn mode(&self) -> StrategyMode {
        StrategyMode::MinMax
    }

    fn trace(&self) -> &[pmm_core::pmm::TracePoint] {
        &[]
    }
}

/// Construct a policy by short name, resolving the tenant-aware names
/// against `cfg.tenants`: `"Partitioned"` enforces the config's quotas as
/// declared (hard unless the spec says otherwise), `"Partitioned-soft"`
/// lets every partition borrow idle pages, and `"PMM-tenant"` /
/// `"PMM-tenant-regime"` run one (optionally regime-aware) PMM controller
/// per partition (PMM v2). Device-sweep cell names
/// (`"<combo>/<policy>"`, see [`split_device_cell`]) resolve to their
/// inner allocation policy — the device part only shapes the config —
/// and `"snapshot/<policy>"` cells wrap the inner policy in
/// [`SnapshotOnly`], pinning it to the full-snapshot allocation
/// path (see [`split_snapshot_cell`]). All other names defer to
/// [`make_policy`].
///
/// # Panics
/// Panics on an unknown name, or a tenant-aware name against a config
/// with no tenants.
pub fn make_policy_for(cfg: &SimConfig, name: &str) -> Box<dyn MemoryPolicy> {
    if let Some((_, _, policy)) = split_device_cell(name) {
        return make_policy_for(cfg, policy);
    }
    if let Some((_, policy)) = split_fault_cell(name) {
        return make_policy_for(cfg, policy);
    }
    if let Some(policy) = split_snapshot_cell(name) {
        return Box::new(SnapshotOnly::new(make_policy_for(cfg, policy)));
    }
    let partitions = || -> Vec<PartitionSpec> {
        assert!(
            !cfg.tenants.is_empty(),
            "policy {name} needs tenants in the SimConfig"
        );
        cfg.tenants
            .iter()
            .map(|t| PartitionSpec {
                quota: t.quota_pages,
                soft: t.soft,
            })
            .collect()
    };
    match name {
        "Partitioned" => Box::new(PartitionedPolicy::new(partitions())),
        "Partitioned-soft" => Box::new(PartitionedPolicy::new(partitions()).soften()),
        "PMM-tenant" => Box::new(TenantPmm::new(partitions())),
        "PMM-tenant-regime" => Box::new(TenantPmm::new(partitions()).regime_aware()),
        other => make_policy(other),
    }
}

/// One row of a sweep: an x value plus one report per policy.
pub struct SweepRow {
    /// The swept parameter (arrival rate, N, ...).
    pub x: f64,
    /// `(policy name, report)` pairs.
    pub reports: Vec<(String, RunReport)>,
}

fn sweep<F: Fn(f64) -> SimConfig>(
    xs: &[f64],
    policies: &[&str],
    secs: f64,
    cfg_of: F,
) -> Vec<SweepRow> {
    xs.iter()
        .map(|&x| SweepRow {
            x,
            reports: policies
                .iter()
                .map(|&p| {
                    let mut cfg = cfg_of(x);
                    cfg.duration_secs = secs;
                    (p.to_string(), run_simulation(cfg, make_policy(p)))
                })
                .collect(),
        })
        .collect()
}

/// Arrival rates of the baseline sweep (Figures 3–5, Table 7).
pub const BASELINE_RATES: [f64; 5] = [0.04, 0.05, 0.06, 0.07, 0.08];
/// The four algorithms of the baseline experiment.
pub const BASELINE_POLICIES: [&str; 4] = ["Max", "MinMax", "Proportional", "PMM"];
/// MinMax memory limits of the Figure 11 sweep.
pub const FIG11_LIMITS: [u32; 8] = [2, 3, 4, 6, 8, 10, 15, 20];
/// Arrival rates of the external-sort sweep (Figure 16).
pub const SORT_RATES: [f64; 5] = [0.04, 0.06, 0.08, 0.10, 0.12];
/// Small-class arrival rates of the multiclass sweep (Figures 17–18).
pub const MULTICLASS_SMALL_RATES: [f64; 5] = [0.0, 0.2, 0.4, 0.8, 1.2];
/// Window length (simulated seconds) of the workload-changes miss-ratio
/// time series (Figures 12–14).
pub const CHANGES_WINDOW_SECS: f64 = 2_400.0;
/// MMPP burst ratios of the bursty-arrivals sweep (1 = the Poisson
/// control cell).
pub const BURST_RATIOS: [f64; 4] = [1.0, 4.0, 8.0, 16.0];
/// The policies of the bursty-arrivals experiment: the static baselines,
/// v1 PMM (stationary projection), and the regime-aware v2 variant that
/// segments its learned batches at detected MMPP state switches.
pub const BURST_POLICIES: [&str; 4] = ["Max", "MinMax", "PMM", "PMM-regime"];
/// Arrival rates of the device sweep: one below and one above the
/// cylinder disk's saturation knee, so the SSD's headroom is visible.
pub const DEVICE_RATES: [f64; 2] = [0.05, 0.07];
/// Device × eviction combinations of the device sweep.
pub const DEVICE_COMBOS: [&str; 4] = ["cyl+lru", "cyl+lruk", "ssd+lru", "ssd+lruk"];
/// The allocation policies crossed with each device combination.
pub const DEVICE_POLICIES: [&str; 3] = ["Max", "MinMax", "PMM"];
/// History depth of the LRU-K cells in the device sweep (LRU-2, the
/// classic O'Neil et al. setting).
pub const DEVICE_LRUK_K: u32 = 2;

/// Split a device-sweep cell name `"<combo>/<policy>"` (e.g.
/// `"ssd+lruk/PMM"`) into its device, eviction policy, and allocation
/// policy name. Returns `None` for plain policy names, which keeps every
/// other figure's cells flowing through untouched.
pub fn split_device_cell(name: &str) -> Option<(DeviceSpec, EvictionSpec, &str)> {
    let (combo, policy) = name.split_once('/')?;
    let (device, eviction) = combo.split_once('+')?;
    let device = match device {
        "cyl" => DeviceSpec::Cylinder,
        "ssd" => DeviceSpec::Ssd(SsdSpec::default()),
        _ => return None,
    };
    let eviction = match eviction {
        "lru" => EvictionSpec::Lru,
        "lruk" => EvictionSpec::LruK { k: DEVICE_LRUK_K },
        _ => return None,
    };
    Some((device, eviction, policy))
}

/// Apply a device-sweep cell name to a config: returns the config with the
/// cell's device and eviction policy installed, plus the allocation-policy
/// name left over. Non-device names pass through as the identity.
pub fn apply_device_cell(cfg: SimConfig, name: &str) -> (SimConfig, String) {
    match split_device_cell(name) {
        Some((device, eviction, policy)) => (
            cfg.with_device(device).with_eviction(eviction),
            policy.to_string(),
        ),
        None => (cfg, name.to_string()),
    }
}

/// Fault intensities of the faults sweep: the empty-plan control cell plus
/// a half- and a full-strength storm (see `FaultPlan::scaled`).
pub const FAULT_INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];
/// Degradation-mode × allocation-policy cells of the faults sweep.
pub const FAULT_POLICIES: [&str; 4] =
    ["abort/MinMax", "requeue/MinMax", "abort/PMM", "requeue/PMM"];

/// Split a faults-sweep cell name `"<mode>/<policy>"` (e.g.
/// `"requeue/PMM"`) into its degradation mode and allocation-policy name.
/// Returns `None` for plain policy names and for device cells (their combo
/// part is never a mode name), so every other figure's cells pass through
/// untouched.
pub fn split_fault_cell(name: &str) -> Option<(DegradationMode, &str)> {
    let (mode, policy) = name.split_once('/')?;
    let mode = match mode {
        "abort" => DegradationMode::Abort,
        "requeue" => DegradationMode::Requeue,
        _ => return None,
    };
    Some((mode, policy))
}

/// Apply a faults-sweep cell name to a config: installs the cell's
/// degradation mode as the plan's default and returns the allocation-policy
/// name left over. Non-fault names pass through as the identity.
pub fn apply_fault_cell(mut cfg: SimConfig, name: &str) -> (SimConfig, String) {
    match split_fault_cell(name) {
        Some((mode, policy)) => {
            cfg.faults.default_mode = mode;
            (cfg, policy.to_string())
        }
        None => (cfg, name.to_string()),
    }
}

/// Tenant counts of the scale figure's 10¹ → 10³ sweep.
pub const SCALE_TENANTS: [usize; 3] = [10, 100, 1000];
/// The policies of the scale figure: incremental dirty-set allocation,
/// the same policy pinned to the full-snapshot reference path (the
/// `snapshot/` control arm), and the adaptive per-tenant controllers.
pub const SCALE_POLICIES: [&str; 3] = [
    "Partitioned-soft",
    "snapshot/Partitioned-soft",
    "PMM-tenant",
];

/// Split a scale-figure cell name `"snapshot/<policy>"` into the wrapped
/// allocation-policy name. The `snapshot/` prefix pins the policy to the
/// full-snapshot reference allocation path (`pmm::SnapshotOnly`) — the
/// control arm of the incremental-reallocation comparison. Returns `None`
/// for every other name, including device (`ssd+lruk/…`) and fault
/// (`requeue/…`) cells.
pub fn split_snapshot_cell(name: &str) -> Option<&str> {
    name.strip_prefix("snapshot/")
}

/// Analytics-tenant memory fractions of the multi-tenant sweep.
pub const TENANT_FRACTIONS: [f64; 3] = [0.25, 0.5, 0.75];
/// The policies of the multi-tenant experiment: a shared pool as the
/// no-isolation control, hard quotas, soft quotas with borrow-back, and
/// the adaptive per-tenant PMM controllers of v2.
pub const TENANT_POLICIES: [&str; 4] =
    ["MinMax", "Partitioned", "Partitioned-soft", "PMM-tenant"];

/// Figures 3, 4, 5 and Table 7 share one set of runs: the Section 5.1
/// baseline sweep (memory is the bottleneck; 10 disks).
pub fn baseline_sweep(secs: f64) -> Vec<SweepRow> {
    sweep(
        &BASELINE_RATES,
        &BASELINE_POLICIES,
        secs,
        SimConfig::baseline,
    )
}

/// Figure 6: PMM's target-MPL trace at λ = 0.075.
pub fn fig6(secs: f64) -> RunReport {
    let mut cfg = SimConfig::baseline(0.075);
    cfg.duration_secs = secs;
    run_simulation(cfg, make_policy("PMM"))
}

/// Figures 8, 9, 10: the moderate-disk-contention sweep (6 disks), adding
/// the MinMax-N reference that performs best there.
pub fn contention_sweep(secs: f64, best_n: u32) -> Vec<SweepRow> {
    let best = format!("MinMax-{best_n}");
    let policies: Vec<&str> = vec!["Max", "MinMax", "PMM", &best];
    sweep(&BASELINE_RATES, &policies, secs, SimConfig::disk_contention)
}

/// Figure 11: miss ratio of MinMax-N against N at λ = 0.07, 6 disks.
pub fn fig11(secs: f64, ns: &[u32]) -> Vec<(u32, RunReport)> {
    ns.iter()
        .map(|&n| {
            let mut cfg = SimConfig::disk_contention(0.07);
            cfg.duration_secs = secs;
            (n, run_simulation(cfg, make_policy(&format!("MinMax-{n}"))))
        })
        .collect()
}

/// Figures 12–15: the alternating Small/Medium workload (Section 5.3).
/// Returns `(policy, report)` for Max, MinMax and PMM; the report's
/// `windows` field is the miss-ratio time series and `trace` the PMM MPL
/// trace (Figure 15).
pub fn workload_changes(secs: Option<f64>) -> Vec<(String, RunReport)> {
    ["Max", "MinMax", "PMM"]
        .iter()
        .map(|&p| {
            let mut cfg = SimConfig::workload_changes();
            if let Some(s) = secs {
                cfg.duration_secs = s;
            }
            cfg.window_secs = CHANGES_WINDOW_SECS;
            (p.to_string(), run_simulation(cfg, make_policy(p)))
        })
        .collect()
}

/// Figure 16: the external-sort workload sweep (Section 5.5).
pub fn fig16(secs: f64) -> Vec<SweepRow> {
    sweep(&SORT_RATES, &BASELINE_POLICIES, secs, SimConfig::sorts)
}

/// Figures 17 and 18: the multiclass experiment (Section 5.6) — Medium
/// fixed at λ = 0.065, Small swept; 12 disks.
pub fn multiclass_sweep(secs: f64) -> Vec<SweepRow> {
    sweep(
        &MULTICLASS_SMALL_RATES,
        &["Max", "MinMax", "PMM"],
        secs,
        SimConfig::multiclass,
    )
}

/// Section 5.4: PMM sensitivity to `UtilLow`.
pub fn util_low_sensitivity(secs: f64) -> Vec<(f64, RunReport)> {
    [0.50, 0.60, 0.70, 0.80]
        .iter()
        .map(|&ul| {
            let mut cfg = SimConfig::baseline(0.07);
            cfg.duration_secs = secs;
            let params = PmmParams {
                util_low: ul,
                ..PmmParams::default()
            };
            (ul, run_simulation(cfg, Box::new(Pmm::new(params))))
        })
        .collect()
}

/// Section 5.7: the scale-down check — disk-contention setup at ×0.1 sizes
/// and ×10 rates must show the same algorithm ordering.
pub fn scale_check(secs: f64) -> Vec<(String, RunReport, RunReport)> {
    ["Max", "MinMax", "PMM"]
        .iter()
        .map(|&p| {
            let mut full = SimConfig::disk_contention(0.05);
            full.duration_secs = secs;
            let mut small = SimConfig::scaled_down(0.05);
            small.duration_secs = secs / 5.0; // 10× rate needs less time
            (
                p.to_string(),
                run_simulation(full, make_policy(p)),
                run_simulation(small, make_policy(p)),
            )
        })
        .collect()
}

/// Ablation: PMM with a cubic (instead of quadratic) projection is not
/// modelled as a separate policy — the quadratic-vs-cubic stabilization
/// claim is exercised directly on synthetic curves in `stats`; this ablation
/// instead compares PMM against PMM-without-RU... kept simple: firm vs
/// soft deadlines (the run-to-completion ablation flagged in DESIGN.md).
pub fn ablation_firm_deadlines(secs: f64) -> Vec<(bool, RunReport)> {
    [true, false]
        .iter()
        .map(|&firm| {
            let mut cfg = SimConfig::baseline(0.06);
            cfg.duration_secs = secs;
            cfg.firm_deadlines = firm;
            (firm, run_simulation(cfg, make_policy("PMM")))
        })
        .collect()
}

/// Render a sweep as a fixed-width table of one metric.
pub fn render_sweep<M: Fn(&RunReport) -> f64>(
    title: &str,
    x_label: &str,
    rows: &[SweepRow],
    metric: M,
    unit: &str,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let names: Vec<&str> = rows
        .first()
        .map(|r| r.reports.iter().map(|(n, _)| n.as_str()).collect())
        .unwrap_or_default();
    let _ = write!(out, "{x_label:>10}");
    for n in &names {
        let _ = write!(out, " {n:>14}");
    }
    let _ = writeln!(out, "   ({unit})");
    for row in rows {
        let _ = write!(out, "{:>10.3}", row.x);
        for (_, report) in &row.reports {
            let _ = write!(out, " {:>14.2}", metric(report));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_policy_parses_names() {
        assert_eq!(make_policy("Max").name(), "Max");
        assert_eq!(make_policy("MinMax").name(), "MinMax");
        assert_eq!(make_policy("MinMax-10").name(), "MinMax-10");
        assert_eq!(make_policy("Proportional-5").name(), "Proportional-5");
        assert_eq!(make_policy("PMM").name(), "PMM");
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn make_policy_rejects_garbage() {
        make_policy("Random");
    }

    #[test]
    fn make_policy_for_builds_partitions_from_tenants() {
        let cfg = SimConfig::multi_tenant(0.5);
        assert_eq!(make_policy_for(&cfg, "Partitioned").name(), "Partitioned");
        assert_eq!(
            make_policy_for(&cfg, "Partitioned-soft").name(),
            "Partitioned-soft"
        );
        // Non-partitioned names defer to make_policy even with tenants set.
        assert_eq!(make_policy_for(&cfg, "PMM").name(), "PMM");
    }

    #[test]
    #[should_panic(expected = "needs tenants")]
    fn make_policy_for_rejects_partitioned_without_tenants() {
        make_policy_for(&SimConfig::baseline(0.05), "Partitioned");
    }

    #[test]
    fn device_cell_names_round_trip() {
        use pmm_core::storage::{DeviceSpec, EvictionSpec};
        let (dev, ev, p) = split_device_cell("ssd+lruk/PMM").expect("device cell");
        assert!(matches!(dev, DeviceSpec::Ssd(_)));
        assert_eq!(ev, EvictionSpec::LruK { k: DEVICE_LRUK_K });
        assert_eq!(p, "PMM");
        let (dev, ev, p) = split_device_cell("cyl+lru/MinMax").expect("device cell");
        assert_eq!(dev, DeviceSpec::Cylinder);
        assert_eq!(ev, EvictionSpec::Lru);
        assert_eq!(p, "MinMax");
        // Plain policy names and malformed combos pass through as None.
        assert!(split_device_cell("PMM").is_none());
        assert!(split_device_cell("MinMax-10").is_none());
        assert!(split_device_cell("tape+lru/PMM").is_none());
        assert!(split_device_cell("ssd+fifo/PMM").is_none());
    }

    #[test]
    fn apply_device_cell_installs_device_and_eviction() {
        use pmm_core::storage::{DeviceSpec, EvictionSpec};
        let base = SimConfig::baseline(0.05);
        let (cfg, policy) = apply_device_cell(base.clone(), "ssd+lruk/Max");
        assert!(matches!(cfg.resources.device, DeviceSpec::Ssd(_)));
        assert_eq!(
            cfg.resources.eviction,
            EvictionSpec::LruK { k: DEVICE_LRUK_K }
        );
        assert_eq!(policy, "Max");
        // Identity on non-device names: config untouched, name passed back.
        let (cfg, policy) = apply_device_cell(base, "PMM");
        assert_eq!(cfg.resources.device, DeviceSpec::Cylinder);
        assert_eq!(cfg.resources.eviction, EvictionSpec::Lru);
        assert_eq!(policy, "PMM");
    }

    #[test]
    fn make_policy_for_resolves_device_cell_names() {
        let cfg = SimConfig::baseline(0.05);
        assert_eq!(make_policy_for(&cfg, "ssd+lruk/PMM").name(), "PMM");
        assert_eq!(make_policy_for(&cfg, "cyl+lru/MinMax").name(), "MinMax");
    }

    #[test]
    fn fault_cell_names_round_trip() {
        let (mode, p) = split_fault_cell("abort/MinMax").expect("fault cell");
        assert_eq!(mode, DegradationMode::Abort);
        assert_eq!(p, "MinMax");
        let (mode, p) = split_fault_cell("requeue/PMM").expect("fault cell");
        assert_eq!(mode, DegradationMode::Requeue);
        assert_eq!(p, "PMM");
        // Plain names, unknown modes, and device cells pass through.
        assert!(split_fault_cell("PMM").is_none());
        assert!(split_fault_cell("retry/PMM").is_none());
        assert!(split_fault_cell("ssd+lruk/PMM").is_none());
        assert!(split_device_cell("abort/PMM").is_none());
    }

    #[test]
    fn apply_fault_cell_installs_the_degradation_mode() {
        let base = SimConfig::faulty(1.0);
        let (cfg, policy) = apply_fault_cell(base.clone(), "requeue/PMM");
        assert_eq!(cfg.faults.default_mode, DegradationMode::Requeue);
        assert_eq!(policy, "PMM");
        // Identity on non-fault names.
        let (cfg, policy) = apply_fault_cell(base, "MinMax");
        assert_eq!(cfg.faults.default_mode, DegradationMode::Abort);
        assert_eq!(policy, "MinMax");
    }

    #[test]
    fn make_policy_for_resolves_fault_cell_names() {
        let cfg = SimConfig::faulty(0.5);
        assert_eq!(make_policy_for(&cfg, "abort/PMM").name(), "PMM");
        assert_eq!(make_policy_for(&cfg, "requeue/MinMax").name(), "MinMax");
    }

    #[test]
    fn snapshot_cell_names_round_trip() {
        assert_eq!(
            split_snapshot_cell("snapshot/Partitioned-soft"),
            Some("Partitioned-soft")
        );
        // Plain names, device cells, and fault cells pass through.
        assert!(split_snapshot_cell("Partitioned-soft").is_none());
        assert!(split_snapshot_cell("ssd+lruk/PMM").is_none());
        assert!(split_snapshot_cell("requeue/PMM").is_none());
        assert!(split_device_cell("snapshot/Partitioned-soft").is_none());
        assert!(split_fault_cell("snapshot/Partitioned-soft").is_none());
    }

    #[test]
    fn make_policy_for_resolves_snapshot_cell_names() {
        let cfg = SimConfig::scale(4);
        let wrapped = make_policy_for(&cfg, "snapshot/Partitioned-soft");
        assert_eq!(wrapped.name(), "snapshot/Partitioned-soft");
        assert!(
            !wrapped.supports_dirty_allocation(),
            "the snapshot wrapper pins the full-snapshot path"
        );
        assert!(
            make_policy_for(&cfg, "Partitioned-soft").supports_dirty_allocation(),
            "the unwrapped partitioned policy takes the incremental path"
        );
    }

    #[test]
    #[should_panic(expected = "deliberate crashtest panic")]
    fn panic_policy_panics_on_first_allocation() {
        let mut cfg = SimConfig::baseline(0.05);
        cfg.duration_secs = 100.0;
        run_simulation(cfg, make_policy("panic"));
    }

    #[test]
    fn render_sweep_formats_rows() {
        let rows = vec![SweepRow {
            x: 0.04,
            reports: vec![("Max".into(), RunReport::default())],
        }];
        let s = render_sweep("t", "rate", &rows, |r| r.miss_pct(), "%");
        assert!(s.contains("== t =="));
        assert!(s.contains("0.040"));
        assert!(s.contains("Max"));
    }

    #[test]
    fn quick_baseline_sweep_runs() {
        // A tiny smoke version: one rate, short horizon.
        let rows = sweep(&[0.05], &["Max", "PMM"], 600.0, SimConfig::baseline);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].reports.len(), 2);
        assert!(rows[0].reports.iter().all(|(_, r)| r.served > 0));
    }
}
