//! Types shared between the memory policies and the simulator.

use simkit::SimTime;
use stats::SampleSummary;

/// Identifies one query for the lifetime of a simulation run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// What a policy needs to know about one live query.
#[derive(Clone, Copy, Debug)]
pub struct QueryDemand {
    /// The query.
    pub id: QueryId,
    /// Its deadline — the ED priority (earlier = more urgent).
    pub deadline: SimTime,
    /// Maximum useful memory in pages (one-pass execution).
    pub max_mem: u32,
    /// Minimum memory in pages required to execute at all.
    pub min_mem: u32,
    /// The memory partition the query bills against (0 when the workload is
    /// single-tenant; ignored by the non-partitioned policies).
    pub tenant: u32,
}

/// Snapshot of the memory situation handed to a policy when allocations
/// must be (re)computed.
#[derive(Clone, Debug)]
pub struct SystemSnapshot {
    /// Current virtual time.
    pub now: SimTime,
    /// Total buffer pool size `M` in pages.
    pub total_memory: u32,
    /// Every live query — admitted and waiting alike. Order is arbitrary;
    /// policies sort by deadline themselves.
    pub queries: Vec<QueryDemand>,
}

/// Which allocation strategy a policy is currently operating.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StrategyMode {
    /// Each query gets its maximum or nothing.
    Max,
    /// High-priority queries get their maximum, the rest their minimum.
    MinMax,
    /// Equal percentage of maximum, at least the minimum (the baseline the
    /// paper argues against).
    Proportional,
}

impl std::fmt::Display for StrategyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyMode::Max => write!(f, "Max"),
            StrategyMode::MinMax => write!(f, "MinMax"),
            StrategyMode::Proportional => write!(f, "Proportional"),
        }
    }
}

impl From<StrategyMode> for obs::PolicyMode {
    fn from(m: StrategyMode) -> Self {
        match m {
            StrategyMode::Max => obs::PolicyMode::Max,
            StrategyMode::MinMax => obs::PolicyMode::MinMax,
            StrategyMode::Proportional => obs::PolicyMode::Proportional,
        }
    }
}

impl From<obs::PolicyMode> for StrategyMode {
    fn from(m: obs::PolicyMode) -> Self {
        match m {
            obs::PolicyMode::Max => StrategyMode::Max,
            obs::PolicyMode::MinMax => StrategyMode::MinMax,
            obs::PolicyMode::Proportional => StrategyMode::Proportional,
        }
    }
}

/// Feedback handed to adaptive policies after every `SampleSize` query
/// completions (Section 3: PMM re-evaluates its decisions at this
/// frequency).
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Virtual time of the batch boundary.
    pub now: SimTime,
    /// Queries served in this batch (completions + firm-deadline misses).
    pub served: u64,
    /// How many of them missed their deadline.
    pub missed: u64,
    /// Time-weighted average MPL realized during the batch.
    pub realized_mpl: f64,
    /// CPU utilization during the batch.
    pub cpu_util: f64,
    /// Mean disk utilization during the batch.
    pub disk_util: f64,
    /// Admission waiting times (seconds) of the batch's queries.
    pub wait_time: SampleSummary,
    /// `time_constraint − execution_time` (seconds) per query; a positive
    /// mean means MinMax's longer executions are likely feasible
    /// (condition 4 of Section 3.2).
    pub slack_surplus: SampleSummary,
    /// Workload characteristic 1: maximum memory demand (pages).
    pub char_max_mem: SampleSummary,
    /// Workload characteristic 2: I/Os to read operand relations.
    pub char_operand_ios: SampleSummary,
    /// Workload characteristic 3: normalized time constraint
    /// (constraint ÷ operand I/Os).
    pub char_norm_constraint: SampleSummary,
}

impl BatchStats {
    /// Miss ratio of the batch in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.missed as f64 / self.served as f64
        }
    }

    /// Utilization of the most heavily loaded resource (Section 3.1.2).
    pub fn bottleneck_util(&self) -> f64 {
        self.cpu_util.max(self.disk_util)
    }
}

/// One point of a policy's decision trace (Figures 6 and 15).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// When the decision was taken.
    pub at: SimTime,
    /// Mode in force after the decision.
    pub mode: StrategyMode,
    /// Target MPL after the decision (`None` in Max mode, which does not
    /// limit the MPL).
    pub target_mpl: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(served: u64, missed: u64) -> BatchStats {
        BatchStats {
            now: SimTime::ZERO,
            served,
            missed,
            realized_mpl: 1.0,
            cpu_util: 0.2,
            disk_util: 0.5,
            wait_time: SampleSummary::default(),
            slack_surplus: SampleSummary::default(),
            char_max_mem: SampleSummary::default(),
            char_operand_ios: SampleSummary::default(),
            char_norm_constraint: SampleSummary::default(),
        }
    }

    #[test]
    fn miss_ratio_basic() {
        assert_eq!(batch(30, 6).miss_ratio(), 0.2);
        assert_eq!(batch(0, 0).miss_ratio(), 0.0);
    }

    #[test]
    fn bottleneck_is_max_resource() {
        let b = batch(30, 0);
        assert_eq!(b.bottleneck_util(), 0.5);
    }

    #[test]
    fn mode_display() {
        assert_eq!(StrategyMode::Max.to_string(), "Max");
        assert_eq!(StrategyMode::MinMax.to_string(), "MinMax");
    }

    #[test]
    fn mode_roundtrips_through_obs_with_identical_display() {
        for m in [
            StrategyMode::Max,
            StrategyMode::MinMax,
            StrategyMode::Proportional,
        ] {
            let p: obs::PolicyMode = m.into();
            assert_eq!(p.to_string(), m.to_string());
            assert_eq!(StrategyMode::from(p), m);
        }
    }
}
