//! `pmm` — Priority Memory Management for firm real-time query workloads.
//!
//! This crate is the paper's primary contribution: the PMM algorithm
//! ([`adaptive::Pmm`]) plus the static algorithms it is evaluated against
//! (Table 5: [`policy::MaxPolicy`], [`policy::MinMaxPolicy`],
//! [`policy::ProportionalPolicy`]).
//!
//! The pieces:
//!
//! * [`allocator`] — the ED-ordered memory-division functions (Max,
//!   two-pass MinMax, water-filled Proportional).
//! * [`policy`] — the [`policy::MemoryPolicy`] trait the simulator drives,
//!   and the static policies.
//! * [`adaptive`] — PMM itself: miss-ratio projection, the resource
//!   utilization heuristic, strategy switching, and workload-change
//!   detection.
//! * [`partition`] — multi-tenant quotas: [`partition::PartitionedPolicy`]
//!   runs the MinMax machinery per tenant partition with hard/soft quotas
//!   and borrow-back.
//! * [`types`] — snapshot / feedback types shared with the simulator.

pub mod adaptive;
pub mod allocator;
pub mod partition;
pub mod policy;
pub mod types;

pub use adaptive::{Pmm, PmmParams};
pub use allocator::{
    max_allocate, max_allocate_into, minmax_allocate, minmax_allocate_into,
    partitioned_allocate, partitioned_allocate_into, proportional_allocate,
    proportional_allocate_into, AllocScratch, Grants, PartitionScratch, PartitionSpec,
};
pub use partition::PartitionedPolicy;
pub use policy::{MaxPolicy, MemoryPolicy, MinMaxPolicy, ProportionalPolicy};
pub use types::{
    BatchStats, QueryDemand, QueryId, StrategyMode, SystemSnapshot, TracePoint,
};
