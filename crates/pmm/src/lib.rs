//! `pmm` — Priority Memory Management for firm real-time query workloads.
//!
//! This crate is the paper's primary contribution: the PMM algorithm
//! ([`adaptive::Pmm`]) plus the static algorithms it is evaluated against
//! (Table 5: [`policy::MaxPolicy`], [`policy::MinMaxPolicy`],
//! [`policy::ProportionalPolicy`]).
//!
//! The pieces:
//!
//! * [`allocator`] — the ED-ordered memory-division functions (Max,
//!   two-pass MinMax, water-filled Proportional).
//! * [`policy`] — the [`policy::MemoryPolicy`] trait the simulator drives,
//!   and the static policies.
//! * [`adaptive`] — PMM itself: miss-ratio projection, the resource
//!   utilization heuristic, strategy switching, and workload-change
//!   detection.
//! * [`partition`] — multi-tenant quotas: [`partition::PartitionedPolicy`]
//!   runs the MinMax machinery per tenant partition with hard/soft quotas
//!   and borrow-back.
//! * [`incremental`] — scale-out reallocation: the dirty-set incremental
//!   allocator ([`incremental::IncrementalPartitioned`]) re-divides only
//!   partitions whose demand or strategy changed, arbitrating soft-quota
//!   borrow-back over a hierarchical partition tree — bit-for-bit equal to
//!   the reference two-pass division.
//! * [`tenant_pmm`] — PMM v2's adaptive multi-tenant mode:
//!   [`tenant_pmm::TenantPmm`] runs an independent PMM controller per
//!   partition, fed by per-tenant batches, with soft-quota borrow-back
//!   arbitrated across the controllers' chosen strategies.
//! * [`types`] — snapshot / feedback types shared with the simulator.
//!
//! PMM v2 also adds the *regime-aware* projection for bursty arrivals:
//! [`adaptive::Pmm::regime_aware`] segments learned batches at detected
//! switches in the windowed miss-ratio series (MMPP state changes are
//! invisible to the Section 3.3 characteristic tests).

pub mod adaptive;
pub mod allocator;
pub mod incremental;
pub mod partition;
pub mod policy;
pub mod tenant_pmm;
pub mod types;

pub use adaptive::{Pmm, PmmParams};
pub use allocator::{
    max_allocate_clamped_into, max_allocate_into, minmax_allocate_into,
    partitioned_allocate_into, partitioned_allocate_with_into,
    proportional_allocate_into, AllocScratch, Grants, PartitionScratch, PartitionSpec,
    PartitionStrategy,
};
// The deprecated allocating wrappers stay exported until their removal so
// downstream one-shot callers keep compiling (with the deprecation note).
#[allow(deprecated)]
pub use allocator::{
    max_allocate, minmax_allocate, partitioned_allocate, proportional_allocate,
};
pub use incremental::{DirtySet, IncrementalPartitioned, GROUP_SIZE};
pub use partition::PartitionedPolicy;
pub use policy::{
    MaxPolicy, MemoryPolicy, MinMaxPolicy, ProportionalPolicy, SnapshotOnly,
};
pub use tenant_pmm::TenantPmm;
pub use types::{
    BatchStats, QueryDemand, QueryId, StrategyMode, SystemSnapshot, TracePoint,
};
