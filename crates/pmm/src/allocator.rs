//! The memory-division algorithms (Section 3.2 and Table 5), as pure
//! functions from `(queries, total memory)` to per-query page grants.
//!
//! All three honor Earliest Deadline strictly: queries are considered in
//! deadline order and a query that cannot be served does not let a
//! lower-priority query overtake it (priority inversion through memory is
//! exactly what the paper's policies are designed to avoid).
//!
//! The primary entry points are the `*_allocate_into` forms, which write
//! grants into caller-owned buffers and are allocation-free once the
//! [`AllocScratch`] is warm — the shape the simulator's reallocation hot
//! path needs. The allocating wrappers (`max_allocate` & co.) are
//! deprecated: call `*_allocate_into`, or go through
//! [`MemoryPolicy::allocate`](crate::MemoryPolicy) for one-shot use.

use crate::types::{QueryDemand, QueryId};

/// Grants for the supplied queries; queries absent from the map receive no
/// memory (they wait, or are suspended).
pub type Grants = Vec<(QueryId, u32)>;

/// Reusable scratch for the `*_allocate_into` entry points: the ED-sorted
/// demand copy and the water-filling pin flags. One instance amortizes every
/// per-call allocation of the seed implementation (`queries.to_vec()` plus a
/// fresh `Vec<bool>`), which ran on *every* calendar event that moved a
/// query. The convenience wrappers build a throwaway one.
#[derive(Debug, Default)]
pub struct AllocScratch {
    sorted: Vec<QueryDemand>,
    pinned: Vec<bool>,
}

impl AllocScratch {
    /// Fill `self.sorted` with the demands in ED order (deadline, then id —
    /// a unique key, so the unstable sort is deterministic).
    ///
    /// The simulator maintains its live-query snapshot in exactly this
    /// order incrementally (arrival/departure only — deadlines are fixed),
    /// so on the per-event hot path the `is_sorted` check turns the re-sort
    /// into a linear verification. Arbitrary callers still get sorted.
    pub(crate) fn ed_order(&mut self, queries: &[QueryDemand]) {
        self.sorted.clear();
        self.sorted.extend_from_slice(queries);
        if !self.sorted.is_sorted_by_key(|q| (q.deadline, q.id)) {
            self.sorted.sort_unstable_by_key(|q| (q.deadline, q.id));
        }
    }

    /// The ED-sorted copy left behind by the last [`AllocScratch::ed_order`]
    /// call (the incremental allocator's full-member emission walks it in
    /// lockstep with the grants, which are always an ED prefix).
    pub(crate) fn sorted(&self) -> &[QueryDemand] {
        &self.sorted
    }
}

/// **Max** strategy: in ED order, each query gets its maximum demand or the
/// admission stops. No explicit MPL limit — memory itself is the limiter.
#[deprecated(note = "use `max_allocate_into` with caller-owned buffers")]
pub fn max_allocate(queries: &[QueryDemand], total: u32) -> Grants {
    let mut out = Grants::new();
    max_allocate_into(queries, total, &mut AllocScratch::default(), &mut out);
    out
}

/// [`max_allocate`] into caller-owned buffers; allocation-free once warm.
pub fn max_allocate_into(
    queries: &[QueryDemand],
    total: u32,
    scratch: &mut AllocScratch,
    out: &mut Grants,
) {
    scratch.ed_order(queries);
    out.clear();
    let mut free = total;
    for q in &scratch.sorted {
        if q.max_mem <= free {
            free -= q.max_mem;
            out.push((q.id, q.max_mem));
        } else {
            break; // strict ED: nobody overtakes a blocked urgent query
        }
    }
}

/// **MinMax-N** strategy: admit the `limit` most urgent queries (all of
/// them when `limit` is `None`, i.e. MinMax-∞). Pass one hands every
/// admitted query its minimum; pass two tops allocations up to the maximum
/// in ED order until memory runs out. The query on the boundary may end up
/// anywhere between its minimum and maximum (Section 3.2).
#[deprecated(note = "use `minmax_allocate_into` with caller-owned buffers")]
pub fn minmax_allocate(
    queries: &[QueryDemand],
    total: u32,
    limit: Option<u32>,
) -> Grants {
    let mut out = Grants::new();
    minmax_allocate_into(
        queries,
        total,
        limit,
        &mut AllocScratch::default(),
        &mut out,
    );
    out
}

/// [`minmax_allocate`] into caller-owned buffers; allocation-free once warm.
pub fn minmax_allocate_into(
    queries: &[QueryDemand],
    total: u32,
    limit: Option<u32>,
    scratch: &mut AllocScratch,
    out: &mut Grants,
) {
    let _ = minmax_allocate_flagged_into(queries, total, limit, scratch, out);
}

/// [`minmax_allocate_into`], additionally reporting whether the division was
/// *budget-limited*: `true` means a different budget could change the grants
/// (admission stopped on memory, or the top-up pass exhausted the budget).
/// `false` guarantees the same grants for every budget ≥ the granted total —
/// the reuse certificate the incremental allocator caches. Conservative:
/// `true` may be returned even when the outcome happens to be stable.
pub(crate) fn minmax_allocate_flagged_into(
    queries: &[QueryDemand],
    total: u32,
    limit: Option<u32>,
    scratch: &mut AllocScratch,
    out: &mut Grants,
) -> bool {
    scratch.ed_order(queries);
    let n = limit.map(|l| l as usize).unwrap_or(usize::MAX);
    // Pass 1: minimums, in priority order, stopping when memory or the MPL
    // limit is exhausted.
    out.clear();
    let mut free = total;
    for q in scratch.sorted.iter().take(n) {
        if q.min_mem <= free {
            free -= q.min_mem;
            out.push((q.id, q.min_mem));
        } else {
            break;
        }
    }
    // Admission ended early only if memory broke the loop before the MPL
    // limit / group size did.
    let admission_limited = out.len() < scratch.sorted.len().min(n);
    // Pass 2: top up to the maximum, again in priority order.
    for (i, grant) in out.iter_mut().enumerate() {
        let want = scratch.sorted[i].max_mem - grant.1;
        let extra = want.min(free);
        grant.1 += extra;
        free -= extra;
        if free == 0 {
            break;
        }
    }
    admission_limited || free == 0
}

/// **Proportional-N** strategy: admit like MinMax-N, but divide memory so
/// every admitted query receives the same fraction of its maximum, subject
/// to at least its minimum. The fraction is found by water-filling: queries
/// whose proportional share would fall below their minimum are pinned at
/// the minimum and the fraction is recomputed over the rest.
#[deprecated(note = "use `proportional_allocate_into` with caller-owned buffers")]
pub fn proportional_allocate(
    queries: &[QueryDemand],
    total: u32,
    limit: Option<u32>,
) -> Grants {
    let mut out = Grants::new();
    proportional_allocate_into(
        queries,
        total,
        limit,
        &mut AllocScratch::default(),
        &mut out,
    );
    out
}

/// [`proportional_allocate`] into caller-owned buffers; allocation-free
/// once warm.
pub fn proportional_allocate_into(
    queries: &[QueryDemand],
    total: u32,
    limit: Option<u32>,
    scratch: &mut AllocScratch,
    out: &mut Grants,
) {
    scratch.ed_order(queries);
    let n = limit.map(|l| l as usize).unwrap_or(usize::MAX);
    out.clear();
    // Admission: maximal ED prefix whose minimums fit — a contiguous prefix
    // of the sorted scratch, so a count suffices.
    let mut admitted = 0usize;
    let mut min_sum = 0u64;
    for q in scratch.sorted.iter().take(n) {
        if min_sum + q.min_mem as u64 <= total as u64 {
            min_sum += q.min_mem as u64;
            admitted += 1;
        } else {
            break;
        }
    }
    if admitted == 0 {
        return;
    }
    let admitted_q = &scratch.sorted[..admitted];
    // Water-fill the common fraction.
    scratch.pinned.clear();
    scratch.pinned.resize(admitted, false);
    let pinned = &mut scratch.pinned;
    let mut frac = 1.0f64;
    for _ in 0..admitted + 1 {
        let pinned_mem: u64 = admitted_q
            .iter()
            .zip(pinned.iter())
            .filter(|&(_, &p)| p)
            .map(|(q, _)| q.min_mem as u64)
            .sum();
        let unpinned_max: u64 = admitted_q
            .iter()
            .zip(pinned.iter())
            .filter(|&(_, &p)| !p)
            .map(|(q, _)| q.max_mem as u64)
            .sum();
        if unpinned_max == 0 {
            frac = 0.0;
            break;
        }
        frac = ((total as u64 - pinned_mem) as f64 / unpinned_max as f64).min(1.0);
        let mut newly_pinned = false;
        for (i, q) in admitted_q.iter().enumerate() {
            if !pinned[i] && (frac * q.max_mem as f64) < q.min_mem as f64 {
                pinned[i] = true;
                newly_pinned = true;
            }
        }
        if !newly_pinned {
            break;
        }
    }
    out.extend(admitted_q.iter().zip(pinned.iter()).map(|(q, &p)| {
        let pages = if p {
            q.min_mem
        } else {
            ((frac * q.max_mem as f64).floor() as u32).clamp(q.min_mem, q.max_mem)
        };
        (q.id, pages)
    }));
}

/// Sum of granted pages (helper for invariant checks).
pub fn granted_total(grants: &Grants) -> u64 {
    grants.iter().map(|&(_, p)| p as u64).sum()
}

/// One memory partition of the multi-tenant mode: a page quota plus whether
/// the tenant may borrow pages other partitions leave idle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Pages of the pool reserved for this partition.
    pub quota: u32,
    /// Soft quota: may exceed `quota` by borrowing idle pages. Hard
    /// (`false`) is a strict ceiling.
    pub soft: bool,
}

/// **Partitioned** mode: divide memory across tenant partitions, running the
/// MinMax-N machinery *within* each partition.
///
/// Pass 1 hands every partition its quota and allocates its queries with
/// [`minmax_allocate`] against that budget — a hard guarantee that a tenant
/// is never starved below its reservation by another tenant's load. Pass 2
/// is the borrow-back round: pages no partition is using (unused quota plus
/// any pool pages outside all quotas) are offered to `soft` partitions in
/// declaration order, which re-allocate with the enlarged budget. Because
/// the whole division is recomputed from scratch at every allocation event,
/// borrowed pages flow back automatically the moment the lender's own demand
/// returns — pass 1 always serves quotas first.
///
/// Queries name their partition via [`QueryDemand::tenant`]; out-of-range
/// indices clamp to the last partition. With no partitions declared this
/// degenerates to plain `minmax_allocate` over the whole pool. Quotas that
/// oversubscribe the pool are honored first-declared-first: each partition's
/// reservation is capped to the pages not already reserved ahead of it, so
/// the grants can never exceed `total`.
#[deprecated(note = "use `partitioned_allocate_into` with caller-owned buffers")]
pub fn partitioned_allocate(
    queries: &[QueryDemand],
    partitions: &[PartitionSpec],
    total: u32,
    limit: Option<u32>,
) -> Grants {
    let mut out = Grants::new();
    partitioned_allocate_into(
        queries,
        partitions,
        total,
        limit,
        &mut PartitionScratch::default(),
        &mut out,
    );
    out
}

/// Reusable scratch for [`partitioned_allocate_into`]: per-partition demand
/// groups and grant buffers, plus the shared [`AllocScratch`] the inner
/// MinMax passes sort in.
#[derive(Debug, Default)]
pub struct PartitionScratch {
    groups: Vec<Vec<QueryDemand>>,
    part_grants: Vec<Grants>,
    regrant: Grants,
    alloc: AllocScratch,
}

/// [`partitioned_allocate`] into caller-owned buffers; allocation-free once
/// warm.
pub fn partitioned_allocate_into(
    queries: &[QueryDemand],
    partitions: &[PartitionSpec],
    total: u32,
    limit: Option<u32>,
    scratch: &mut PartitionScratch,
    out: &mut Grants,
) {
    if partitions.is_empty() {
        minmax_allocate_into(queries, total, limit, &mut scratch.alloc, out);
        return;
    }
    partitioned_allocate_core(
        queries,
        partitions,
        total,
        |_| PartitionStrategy::MinMax(limit),
        scratch,
        out,
    );
}

/// Which memory-division function one partition's budget is divided by —
/// the per-tenant arbitration knob of the adaptive multi-tenant policy
/// (`TenantPmm`): each tenant's PMM controller picks its partition's
/// strategy independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Max within the partition: each query its maximum — *capped at the
    /// partition budget* — or nothing. The cap matters: pages beyond the
    /// quota do not exist for the tenant, so a query whose one-pass
    /// maximum exceeds the whole partition would otherwise never be
    /// admitted, never complete, and starve the tenant's feedback loop
    /// (the paper's operators degrade gracefully below their maximum,
    /// which is what makes the cap sound).
    Max,
    /// MinMax-N within the partition (`None` = MinMax-∞).
    MinMax(Option<u32>),
}

impl PartitionStrategy {
    /// Divide `budget` among `queries` by this strategy.
    fn divide(
        self,
        queries: &[QueryDemand],
        budget: u32,
        alloc: &mut AllocScratch,
        out: &mut Grants,
    ) {
        let _ = self.divide_flagged(queries, budget, alloc, out);
    }

    /// [`PartitionStrategy::divide`], reporting whether the division was
    /// budget-limited (see [`minmax_allocate_flagged_into`]); the grants are
    /// identical either way.
    pub(crate) fn divide_flagged(
        self,
        queries: &[QueryDemand],
        budget: u32,
        alloc: &mut AllocScratch,
        out: &mut Grants,
    ) -> bool {
        match self {
            PartitionStrategy::Max => {
                max_allocate_clamped_flagged_into(queries, budget, alloc, out)
            }
            PartitionStrategy::MinMax(limit) => {
                minmax_allocate_flagged_into(queries, budget, limit, alloc, out)
            }
        }
    }
}

/// [`max_allocate_into`] with each query's demand capped at `total` (the
/// partition budget): in ED order, a query receives
/// `min(max_mem, total)` pages or the admission stops. Equal to the plain
/// Max division whenever every `max_mem ≤ total`; used by
/// [`PartitionStrategy::Max`], where the cap is the difference between a
/// small tenant making progress and starving (see the variant docs).
pub fn max_allocate_clamped_into(
    queries: &[QueryDemand],
    total: u32,
    scratch: &mut AllocScratch,
    out: &mut Grants,
) {
    let _ = max_allocate_clamped_flagged_into(queries, total, scratch, out);
}

/// [`max_allocate_clamped_into`], additionally reporting whether the
/// division was budget-limited: admission stopped on memory, or any demand
/// was clamped at the budget (the clamp makes grants budget-*dependent*, so
/// a different budget could redistribute). The grants are identical either
/// way; see [`minmax_allocate_flagged_into`] for the flag's contract.
pub(crate) fn max_allocate_clamped_flagged_into(
    queries: &[QueryDemand],
    total: u32,
    scratch: &mut AllocScratch,
    out: &mut Grants,
) -> bool {
    scratch.ed_order(queries);
    out.clear();
    let mut free = total;
    let mut clamped = false;
    for q in &scratch.sorted {
        clamped |= q.max_mem > total;
        let want = q.max_mem.min(total).max(q.min_mem);
        if want <= free {
            free -= want;
            out.push((q.id, want));
        } else {
            return true; // strict ED: nobody overtakes a blocked urgent query
        }
    }
    clamped
}

/// [`partitioned_allocate_into`] generalized to a *per-partition* strategy:
/// partition `i` divides its budget by `strategies[i]` in both the quota
/// pass and the borrow-back pass. Identical structure otherwise — quotas
/// first (capped against oversubscription), then idle pages to soft
/// partitions in declaration order.
///
/// With no partitions declared this degenerates to plain MinMax-∞ over the
/// whole pool, like its fixed-strategy sibling.
///
/// # Panics
/// Panics when `strategies.len() != partitions.len()` (a wiring bug).
pub fn partitioned_allocate_with_into(
    queries: &[QueryDemand],
    partitions: &[PartitionSpec],
    strategies: &[PartitionStrategy],
    total: u32,
    scratch: &mut PartitionScratch,
    out: &mut Grants,
) {
    assert_eq!(
        strategies.len(),
        partitions.len(),
        "one strategy per partition"
    );
    if partitions.is_empty() {
        minmax_allocate_into(queries, total, None, &mut scratch.alloc, out);
        return;
    }
    partitioned_allocate_core(
        queries,
        partitions,
        total,
        |i| strategies[i],
        scratch,
        out,
    );
}

/// Shared two-pass machinery behind both partitioned entry points; callers
/// have already handled the empty-partition degenerate case.
fn partitioned_allocate_core(
    queries: &[QueryDemand],
    partitions: &[PartitionSpec],
    total: u32,
    strategy_of: impl Fn(usize) -> PartitionStrategy,
    scratch: &mut PartitionScratch,
    out: &mut Grants,
) {
    let n = partitions.len();
    scratch.groups.resize_with(n, Vec::new);
    scratch.part_grants.resize_with(n, Grants::new);
    for g in &mut scratch.groups[..n] {
        g.clear();
    }
    for q in queries {
        scratch.groups[(q.tenant as usize).min(n - 1)].push(*q);
    }
    // Pass 1: every partition allocates within its own quota, capped so the
    // reservations themselves never oversubscribe the pool.
    let mut unreserved = total;
    for (i, spec) in partitions.iter().enumerate() {
        let budget = spec.quota.min(unreserved);
        unreserved -= budget;
        strategy_of(i).divide(
            &scratch.groups[i],
            budget,
            &mut scratch.alloc,
            &mut scratch.part_grants[i],
        );
    }
    let used: u64 = scratch.part_grants[..n].iter().map(granted_total).sum();
    // Pass 2 (borrow-back): idle pages go to soft partitions in order.
    let mut pool = (total as u64).saturating_sub(used);
    for (i, spec) in partitions.iter().enumerate() {
        if !spec.soft || pool == 0 {
            continue;
        }
        let own = granted_total(&scratch.part_grants[i]);
        let budget = (own + pool).min(u32::MAX as u64) as u32;
        strategy_of(i).divide(
            &scratch.groups[i],
            budget,
            &mut scratch.alloc,
            &mut scratch.regrant,
        );
        let regrant_used = granted_total(&scratch.regrant);
        // More memory can only admit more / grant more under Max and
        // MinMax alike, but guard the invariant anyway: never shrink below
        // the quota pass.
        if regrant_used >= own {
            pool -= regrant_used - own;
            std::mem::swap(&mut scratch.part_grants[i], &mut scratch.regrant);
        }
    }
    out.clear();
    for grants in &scratch.part_grants[..n] {
        out.extend_from_slice(grants);
    }
}

#[cfg(test)]
// The deprecated allocating wrappers stay covered until their removal —
// these tests pin them against the `_into` forms (and each other).
#[allow(deprecated)]
mod tests {
    use super::*;
    use simkit::SimTime;

    fn q(id: u64, deadline: u64, min: u32, max: u32) -> QueryDemand {
        QueryDemand {
            id: QueryId(id),
            deadline: SimTime(deadline),
            min_mem: min,
            max_mem: max,
            tenant: 0,
        }
    }

    fn qt(id: u64, deadline: u64, min: u32, max: u32, tenant: u32) -> QueryDemand {
        QueryDemand {
            tenant,
            ..q(id, deadline, min, max)
        }
    }

    #[test]
    fn max_allocates_in_deadline_order() {
        let queries = [q(1, 300, 37, 1321), q(2, 100, 37, 1321), q(3, 200, 37, 500)];
        let grants = max_allocate(&queries, 2560);
        // Query 2 (deadline 100) then query 3 (deadline 200, 500 pages).
        assert_eq!(grants, vec![(QueryId(2), 1321), (QueryId(3), 500)]);
    }

    #[test]
    fn max_blocks_rather_than_bypassing() {
        // The urgent query needs 2000; only 1500 free after it would be
        // blocked — the small later query must NOT overtake it.
        let queries = [q(1, 100, 37, 2000), q(2, 200, 10, 100)];
        let grants = max_allocate(&queries, 1500);
        assert!(grants.is_empty(), "strict ED admits nothing here");
    }

    #[test]
    fn max_fits_memory() {
        let queries: Vec<_> = (0..10).map(|i| q(i, 100 + i, 37, 1321)).collect();
        let grants = max_allocate(&queries, 2560);
        assert_eq!(
            grants.len(),
            1,
            "only one 1321-page query fits 2560 after two would exceed"
        );
        assert!(granted_total(&grants) <= 2560);
    }

    #[test]
    fn minmax_two_pass_shape() {
        // Paper: higher-priority queries end at their maximum, lower at
        // their minimum, one boundary query in between.
        let queries: Vec<_> = (0..5).map(|i| q(i, 100 + i, 37, 1321)).collect();
        let grants = minmax_allocate(&queries, 2560, None);
        assert_eq!(grants.len(), 5, "all five minimums fit (185 pages)");
        // Query 0: topped to max (1321). Remaining: 2560-5*37=2375-1284=...
        assert_eq!(grants[0], (QueryId(0), 1321));
        // Query 1 gets the leftover top-up (boundary query).
        let boundary = grants[1].1;
        assert!((37..=1321).contains(&boundary));
        // The rest stay at minimum.
        assert_eq!(grants[2].1, 37);
        assert_eq!(grants[3].1, 37);
        assert_eq!(grants[4].1, 37);
        assert_eq!(granted_total(&grants), 2560);
    }

    #[test]
    fn minmax_respects_mpl_limit() {
        let queries: Vec<_> = (0..8).map(|i| q(i, 100 + i, 10, 50)).collect();
        let grants = minmax_allocate(&queries, 10_000, Some(3));
        assert_eq!(grants.len(), 3);
        // Plenty of memory: all three at max.
        assert!(grants.iter().all(|&(_, p)| p == 50));
    }

    #[test]
    fn minmax_unlimited_admits_while_minimums_fit() {
        let queries: Vec<_> = (0..100).map(|i| q(i, 100 + i, 37, 1321)).collect();
        let grants = minmax_allocate(&queries, 2560, None);
        // 2560 / 37 = 69 — the paper's own number for the baseline.
        assert_eq!(grants.len(), 69);
        assert!(granted_total(&grants) <= 2560);
    }

    #[test]
    fn minmax_never_exceeds_memory_or_max() {
        let queries: Vec<_> = (0..20)
            .map(|i| q(i, 1000 - i * 10, 5 + (i % 7) as u32, 100 + (i * 13) as u32))
            .collect();
        for m in [50u32, 200, 1000, 5000] {
            let grants = minmax_allocate(&queries, m, None);
            assert!(granted_total(&grants) <= m as u64);
            for (id, pages) in &grants {
                let demand = queries.iter().find(|d| d.id == *id).unwrap();
                assert!(*pages >= demand.min_mem);
                assert!(*pages <= demand.max_mem);
            }
        }
    }

    #[test]
    fn proportional_equal_fractions() {
        let queries = [q(1, 100, 10, 1000), q(2, 200, 10, 500)];
        let grants = proportional_allocate(&queries, 750, None);
        // frac = 750 / 1500 = 0.5 → 500 and 250.
        assert_eq!(grants, vec![(QueryId(1), 500), (QueryId(2), 250)]);
    }

    #[test]
    fn proportional_pins_minimums() {
        // frac would give query 2 less than its minimum; it pins at min and
        // query 1 absorbs the rest.
        let queries = [q(1, 100, 10, 1000), q(2, 200, 90, 100)];
        let grants = proportional_allocate(&queries, 500, None);
        let g2 = grants.iter().find(|&&(id, _)| id == QueryId(2)).unwrap().1;
        assert_eq!(g2, 90, "pinned at minimum");
        let g1 = grants.iter().find(|&&(id, _)| id == QueryId(1)).unwrap().1;
        // (500-90)/1000 = 0.41 → 410.
        assert_eq!(g1, 410);
    }

    #[test]
    fn proportional_caps_at_max() {
        let queries = [q(1, 100, 10, 100), q(2, 200, 10, 100)];
        let grants = proportional_allocate(&queries, 10_000, None);
        assert!(grants.iter().all(|&(_, p)| p == 100));
    }

    #[test]
    fn proportional_respects_limit_and_memory() {
        let queries: Vec<_> = (0..50).map(|i| q(i, 100 + i, 37, 1321)).collect();
        let grants = proportional_allocate(&queries, 2560, Some(10));
        assert!(grants.len() <= 10);
        assert!(granted_total(&grants) <= 2560);
        for (_, p) in &grants {
            assert!(*p >= 37);
        }
    }

    #[test]
    fn all_strategies_handle_empty_input() {
        assert!(max_allocate(&[], 1000).is_empty());
        assert!(minmax_allocate(&[], 1000, None).is_empty());
        assert!(proportional_allocate(&[], 1000, Some(5)).is_empty());
    }

    #[test]
    fn deadline_ties_break_by_id() {
        let queries = [q(2, 100, 10, 600), q(1, 100, 10, 600)];
        let grants = max_allocate(&queries, 600);
        assert_eq!(grants[0].0, QueryId(1));
    }

    #[test]
    fn partitioned_empty_spec_degenerates_to_minmax() {
        let queries: Vec<_> = (0..5).map(|i| q(i, 100 + i, 37, 1321)).collect();
        assert_eq!(
            partitioned_allocate(&queries, &[], 2560, None),
            minmax_allocate(&queries, 2560, None)
        );
    }

    #[test]
    fn hard_quota_is_a_ceiling_even_when_the_pool_is_idle() {
        // Tenant 0 (hard, 1000 pages) is loaded; tenant 1 (1560) is idle.
        let parts = [
            PartitionSpec {
                quota: 1000,
                soft: false,
            },
            PartitionSpec {
                quota: 1560,
                soft: false,
            },
        ];
        let queries: Vec<_> = (0..5).map(|i| qt(i, 100 + i, 37, 1321, 0)).collect();
        let grants = partitioned_allocate(&queries, &parts, 2560, None);
        assert!(granted_total(&grants) <= 1000, "hard quota respected");
        assert!(!grants.is_empty());
    }

    #[test]
    fn soft_quota_borrows_idle_pages() {
        let parts = [
            PartitionSpec {
                quota: 1000,
                soft: true,
            },
            PartitionSpec {
                quota: 1560,
                soft: false,
            },
        ];
        let queries: Vec<_> = (0..5).map(|i| qt(i, 100 + i, 37, 1321, 0)).collect();
        let grants = partitioned_allocate(&queries, &parts, 2560, None);
        assert!(
            granted_total(&grants) > 1000,
            "soft tenant borrows beyond its quota: {}",
            granted_total(&grants)
        );
        assert!(granted_total(&grants) <= 2560);
    }

    #[test]
    fn borrow_back_when_the_lender_needs_its_quota() {
        let parts = [
            PartitionSpec {
                quota: 1280,
                soft: true,
            },
            PartitionSpec {
                quota: 1280,
                soft: true,
            },
        ];
        // Only tenant 0 active: it borrows tenant 1's idle pages.
        let t0: Vec<_> = (0..4).map(|i| qt(i, 100 + i, 300, 1321, 0)).collect();
        let alone = partitioned_allocate(&t0, &parts, 2560, None);
        assert!(granted_total(&alone) > 1280);
        // Tenant 1 wakes up: the division is recomputed and each side gets
        // at least its quota-backed share — the borrowed pages flowed back.
        let mut both = t0.clone();
        both.extend((10..14).map(|i| qt(i, 100 + i, 300, 1321, 1)));
        let shared = partitioned_allocate(&both, &parts, 2560, None);
        let t1_pages: u64 = shared
            .iter()
            .filter(|(id, _)| id.0 >= 10)
            .map(|&(_, p)| p as u64)
            .sum();
        assert!(
            t1_pages >= 1200,
            "returning tenant is served from its quota: {t1_pages}"
        );
        assert!(granted_total(&shared) <= 2560);
    }

    #[test]
    fn partitioned_respects_per_partition_limit_and_memory() {
        let parts = [
            PartitionSpec {
                quota: 1000,
                soft: true,
            },
            PartitionSpec {
                quota: 1000,
                soft: true,
            },
        ];
        let queries: Vec<_> = (0..40)
            .map(|i| qt(i, 100 + i, 37, 400, (i % 2) as u32))
            .collect();
        let grants = partitioned_allocate(&queries, &parts, 2000, Some(3));
        assert!(grants.len() <= 6, "≤ limit per partition");
        assert!(granted_total(&grants) <= 2000);
        for (id, pages) in &grants {
            let d = queries.iter().find(|d| d.id == *id).unwrap();
            assert!(*pages >= d.min_mem && *pages <= d.max_mem);
        }
    }

    #[test]
    fn out_of_range_tenant_clamps_to_last_partition() {
        let parts = [
            PartitionSpec {
                quota: 500,
                soft: false,
            },
            PartitionSpec {
                quota: 2060,
                soft: false,
            },
        ];
        let queries = [qt(1, 100, 37, 1321, 9)];
        let grants = partitioned_allocate(&queries, &parts, 2560, None);
        assert_eq!(grants, vec![(QueryId(1), 1321)], "billed to partition 1");
    }

    #[test]
    fn oversubscribed_quotas_never_overcommit_the_pool() {
        // Two 2000-page quotas over a 2560-page pool: declaration order
        // wins the reservation; grants must still fit the pool.
        let parts = [
            PartitionSpec {
                quota: 2000,
                soft: false,
            },
            PartitionSpec {
                quota: 2000,
                soft: false,
            },
        ];
        let queries: Vec<_> = (0..10)
            .map(|i| qt(i, 100 + i, 37, 1321, (i % 2) as u32))
            .collect();
        let grants = partitioned_allocate(&queries, &parts, 2560, None);
        assert!(
            granted_total(&grants) <= 2560,
            "grants {} exceed the pool",
            granted_total(&grants)
        );
        // Partition 1 still gets the 560 unreserved pages' worth of minimums.
        assert!(grants.iter().any(|(id, _)| id.0 % 2 == 1));
    }

    #[test]
    fn partitioned_is_deterministic() {
        let parts = [
            PartitionSpec {
                quota: 1300,
                soft: true,
            },
            PartitionSpec {
                quota: 1260,
                soft: false,
            },
        ];
        let queries: Vec<_> = (0..20)
            .map(|i| qt(i, 1000 - i * 7, 30 + (i % 5) as u32, 600, (i % 2) as u32))
            .collect();
        let a = partitioned_allocate(&queries, &parts, 2560, Some(8));
        let b = partitioned_allocate(&queries, &parts, 2560, Some(8));
        assert_eq!(a, b);
    }

    #[test]
    fn into_variants_match_allocating_paths_with_warm_scratch() {
        // One scratch reused across many differently-shaped calls: results
        // must be identical to the fresh-allocation wrappers every time.
        let mut scratch = AllocScratch::default();
        let mut pscratch = PartitionScratch::default();
        let mut out = Grants::new();
        let parts = [
            PartitionSpec {
                quota: 900,
                soft: true,
            },
            PartitionSpec {
                quota: 1660,
                soft: false,
            },
        ];
        let mut x = 0x1234_5678u64;
        for round in 0..50u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(round);
            let n = x % 30;
            let queries: Vec<_> = (0..n)
                .map(|i| {
                    let h = x.wrapping_mul(i + 1);
                    QueryDemand {
                        id: QueryId(i),
                        deadline: SimTime(100 + h % 500),
                        min_mem: 10 + (h % 60) as u32,
                        max_mem: 100 + (h % 1300) as u32,
                        tenant: (h % 2) as u32,
                    }
                })
                .collect();
            let total = 200 + (x % 3000) as u32;
            let limit = if x.is_multiple_of(3) {
                Some((x % 8) as u32)
            } else {
                None
            };

            max_allocate_into(&queries, total, &mut scratch, &mut out);
            assert_eq!(out, max_allocate(&queries, total));
            minmax_allocate_into(&queries, total, limit, &mut scratch, &mut out);
            assert_eq!(out, minmax_allocate(&queries, total, limit));
            proportional_allocate_into(&queries, total, limit, &mut scratch, &mut out);
            assert_eq!(out, proportional_allocate(&queries, total, limit));
            partitioned_allocate_into(
                &queries,
                &parts,
                total,
                limit,
                &mut pscratch,
                &mut out,
            );
            assert_eq!(out, partitioned_allocate(&queries, &parts, total, limit));
        }
    }

    #[test]
    fn with_strategies_all_minmax_matches_fixed_path() {
        let parts = [
            PartitionSpec {
                quota: 1000,
                soft: true,
            },
            PartitionSpec {
                quota: 1560,
                soft: false,
            },
        ];
        let queries: Vec<_> = (0..12)
            .map(|i| qt(i, 100 + i, 37, 900, (i % 2) as u32))
            .collect();
        let mut scratch = PartitionScratch::default();
        let mut out = Grants::new();
        for limit in [None, Some(3)] {
            partitioned_allocate_with_into(
                &queries,
                &parts,
                &[
                    PartitionStrategy::MinMax(limit),
                    PartitionStrategy::MinMax(limit),
                ],
                2560,
                &mut scratch,
                &mut out,
            );
            assert_eq!(out, partitioned_allocate(&queries, &parts, 2560, limit));
        }
    }

    #[test]
    fn clamped_max_caps_demands_at_the_budget() {
        let mut scratch = AllocScratch::default();
        let mut out = Grants::new();
        // Equal to plain Max when every demand fits the budget.
        let queries = [q(1, 300, 37, 1321), q(2, 100, 37, 1321), q(3, 200, 37, 500)];
        max_allocate_clamped_into(&queries, 2560, &mut scratch, &mut out);
        assert_eq!(out, max_allocate(&queries, 2560));
        // A 640-page partition cannot grant a 1321-page maximum, but the
        // clamped division still admits the most urgent query at the
        // partition-wide cap instead of starving the tenant.
        let queries = [q(1, 300, 37, 1321), q(2, 100, 37, 1321)];
        max_allocate_clamped_into(&queries, 640, &mut scratch, &mut out);
        assert_eq!(out, vec![(QueryId(2), 640)]);
        // A minimum that exceeds the budget still blocks (unservable).
        let queries = [q(1, 100, 700, 1321)];
        max_allocate_clamped_into(&queries, 640, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn per_partition_strategies_mix_max_and_minmax() {
        // Tenant 0 runs Max (one query at its maximum or nothing), tenant 1
        // runs MinMax (many minimums) — each within its own quota.
        let parts = [
            PartitionSpec {
                quota: 1400,
                soft: false,
            },
            PartitionSpec {
                quota: 1160,
                soft: false,
            },
        ];
        let queries: Vec<_> = (0..10)
            .map(|i| qt(i, 100 + i, 37, 1321, (i % 2) as u32))
            .collect();
        let mut scratch = PartitionScratch::default();
        let mut out = Grants::new();
        partitioned_allocate_with_into(
            &queries,
            &parts,
            &[PartitionStrategy::Max, PartitionStrategy::MinMax(None)],
            2560,
            &mut scratch,
            &mut out,
        );
        let t0: Vec<_> = out.iter().filter(|(id, _)| id.0 % 2 == 0).collect();
        let t1: Vec<_> = out.iter().filter(|(id, _)| id.0 % 2 == 1).collect();
        assert_eq!(t0.len(), 1, "Max admits a single 1321-page query in 1400");
        assert_eq!(t0[0].1, 1321);
        assert!(t1.len() > 1, "MinMax admits many minimums in 1160");
        assert!(granted_total(&out) <= 2560);
    }

    #[test]
    fn with_strategies_borrow_back_respects_the_borrower_strategy() {
        // Tenant 0 (soft, Max strategy) is alone: it borrows tenant 1's
        // idle quota, but still allocates whole maximums only.
        let parts = [
            PartitionSpec {
                quota: 1000,
                soft: true,
            },
            PartitionSpec {
                quota: 1560,
                soft: false,
            },
        ];
        let queries: Vec<_> = (0..4).map(|i| qt(i, 100 + i, 37, 1200, 0)).collect();
        let mut scratch = PartitionScratch::default();
        let mut out = Grants::new();
        partitioned_allocate_with_into(
            &queries,
            &parts,
            &[PartitionStrategy::Max, PartitionStrategy::MinMax(None)],
            2560,
            &mut scratch,
            &mut out,
        );
        // 1000-page quota fits no 1200-page maximum; borrowing the idle
        // 1560 admits exactly two whole maximums (2400 ≤ 2560).
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|&(_, p)| p == 1200));
    }

    #[test]
    #[should_panic(expected = "one strategy per partition")]
    fn with_strategies_rejects_length_mismatch() {
        let parts = [PartitionSpec {
            quota: 1000,
            soft: false,
        }];
        partitioned_allocate_with_into(
            &[],
            &parts,
            &[],
            2560,
            &mut PartitionScratch::default(),
            &mut Grants::new(),
        );
    }

    #[test]
    fn minmax_ed_shift_on_urgent_arrival() {
        // A newly arrived urgent query displaces top-up memory from the
        // formerly highest-priority query.
        let mut queries = vec![q(1, 500, 37, 1321), q(2, 600, 37, 1321)];
        let before = minmax_allocate(&queries, 1500, None);
        assert_eq!(before[0], (QueryId(1), 1321));
        queries.push(q(3, 100, 37, 1321));
        let after = minmax_allocate(&queries, 1500, None);
        assert_eq!(after[0], (QueryId(3), 1321), "urgent query gets the max");
        let g1 = after.iter().find(|&&(id, _)| id == QueryId(1)).unwrap().1;
        assert!(g1 < 1321, "old leader gives up its top-up");
    }
}
