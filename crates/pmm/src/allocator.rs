//! The memory-division algorithms (Section 3.2 and Table 5), as pure
//! functions from `(queries, total memory)` to per-query page grants.
//!
//! All three honor Earliest Deadline strictly: queries are considered in
//! deadline order and a query that cannot be served does not let a
//! lower-priority query overtake it (priority inversion through memory is
//! exactly what the paper's policies are designed to avoid).

use crate::types::{QueryDemand, QueryId};

/// Grants for the supplied queries; queries absent from the map receive no
/// memory (they wait, or are suspended).
pub type Grants = Vec<(QueryId, u32)>;

/// Sort a copy of the demands in ED order (deadline, then id for a stable
/// tie-break).
fn ed_order(queries: &[QueryDemand]) -> Vec<QueryDemand> {
    let mut sorted = queries.to_vec();
    sorted.sort_by_key(|q| (q.deadline, q.id));
    sorted
}

/// **Max** strategy: in ED order, each query gets its maximum demand or the
/// admission stops. No explicit MPL limit — memory itself is the limiter.
pub fn max_allocate(queries: &[QueryDemand], total: u32) -> Grants {
    let mut grants = Grants::new();
    let mut free = total;
    for q in ed_order(queries) {
        if q.max_mem <= free {
            free -= q.max_mem;
            grants.push((q.id, q.max_mem));
        } else {
            break; // strict ED: nobody overtakes a blocked urgent query
        }
    }
    grants
}

/// **MinMax-N** strategy: admit the `limit` most urgent queries (all of
/// them when `limit` is `None`, i.e. MinMax-∞). Pass one hands every
/// admitted query its minimum; pass two tops allocations up to the maximum
/// in ED order until memory runs out. The query on the boundary may end up
/// anywhere between its minimum and maximum (Section 3.2).
pub fn minmax_allocate(
    queries: &[QueryDemand],
    total: u32,
    limit: Option<u32>,
) -> Grants {
    let sorted = ed_order(queries);
    let n = limit.map(|l| l as usize).unwrap_or(usize::MAX);
    // Pass 1: minimums, in priority order, stopping when memory or the MPL
    // limit is exhausted.
    let mut grants = Grants::new();
    let mut free = total;
    for q in sorted.iter().take(n) {
        if q.min_mem <= free {
            free -= q.min_mem;
            grants.push((q.id, q.min_mem));
        } else {
            break;
        }
    }
    // Pass 2: top up to the maximum, again in priority order.
    for (i, grant) in grants.iter_mut().enumerate() {
        let want = sorted[i].max_mem - grant.1;
        let extra = want.min(free);
        grant.1 += extra;
        free -= extra;
        if free == 0 {
            break;
        }
    }
    grants
}

/// **Proportional-N** strategy: admit like MinMax-N, but divide memory so
/// every admitted query receives the same fraction of its maximum, subject
/// to at least its minimum. The fraction is found by water-filling: queries
/// whose proportional share would fall below their minimum are pinned at
/// the minimum and the fraction is recomputed over the rest.
pub fn proportional_allocate(
    queries: &[QueryDemand],
    total: u32,
    limit: Option<u32>,
) -> Grants {
    let sorted = ed_order(queries);
    let n = limit.map(|l| l as usize).unwrap_or(usize::MAX);
    // Admission: maximal ED prefix whose minimums fit.
    let mut admitted: Vec<&QueryDemand> = Vec::new();
    let mut min_sum = 0u64;
    for q in sorted.iter().take(n) {
        if min_sum + q.min_mem as u64 <= total as u64 {
            min_sum += q.min_mem as u64;
            admitted.push(q);
        } else {
            break;
        }
    }
    if admitted.is_empty() {
        return Grants::new();
    }
    // Water-fill the common fraction.
    let mut pinned = vec![false; admitted.len()];
    let mut frac = 1.0f64;
    for _ in 0..admitted.len() + 1 {
        let pinned_mem: u64 = admitted
            .iter()
            .zip(&pinned)
            .filter(|&(_, &p)| p)
            .map(|(q, _)| q.min_mem as u64)
            .sum();
        let unpinned_max: u64 = admitted
            .iter()
            .zip(&pinned)
            .filter(|&(_, &p)| !p)
            .map(|(q, _)| q.max_mem as u64)
            .sum();
        if unpinned_max == 0 {
            frac = 0.0;
            break;
        }
        frac = ((total as u64 - pinned_mem) as f64 / unpinned_max as f64).min(1.0);
        let mut newly_pinned = false;
        for (i, q) in admitted.iter().enumerate() {
            if !pinned[i] && (frac * q.max_mem as f64) < q.min_mem as f64 {
                pinned[i] = true;
                newly_pinned = true;
            }
        }
        if !newly_pinned {
            break;
        }
    }
    admitted
        .iter()
        .zip(&pinned)
        .map(|(q, &p)| {
            let pages = if p {
                q.min_mem
            } else {
                ((frac * q.max_mem as f64).floor() as u32).clamp(q.min_mem, q.max_mem)
            };
            (q.id, pages)
        })
        .collect()
}

/// Sum of granted pages (helper for invariant checks).
pub fn granted_total(grants: &Grants) -> u64 {
    grants.iter().map(|&(_, p)| p as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    fn q(id: u64, deadline: u64, min: u32, max: u32) -> QueryDemand {
        QueryDemand {
            id: QueryId(id),
            deadline: SimTime(deadline),
            min_mem: min,
            max_mem: max,
        }
    }

    #[test]
    fn max_allocates_in_deadline_order() {
        let queries = [q(1, 300, 37, 1321), q(2, 100, 37, 1321), q(3, 200, 37, 500)];
        let grants = max_allocate(&queries, 2560);
        // Query 2 (deadline 100) then query 3 (deadline 200, 500 pages).
        assert_eq!(grants, vec![(QueryId(2), 1321), (QueryId(3), 500)]);
    }

    #[test]
    fn max_blocks_rather_than_bypassing() {
        // The urgent query needs 2000; only 1500 free after it would be
        // blocked — the small later query must NOT overtake it.
        let queries = [q(1, 100, 37, 2000), q(2, 200, 10, 100)];
        let grants = max_allocate(&queries, 1500);
        assert!(grants.is_empty(), "strict ED admits nothing here");
    }

    #[test]
    fn max_fits_memory() {
        let queries: Vec<_> = (0..10).map(|i| q(i, 100 + i, 37, 1321)).collect();
        let grants = max_allocate(&queries, 2560);
        assert_eq!(
            grants.len(),
            1,
            "only one 1321-page query fits 2560 after two would exceed"
        );
        assert!(granted_total(&grants) <= 2560);
    }

    #[test]
    fn minmax_two_pass_shape() {
        // Paper: higher-priority queries end at their maximum, lower at
        // their minimum, one boundary query in between.
        let queries: Vec<_> = (0..5).map(|i| q(i, 100 + i, 37, 1321)).collect();
        let grants = minmax_allocate(&queries, 2560, None);
        assert_eq!(grants.len(), 5, "all five minimums fit (185 pages)");
        // Query 0: topped to max (1321). Remaining: 2560-5*37=2375-1284=...
        assert_eq!(grants[0], (QueryId(0), 1321));
        // Query 1 gets the leftover top-up (boundary query).
        let boundary = grants[1].1;
        assert!((37..=1321).contains(&boundary));
        // The rest stay at minimum.
        assert_eq!(grants[2].1, 37);
        assert_eq!(grants[3].1, 37);
        assert_eq!(grants[4].1, 37);
        assert_eq!(granted_total(&grants), 2560);
    }

    #[test]
    fn minmax_respects_mpl_limit() {
        let queries: Vec<_> = (0..8).map(|i| q(i, 100 + i, 10, 50)).collect();
        let grants = minmax_allocate(&queries, 10_000, Some(3));
        assert_eq!(grants.len(), 3);
        // Plenty of memory: all three at max.
        assert!(grants.iter().all(|&(_, p)| p == 50));
    }

    #[test]
    fn minmax_unlimited_admits_while_minimums_fit() {
        let queries: Vec<_> = (0..100).map(|i| q(i, 100 + i, 37, 1321)).collect();
        let grants = minmax_allocate(&queries, 2560, None);
        // 2560 / 37 = 69 — the paper's own number for the baseline.
        assert_eq!(grants.len(), 69);
        assert!(granted_total(&grants) <= 2560);
    }

    #[test]
    fn minmax_never_exceeds_memory_or_max() {
        let queries: Vec<_> = (0..20)
            .map(|i| q(i, 1000 - i * 10, 5 + (i % 7) as u32, 100 + (i * 13) as u32))
            .collect();
        for m in [50u32, 200, 1000, 5000] {
            let grants = minmax_allocate(&queries, m, None);
            assert!(granted_total(&grants) <= m as u64);
            for (id, pages) in &grants {
                let demand = queries.iter().find(|d| d.id == *id).unwrap();
                assert!(*pages >= demand.min_mem);
                assert!(*pages <= demand.max_mem);
            }
        }
    }

    #[test]
    fn proportional_equal_fractions() {
        let queries = [q(1, 100, 10, 1000), q(2, 200, 10, 500)];
        let grants = proportional_allocate(&queries, 750, None);
        // frac = 750 / 1500 = 0.5 → 500 and 250.
        assert_eq!(grants, vec![(QueryId(1), 500), (QueryId(2), 250)]);
    }

    #[test]
    fn proportional_pins_minimums() {
        // frac would give query 2 less than its minimum; it pins at min and
        // query 1 absorbs the rest.
        let queries = [q(1, 100, 10, 1000), q(2, 200, 90, 100)];
        let grants = proportional_allocate(&queries, 500, None);
        let g2 = grants.iter().find(|&&(id, _)| id == QueryId(2)).unwrap().1;
        assert_eq!(g2, 90, "pinned at minimum");
        let g1 = grants.iter().find(|&&(id, _)| id == QueryId(1)).unwrap().1;
        // (500-90)/1000 = 0.41 → 410.
        assert_eq!(g1, 410);
    }

    #[test]
    fn proportional_caps_at_max() {
        let queries = [q(1, 100, 10, 100), q(2, 200, 10, 100)];
        let grants = proportional_allocate(&queries, 10_000, None);
        assert!(grants.iter().all(|&(_, p)| p == 100));
    }

    #[test]
    fn proportional_respects_limit_and_memory() {
        let queries: Vec<_> = (0..50).map(|i| q(i, 100 + i, 37, 1321)).collect();
        let grants = proportional_allocate(&queries, 2560, Some(10));
        assert!(grants.len() <= 10);
        assert!(granted_total(&grants) <= 2560);
        for (_, p) in &grants {
            assert!(*p >= 37);
        }
    }

    #[test]
    fn all_strategies_handle_empty_input() {
        assert!(max_allocate(&[], 1000).is_empty());
        assert!(minmax_allocate(&[], 1000, None).is_empty());
        assert!(proportional_allocate(&[], 1000, Some(5)).is_empty());
    }

    #[test]
    fn deadline_ties_break_by_id() {
        let queries = [q(2, 100, 10, 600), q(1, 100, 10, 600)];
        let grants = max_allocate(&queries, 600);
        assert_eq!(grants[0].0, QueryId(1));
    }

    #[test]
    fn minmax_ed_shift_on_urgent_arrival() {
        // A newly arrived urgent query displaces top-up memory from the
        // formerly highest-priority query.
        let mut queries = vec![q(1, 500, 37, 1321), q(2, 600, 37, 1321)];
        let before = minmax_allocate(&queries, 1500, None);
        assert_eq!(before[0], (QueryId(1), 1321));
        queries.push(q(3, 100, 37, 1321));
        let after = minmax_allocate(&queries, 1500, None);
        assert_eq!(after[0], (QueryId(3), 1321), "urgent query gets the max");
        let g1 = after.iter().find(|&&(id, _)| id == QueryId(1)).unwrap().1;
        assert!(g1 < 1321, "old leader gives up its top-up");
    }
}
