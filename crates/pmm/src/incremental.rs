//! Incremental, hierarchical partitioned allocation: cost scales with
//! *churn*, not tenant population.
//!
//! The reference two-pass division ([`crate::partitioned_allocate_with_into`])
//! recomputes every partition on every allocation event — O(P) divides even
//! when a single tenant's demand set changed. [`IncrementalPartitioned`]
//! produces **bit-for-bit identical grants** while re-running only the
//! partitions that need it:
//!
//! * **Pass 1 (quota pass)** budgets are a pure function of `(total, quotas)`
//!   and are cached per epoch; a partition's quota division is redone only
//!   when its demand set or strategy is in the caller's [`DirtySet`].
//!   The pool of idle pages (`total − Σ pass-1 grants`) is maintained
//!   incrementally on the grant diffs of the redone partitions.
//! * **Pass 2 (borrow-back)** walks a two-level *partition tree*
//!   (root → tenant groups → tenants, [`GROUP_SIZE`] tenants per group).
//!   Each internal node caches the pages its subtree borrows beyond its
//!   quotas plus a *budget-limited* bit; a clean subtree whose cached
//!   borrow fits the pool in hand is settled from the cache in O(1) —
//!   the grants of all its tenants carry over untouched. Only dirty
//!   groups walk their members, and only members whose cached division
//!   is not provably pool-independent re-divide.
//!
//! The reuse certificate is the `limited` flag threaded out of the divide
//! functions: an *unlimited* division yields the same grants for every
//! budget ≥ its granted total (grants are monotone in the budget and were
//! not truncated by it), so a cached borrow-back outcome is valid at any
//! entry pool covering its borrowed pages. Limited divisions only reuse at
//! an identical pool. Both directions are integer-exact, which is what
//! makes bit-for-bit equality with the reference path provable (and
//! property-tested in `tests/properties.rs`).
//!
//! The caller owns demand grouping: it hands in one `Vec<QueryDemand>` per
//! partition (any order — divides ED-sort internally) and marks a partition
//! dirty whenever that group's membership, any member's demand, or the
//! partition's strategy changed since the previous call. Output is
//! *full-member emission*: one `(id, pages)` pair for **every** member of
//! every recomputed partition (0 for unadmitted members), and nothing for
//! carried-over partitions — exactly what an engine applying grant diffs
//! against held allocations needs.

use crate::allocator::{
    granted_total, AllocScratch, Grants, PartitionSpec, PartitionStrategy,
};
use crate::types::QueryDemand;

/// Tenants per internal node of the partition tree: the borrow-back walk is
/// O(P/32) group checks plus O(32) member checks per dirty group. 32 keeps
/// both terms ≈√P-balanced across the 10¹–10³ tenant range the `scale`
/// figure sweeps.
pub const GROUP_SIZE: usize = 32;

/// Which partitions' demand sets (or strategies) changed since the previous
/// incremental allocation: dense flags for O(1) dedup plus a change list,
/// so a feedback event costs O(changed), never O(tenants).
#[derive(Clone, Debug, Default)]
pub struct DirtySet {
    all: bool,
    flags: Vec<bool>,
    list: Vec<u32>,
}

impl DirtySet {
    /// An empty set able to hold partitions `0..n` without regrowing.
    pub fn new(n: usize) -> Self {
        DirtySet {
            all: false,
            flags: vec![false; n],
            list: Vec::new(),
        }
    }

    /// Mark partition `p` changed (idempotent; grows on demand).
    pub fn mark(&mut self, p: usize) {
        if p >= self.flags.len() {
            self.flags.resize(p + 1, false);
        }
        if !self.flags[p] {
            self.flags[p] = true;
            self.list.push(p as u32);
        }
    }

    /// Mark everything changed (total-memory shock, policy swap, …): the
    /// next allocation rebuilds from scratch.
    pub fn mark_all(&mut self) {
        self.all = true;
    }

    /// Forget all marks.
    pub fn clear(&mut self) {
        for &p in &self.list {
            self.flags[p as usize] = false;
        }
        self.list.clear();
        self.all = false;
    }

    /// True when nothing is marked.
    pub fn is_empty(&self) -> bool {
        !self.all && self.list.is_empty()
    }

    /// True after [`DirtySet::mark_all`].
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// Is partition `p` marked (individually — not via `mark_all`)?
    pub fn contains(&self, p: usize) -> bool {
        self.flags.get(p).copied().unwrap_or(false)
    }

    /// The individually marked partitions, in marking order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.list.iter().map(|&p| p as usize)
    }

    /// Count of individually marked partitions.
    pub fn len(&self) -> usize {
        self.list.len()
    }
}

/// Cached borrow-back outcome of one soft partition.
#[derive(Clone, Debug)]
struct Pass2Cache {
    /// Free pool at entry when this outcome was computed (`u64::MAX` =
    /// never computed — reuse is impossible, the pool is ≤ `u32::MAX`).
    pool_in: u64,
    /// The borrow-back division was adopted (its total ≥ the quota pass's);
    /// the adopted grants live in `grants`. When `false` the partition's
    /// final grants are its pass-1 grants.
    taken: bool,
    /// Adopted borrow-back grants (meaningful when `taken`).
    grants: Grants,
    /// Granted total of the borrow-back division (adopted or not).
    used: u64,
    /// Pages borrowed beyond the quota pass: `used − pass-1 total` when
    /// taken, else 0. Settling this partition from cache costs the pool
    /// exactly `extra`.
    extra: u64,
    /// The division may depend on the pool (budget-limited divide, budget
    /// clamped at `u32::MAX`, or skipped at pool 0): reuse only at an
    /// identical pool. Conservative-true is safe — it merely re-divides.
    limited: bool,
    /// Pool was 0 at compute time: the reference path skips the partition
    /// outright, final grants are pass-1's.
    skipped: bool,
}

impl Default for Pass2Cache {
    fn default() -> Self {
        Pass2Cache {
            pool_in: u64::MAX,
            taken: false,
            grants: Grants::new(),
            used: 0,
            extra: 0,
            limited: true,
            skipped: false,
        }
    }
}

/// One internal node of the partition tree: cached aggregates over a run of
/// [`GROUP_SIZE`] consecutive partitions.
#[derive(Clone, Copy, Debug, Default)]
struct GroupAgg {
    /// Σ `extra` over the group's soft members: what settling the whole
    /// subtree from cache costs the pool.
    extra: u64,
    /// Any member's cached outcome is pool-dependent (limited or skipped):
    /// the group cannot be settled wholesale, its members must be checked.
    limited: bool,
}

/// Incremental counterpart of [`crate::partitioned_allocate_with_into`]:
/// same partitions, same strategies, bit-for-bit identical grants, but each
/// call re-divides only dirty partitions plus the (usually few) partitions
/// whose borrow-back outcome the shifted pool invalidates.
///
/// Contract: the caller marks a partition in the [`DirtySet`] whenever its
/// demand group or its strategy entry changed since the previous call; clean
/// partitions' `groups[p]` and `strategies[p]` must be unchanged. A changed
/// `total` or [`DirtySet::mark_all`] triggers a full rebuild (which is the
/// reference algorithm verbatim, caches filled as it goes).
#[derive(Debug)]
pub struct IncrementalPartitioned {
    partitions: Vec<PartitionSpec>,
    group_size: usize,
    valid: bool,
    total: u32,
    /// Pass-1 budget per partition — quotas capped first-declared-first
    /// against oversubscription; pure function of `(total, quotas)`.
    budgets: Vec<u32>,
    strategies: Vec<PartitionStrategy>,
    /// Cached quota-pass grants per partition.
    pass1: Vec<Grants>,
    pass1_used: Vec<u64>,
    /// Σ `pass1_used` — maintained on pass-1 grant diffs; the borrow pool
    /// is `total − used_total`.
    used_total: u64,
    pass2: Vec<Pass2Cache>,
    /// The partition tree's internal nodes, one per [`GROUP_SIZE`] run.
    tree: Vec<GroupAgg>,
    /// Per-call marks (cleared by list walk, so an idle call stays O(P/B)).
    member_touched: Vec<bool>,
    group_touched: Vec<bool>,
    touched_members: Vec<u32>,
    touched_groups: Vec<u32>,
    alloc: AllocScratch,
    emit: AllocScratch,
    regrant: Grants,
}

impl IncrementalPartitioned {
    /// Incremental allocator over `partitions` (fixed for its lifetime).
    ///
    /// # Panics
    /// Panics on an empty partition table — the degenerate un-partitioned
    /// case has no dirty-set structure to exploit; use the plain policies.
    pub fn new(partitions: Vec<PartitionSpec>) -> Self {
        Self::with_group_size(partitions, GROUP_SIZE)
    }

    /// [`IncrementalPartitioned::new`] with an explicit tree fan-out;
    /// `group_size` 1 degenerates to a flat per-partition borrow-back scan
    /// (the before/after of the `partition/tree_vs_flat_borrow` microbench).
    ///
    /// # Panics
    /// Panics on an empty partition table or a zero `group_size`.
    pub fn with_group_size(partitions: Vec<PartitionSpec>, group_size: usize) -> Self {
        assert!(
            !partitions.is_empty(),
            "IncrementalPartitioned needs at least one partition"
        );
        assert!(group_size >= 1, "group_size must be at least 1");
        IncrementalPartitioned {
            partitions,
            group_size,
            valid: false,
            total: 0,
            budgets: Vec::new(),
            strategies: Vec::new(),
            pass1: Vec::new(),
            pass1_used: Vec::new(),
            used_total: 0,
            pass2: Vec::new(),
            tree: Vec::new(),
            member_touched: Vec::new(),
            group_touched: Vec::new(),
            touched_members: Vec::new(),
            touched_groups: Vec::new(),
            alloc: AllocScratch::default(),
            emit: AllocScratch::default(),
            regrant: Grants::new(),
        }
    }

    /// The partition table in force.
    pub fn partitions(&self) -> &[PartitionSpec] {
        &self.partitions
    }

    /// Drop every cache: the next call rebuilds from scratch.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Divide `total` among `groups` exactly like
    /// [`crate::partitioned_allocate_with_into`] over the concatenated
    /// groups, re-dividing only what `dirty` (plus pool shifts) requires.
    ///
    /// `out` receives one `(id, pages)` pair for every member of every
    /// *recomputed* partition — explicit zeros for unadmitted members —
    /// and nothing for partitions whose grants carried over.
    pub fn allocate_dirty_into(
        &mut self,
        groups: &[Vec<QueryDemand>],
        strategies: &[PartitionStrategy],
        total: u32,
        dirty: &DirtySet,
        out: &mut Grants,
    ) {
        let n = self.partitions.len();
        assert_eq!(groups.len(), n, "one demand group per partition");
        assert_eq!(strategies.len(), n, "one strategy per partition");
        out.clear();
        if !self.valid || total != self.total || dirty.is_all() {
            self.rebuild(groups, strategies, total, out);
            return;
        }
        for p in dirty.iter() {
            self.touch(p.min(n - 1));
        }
        // Pass 1: re-divide dirty partitions' quotas; the pool follows the
        // grant diffs.
        for k in 0..self.touched_members.len() {
            let j = self.touched_members[k] as usize;
            self.strategies[j] = strategies[j];
            let _ = self.strategies[j].divide_flagged(
                &groups[j],
                self.budgets[j],
                &mut self.alloc,
                &mut self.pass1[j],
            );
            let new_used = granted_total(&self.pass1[j]);
            self.used_total = self.used_total - self.pass1_used[j] + new_used;
            self.pass1_used[j] = new_used;
        }
        let mut pool = (total as u64).saturating_sub(self.used_total);
        // Pass 2: walk the tree; settle clean, unlimited, covered subtrees
        // from their cached borrow totals.
        let ngroups = n.div_ceil(self.group_size);
        for gi in 0..ngroups {
            let agg = self.tree[gi];
            if !self.group_touched[gi] && !agg.limited && pool >= agg.extra {
                pool -= agg.extra;
                continue;
            }
            pool = self.walk_group(gi, groups, pool, out);
        }
        for k in 0..self.touched_members.len() {
            let j = self.touched_members[k] as usize;
            self.member_touched[j] = false;
        }
        self.touched_members.clear();
        for k in 0..self.touched_groups.len() {
            let g = self.touched_groups[k] as usize;
            self.group_touched[g] = false;
        }
        self.touched_groups.clear();
    }

    /// Full reference rebuild: the two-pass division verbatim, filling every
    /// cache and emitting every partition.
    fn rebuild(
        &mut self,
        groups: &[Vec<QueryDemand>],
        strategies: &[PartitionStrategy],
        total: u32,
        out: &mut Grants,
    ) {
        let n = self.partitions.len();
        self.total = total;
        self.strategies.clear();
        self.strategies.extend_from_slice(strategies);
        self.budgets.clear();
        let mut unreserved = total;
        for spec in &self.partitions {
            let budget = spec.quota.min(unreserved);
            unreserved -= budget;
            self.budgets.push(budget);
        }
        self.pass1.resize_with(n, Grants::new);
        self.pass1_used.clear();
        self.pass1_used.resize(n, 0);
        self.pass2.clear();
        self.pass2.resize(n, Pass2Cache::default());
        for (j, group) in groups.iter().enumerate() {
            let _ = self.strategies[j].divide_flagged(
                group,
                self.budgets[j],
                &mut self.alloc,
                &mut self.pass1[j],
            );
            self.pass1_used[j] = granted_total(&self.pass1[j]);
        }
        self.used_total = self.pass1_used.iter().sum();
        let mut pool = (total as u64).saturating_sub(self.used_total);
        let ngroups = n.div_ceil(self.group_size);
        self.tree.clear();
        self.tree.resize(ngroups, GroupAgg::default());
        for gi in 0..ngroups {
            let g0 = gi * self.group_size;
            let end = (g0 + self.group_size).min(n);
            let mut agg = GroupAgg::default();
            for j in g0..end {
                if !self.partitions[j].soft {
                    emit_partition(&mut self.emit, &groups[j], &self.pass1[j], out);
                    continue;
                }
                pool = self.redo_pass2(j, groups, pool, out);
                let c = &self.pass2[j];
                agg.extra += c.extra;
                agg.limited |= c.limited;
            }
            self.tree[gi] = agg;
        }
        self.member_touched.clear();
        self.member_touched.resize(n, false);
        self.group_touched.clear();
        self.group_touched.resize(ngroups, false);
        self.touched_members.clear();
        self.touched_groups.clear();
        self.valid = true;
    }

    /// Mark partition `j` (and its tree group) for recomputation this call.
    fn touch(&mut self, j: usize) {
        if !self.member_touched[j] {
            self.member_touched[j] = true;
            self.touched_members.push(j as u32);
            let gi = j / self.group_size;
            if !self.group_touched[gi] {
                self.group_touched[gi] = true;
                self.touched_groups.push(gi as u32);
            }
        }
    }

    /// Member-by-member borrow-back over group `gi`, reusing cached
    /// outcomes where the pool in hand provably cannot change them.
    fn walk_group(
        &mut self,
        gi: usize,
        groups: &[Vec<QueryDemand>],
        mut pool: u64,
        out: &mut Grants,
    ) -> u64 {
        let n = self.partitions.len();
        let g0 = gi * self.group_size;
        let end = (g0 + self.group_size).min(n);
        let mut agg = GroupAgg::default();
        for j in g0..end {
            if !self.partitions[j].soft {
                if self.member_touched[j] {
                    emit_partition(&mut self.emit, &groups[j], &self.pass1[j], out);
                }
                continue;
            }
            let c = &self.pass2[j];
            let reusable = !self.member_touched[j]
                && if c.skipped {
                    pool == 0
                } else {
                    // An unlimited division is identical at every budget ≥
                    // its granted total: `own + pool ≥ used` covers both the
                    // adopted (`pool ≥ extra`) and rejected (`used < own`)
                    // cases. A limited one only at the very same pool.
                    pool == c.pool_in
                        || (!c.limited && c.used <= self.pass1_used[j] + pool)
                };
            if reusable {
                pool -= c.extra;
                agg.extra += c.extra;
                agg.limited |= c.limited;
                continue;
            }
            pool = self.redo_pass2(j, groups, pool, out);
            let c = &self.pass2[j];
            agg.extra += c.extra;
            agg.limited |= c.limited;
        }
        self.tree[gi] = agg;
        pool
    }

    /// Recompute (and cache, and emit) the borrow-back outcome of soft
    /// partition `j` at entry pool `pool` — the reference pass-2 body.
    fn redo_pass2(
        &mut self,
        j: usize,
        groups: &[Vec<QueryDemand>],
        pool: u64,
        out: &mut Grants,
    ) -> u64 {
        if pool == 0 {
            let c = &mut self.pass2[j];
            c.pool_in = 0;
            c.taken = false;
            c.used = 0;
            c.extra = 0;
            c.limited = true;
            c.skipped = true;
            emit_partition(&mut self.emit, &groups[j], &self.pass1[j], out);
            return pool;
        }
        let own = self.pass1_used[j];
        let budget_u64 = own + pool;
        let clamp = u32::MAX as u64;
        let budget = budget_u64.min(clamp) as u32;
        let limited = self.strategies[j].divide_flagged(
            &groups[j],
            budget,
            &mut self.alloc,
            &mut self.regrant,
        ) || budget_u64 > clamp;
        let used = granted_total(&self.regrant);
        // Mirror the reference guard: never shrink below the quota pass.
        let taken = used >= own;
        let extra = if taken { used - own } else { 0 };
        if taken {
            std::mem::swap(&mut self.pass2[j].grants, &mut self.regrant);
        }
        {
            let c = &mut self.pass2[j];
            c.pool_in = pool;
            c.taken = taken;
            c.used = used;
            c.extra = extra;
            c.limited = limited;
            c.skipped = false;
        }
        let final_grants = if taken {
            &self.pass2[j].grants
        } else {
            &self.pass1[j]
        };
        emit_partition(&mut self.emit, &groups[j], final_grants, out);
        pool - extra
    }
}

/// Full-member emission for one recomputed partition: every member in ED
/// order with its grant, explicit 0 for unadmitted members. Grants are
/// always an ED-ordered prefix-subset of the group, so one lockstep walk
/// suffices.
fn emit_partition(
    emit: &mut AllocScratch,
    group: &[QueryDemand],
    grants: &Grants,
    out: &mut Grants,
) {
    emit.ed_order(group);
    let mut k = 0;
    for q in emit.sorted() {
        if k < grants.len() && grants[k].0 == q.id {
            out.push(grants[k]);
            k += 1;
        } else {
            out.push((q.id, 0));
        }
    }
    debug_assert_eq!(k, grants.len(), "grants must be a subset of the group");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{partitioned_allocate_with_into, PartitionScratch};
    use crate::types::QueryId;
    use simkit::SimTime;
    use std::collections::BTreeMap;

    fn qt(id: u64, deadline: u64, min: u32, max: u32, tenant: u32) -> QueryDemand {
        QueryDemand {
            id: QueryId(id),
            deadline: SimTime(deadline),
            min_mem: min,
            max_mem: max,
            tenant,
        }
    }

    /// Reference applied-grant map: run the full path over the concatenated
    /// groups and record every granted query (absent = 0 pages).
    fn full_map(
        groups: &[Vec<QueryDemand>],
        partitions: &[PartitionSpec],
        strategies: &[PartitionStrategy],
        total: u32,
    ) -> BTreeMap<u64, u32> {
        let queries: Vec<QueryDemand> =
            groups.iter().flat_map(|g| g.iter().copied()).collect();
        let mut scratch = PartitionScratch::default();
        let mut out = Grants::new();
        partitioned_allocate_with_into(
            &queries,
            partitions,
            strategies,
            total,
            &mut scratch,
            &mut out,
        );
        let mut map: BTreeMap<u64, u32> = queries.iter().map(|q| (q.id.0, 0)).collect();
        for (id, pages) in out {
            map.insert(id.0, pages);
        }
        map
    }

    /// Apply an incremental emission onto the carried-over state.
    fn apply(map: &mut BTreeMap<u64, u32>, out: &Grants) {
        for &(id, pages) in out {
            map.insert(id.0, pages);
        }
    }

    fn specs(n: usize, quota: u32, soft_mod: usize) -> Vec<PartitionSpec> {
        (0..n)
            .map(|i| PartitionSpec {
                quota,
                soft: soft_mod != 0 && i % soft_mod == 0,
            })
            .collect()
    }

    /// Randomized churn: incremental emissions applied over carried state
    /// must equal the full path's applied map every step, for flat and tree
    /// fan-outs, hard/soft mixes, strategy changes, and total shocks.
    #[test]
    fn incremental_matches_full_path_under_churn() {
        for &(nparts, group_size, soft_mod) in &[
            (1usize, 1usize, 1usize),
            (3, 32, 1),
            (7, 2, 2),
            (40, 32, 1),
            (40, 1, 3),
            (65, 32, 2),
        ] {
            let parts = specs(nparts, 120, soft_mod);
            let mut strategies: Vec<PartitionStrategy> = (0..nparts)
                .map(|i| {
                    if i % 3 == 0 {
                        PartitionStrategy::Max
                    } else {
                        PartitionStrategy::MinMax(Some(2 + (i % 4) as u32))
                    }
                })
                .collect();
            let mut inc =
                IncrementalPartitioned::with_group_size(parts.clone(), group_size);
            let mut groups: Vec<Vec<QueryDemand>> = vec![Vec::new(); nparts];
            let mut dirty = DirtySet::new(nparts);
            let mut out = Grants::new();
            let mut total = (nparts as u32) * 100;
            let mut inc_map: BTreeMap<u64, u32> = BTreeMap::new();
            let mut next_id = 0u64;
            let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ (nparts as u64) << 8;
            for round in 0..80u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(round | 1);
                // Churn a few partitions.
                let churn = 1 + (x % 3) as usize;
                for c in 0..churn {
                    let h = x.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(c as u64);
                    let t = (h % nparts as u64) as usize;
                    if h & 4 != 0 || groups[t].is_empty() {
                        groups[t].push(qt(
                            next_id,
                            100 + h % 700,
                            5 + (h % 40) as u32,
                            30 + (h % 200) as u32,
                            t as u32,
                        ));
                        next_id += 1;
                    } else {
                        let k = (h as usize / 8) % groups[t].len();
                        let gone = groups[t].swap_remove(k);
                        inc_map.remove(&gone.id.0);
                    }
                    dirty.mark(t);
                }
                // Occasionally flip a strategy (must be marked dirty).
                if x.is_multiple_of(7) {
                    let t = ((x >> 16) % nparts as u64) as usize;
                    strategies[t] = match strategies[t] {
                        PartitionStrategy::Max => PartitionStrategy::MinMax(None),
                        PartitionStrategy::MinMax(_) => PartitionStrategy::Max,
                    };
                    dirty.mark(t);
                }
                // Occasionally shock the total (forces a rebuild).
                if x.is_multiple_of(11) {
                    total = (nparts as u32) * (40 + (x % 160) as u32);
                }
                inc.allocate_dirty_into(&groups, &strategies, total, &dirty, &mut out);
                dirty.clear();
                apply(&mut inc_map, &out);
                // Drop entries for departed queries the full map won't have.
                let expect = full_map(&groups, &parts, &strategies, total);
                assert_eq!(
                    inc_map, expect,
                    "divergence at round {round} (P={nparts}, B={group_size}, soft%{soft_mod})"
                );
            }
        }
    }

    #[test]
    fn clean_call_emits_nothing() {
        let parts = specs(8, 200, 1);
        let strategies = vec![PartitionStrategy::MinMax(None); 8];
        let mut inc = IncrementalPartitioned::new(parts);
        let groups: Vec<Vec<QueryDemand>> = (0..8)
            .map(|t| vec![qt(t, 100 + t, 20, 300, t as u32)])
            .collect();
        let mut dirty = DirtySet::new(8);
        dirty.mark_all();
        let mut out = Grants::new();
        inc.allocate_dirty_into(&groups, &strategies, 1600, &dirty, &mut out);
        assert!(!out.is_empty(), "rebuild emits every partition");
        dirty.clear();
        inc.allocate_dirty_into(&groups, &strategies, 1600, &dirty, &mut out);
        assert!(out.is_empty(), "no churn → all grants carry over");
    }

    #[test]
    fn emission_covers_every_member_of_a_dirty_partition() {
        let parts = specs(2, 100, 0); // hard quotas
        let strategies = vec![PartitionStrategy::MinMax(None); 2];
        let mut inc = IncrementalPartitioned::new(parts);
        // Partition 0: two queries whose minimums both fit, then a churn
        // that leaves one unadmittable — it must be emitted with 0 pages.
        let mut groups = vec![
            vec![qt(0, 100, 40, 80, 0), qt(1, 200, 40, 80, 0)],
            vec![qt(10, 100, 40, 80, 1)],
        ];
        let mut dirty = DirtySet::new(2);
        dirty.mark_all();
        let mut out = Grants::new();
        inc.allocate_dirty_into(&groups, &strategies, 200, &dirty, &mut out);
        dirty.clear();
        // A new urgent hog squeezes query 1 out entirely.
        groups[0].push(qt(2, 50, 100, 100, 0));
        dirty.mark(0);
        inc.allocate_dirty_into(&groups, &strategies, 200, &dirty, &mut out);
        let g: BTreeMap<u64, u32> = out.iter().map(|&(id, p)| (id.0, p)).collect();
        assert_eq!(
            g.len(),
            3,
            "all three members of partition 0 emitted: {out:?}"
        );
        assert_eq!(g[&2], 100);
        assert_eq!(g[&1], 0, "squeezed-out member emitted with explicit 0");
        assert!(!g.contains_key(&10), "clean partition 1 not emitted");
    }

    #[test]
    fn borrow_flows_back_when_the_lender_wakes() {
        // Tenant 1 idle: soft tenant 0 borrows. Tenant 1 wakes (only IT is
        // dirty) — tenant 0's cached borrow no longer fits the pool and is
        // recomputed, returning the pages.
        let parts = vec![
            PartitionSpec {
                quota: 100,
                soft: true,
            },
            PartitionSpec {
                quota: 100,
                soft: false,
            },
        ];
        let strategies = vec![PartitionStrategy::MinMax(None); 2];
        let mut inc = IncrementalPartitioned::new(parts.clone());
        let mut groups = vec![vec![qt(0, 100, 50, 200, 0)], Vec::new()];
        let mut dirty = DirtySet::new(2);
        dirty.mark_all();
        let mut out = Grants::new();
        inc.allocate_dirty_into(&groups, &strategies, 200, &dirty, &mut out);
        dirty.clear();
        let mut map = BTreeMap::new();
        apply(&mut map, &out);
        assert_eq!(map[&0], 200, "borrowed up to its maximum");
        groups[1].push(qt(9, 10, 100, 100, 1));
        dirty.mark(1);
        inc.allocate_dirty_into(&groups, &strategies, 200, &dirty, &mut out);
        dirty.clear();
        apply(&mut map, &out);
        assert_eq!(map[&9], 100, "woken lender served from its quota");
        assert_eq!(map[&0], 100, "borrower recomputed back to its quota");
        assert_eq!(map, full_map(&groups, &parts, &strategies, 200));
    }

    #[test]
    fn dirty_set_marks_dedup_and_clear() {
        let mut d = DirtySet::new(4);
        assert!(d.is_empty());
        d.mark(2);
        d.mark(2);
        d.mark(7); // grows on demand
        assert_eq!(d.len(), 2);
        assert!(d.contains(2) && d.contains(7) && !d.contains(3));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![2, 7]);
        d.clear();
        assert!(d.is_empty() && !d.contains(2));
        d.mark_all();
        assert!(d.is_all() && !d.is_empty());
        d.clear();
        assert!(!d.is_all());
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn rejects_empty_partitions() {
        IncrementalPartitioned::new(Vec::new());
    }
}
