//! The policy interface and the static baseline algorithms of Table 5.

use crate::allocator::{
    max_allocate_into, minmax_allocate_into, proportional_allocate_into, AllocScratch,
    Grants,
};
use crate::incremental::DirtySet;
use crate::types::{BatchStats, QueryDemand, StrategyMode, SystemSnapshot, TracePoint};

/// A memory-management policy: the simulator consults it whenever the set
/// of live queries changes and feeds it batch statistics every `SampleSize`
/// completions.
pub trait MemoryPolicy {
    /// Short name for reports, e.g. `"MinMax-10"`.
    fn name(&self) -> String;

    /// Desired allocation for every live query, written into `out`
    /// (omitted queries receive no memory), reusing the caller-owned
    /// `scratch` for the ED sort. The simulator calls this on every
    /// reallocation event — it is the policy's primary entry point and
    /// allocation-free in steady state.
    fn allocate_into(
        &mut self,
        snapshot: &SystemSnapshot,
        scratch: &mut AllocScratch,
        out: &mut Grants,
    );

    /// Allocating convenience wrapper around
    /// [`MemoryPolicy::allocate_into`], for tests and one-shot callers that
    /// don't care about buffer reuse.
    fn allocate(&mut self, snapshot: &SystemSnapshot) -> Grants {
        let mut out = Grants::new();
        self.allocate_into(snapshot, &mut AllocScratch::default(), &mut out);
        out
    }

    /// True when the policy implements the incremental dirty-set allocation
    /// path ([`MemoryPolicy::allocate_dirty_into`]). The simulator then
    /// maintains per-partition demand groups and a churn [`DirtySet`]
    /// instead of rebuilding a full snapshot per reallocation event.
    fn supports_dirty_allocation(&self) -> bool {
        false
    }

    /// Incremental counterpart of [`MemoryPolicy::allocate_into`] for
    /// policies that opt in via
    /// [`MemoryPolicy::supports_dirty_allocation`]: `groups[p]` holds
    /// partition `p`'s live demands (any order), `dirty` the partitions
    /// whose demand set changed since the previous call (the policy may add
    /// its own marks, e.g. for strategy switches, before consuming it).
    /// `out` receives one `(id, pages)` pair for **every** member of every
    /// recomputed partition — explicit zeros included — and nothing for
    /// partitions whose grants carry over bit-for-bit. The applied result
    /// must be identical to [`MemoryPolicy::allocate_into`] over the
    /// concatenated groups.
    fn allocate_dirty_into(
        &mut self,
        total_memory: u32,
        groups: &[Vec<QueryDemand>],
        dirty: &mut DirtySet,
        out: &mut Grants,
    ) {
        let _ = (total_memory, groups, dirty, out);
        unreachable!("policy does not support dirty-set allocation");
    }

    /// Batch boundary callback (adaptive policies learn here).
    fn on_batch(&mut self, _stats: &BatchStats) {}

    /// True when the policy wants per-tenant feedback batches
    /// ([`MemoryPolicy::on_tenant_batch`]) in addition to — or instead of —
    /// the global [`MemoryPolicy::on_batch`]. The simulator only assembles
    /// per-tenant batches for multi-tenant configs, and only routes them to
    /// policies that ask.
    fn wants_tenant_feedback(&self) -> bool {
        false
    }

    /// Per-tenant batch boundary callback: `stats` covers only the queries
    /// billed to partition `tenant`, closed independently of other tenants'
    /// batches (each tenant fills its own `SampleSize` window). Shared
    /// resources (CPU, disks) have no per-tenant utilization, so those
    /// fields carry the system-wide readings over the tenant's window.
    fn on_tenant_batch(&mut self, _tenant: u32, _stats: &BatchStats) {}

    /// Current MPL limit, if the policy imposes one.
    fn target_mpl(&self) -> Option<u32> {
        None
    }

    /// The allocation strategy currently in force.
    fn mode(&self) -> StrategyMode;

    /// Decision trace for Figures 6 and 15 (adaptive policies only).
    fn trace(&self) -> &[TracePoint] {
        &[]
    }
}

/// The static **Max** algorithm.
#[derive(Default)]
pub struct MaxPolicy;

impl MemoryPolicy for MaxPolicy {
    fn name(&self) -> String {
        "Max".into()
    }

    fn allocate_into(
        &mut self,
        snapshot: &SystemSnapshot,
        scratch: &mut AllocScratch,
        out: &mut Grants,
    ) {
        max_allocate_into(&snapshot.queries, snapshot.total_memory, scratch, out);
    }

    fn mode(&self) -> StrategyMode {
        StrategyMode::Max
    }
}

/// The static **MinMax-N** algorithm (`None` = MinMax-∞, written plain
/// "MinMax" in the paper).
pub struct MinMaxPolicy {
    limit: Option<u32>,
}

impl MinMaxPolicy {
    /// MinMax with an MPL limit.
    pub fn with_limit(n: u32) -> Self {
        MinMaxPolicy { limit: Some(n) }
    }

    /// MinMax-∞.
    pub fn unlimited() -> Self {
        MinMaxPolicy { limit: None }
    }
}

impl MemoryPolicy for MinMaxPolicy {
    fn name(&self) -> String {
        match self.limit {
            Some(n) => format!("MinMax-{n}"),
            None => "MinMax".into(),
        }
    }

    fn allocate_into(
        &mut self,
        snapshot: &SystemSnapshot,
        scratch: &mut AllocScratch,
        out: &mut Grants,
    ) {
        minmax_allocate_into(
            &snapshot.queries,
            snapshot.total_memory,
            self.limit,
            scratch,
            out,
        );
    }

    fn target_mpl(&self) -> Option<u32> {
        self.limit
    }

    fn mode(&self) -> StrategyMode {
        StrategyMode::MinMax
    }
}

/// The static **Proportional-N** algorithm (`None` = Proportional-∞).
pub struct ProportionalPolicy {
    limit: Option<u32>,
}

impl ProportionalPolicy {
    /// Proportional with an MPL limit.
    pub fn with_limit(n: u32) -> Self {
        ProportionalPolicy { limit: Some(n) }
    }

    /// Proportional-∞.
    pub fn unlimited() -> Self {
        ProportionalPolicy { limit: None }
    }
}

impl MemoryPolicy for ProportionalPolicy {
    fn name(&self) -> String {
        match self.limit {
            Some(n) => format!("Proportional-{n}"),
            None => "Proportional".into(),
        }
    }

    fn allocate_into(
        &mut self,
        snapshot: &SystemSnapshot,
        scratch: &mut AllocScratch,
        out: &mut Grants,
    ) {
        proportional_allocate_into(
            &snapshot.queries,
            snapshot.total_memory,
            self.limit,
            scratch,
            out,
        );
    }

    fn target_mpl(&self) -> Option<u32> {
        self.limit
    }

    fn mode(&self) -> StrategyMode {
        StrategyMode::Proportional
    }
}

/// Forces the wrapped policy down the full-snapshot reference path by
/// reporting [`MemoryPolicy::supports_dirty_allocation`] `false` — the
/// control arm of the `scale` figure's incremental-vs-snapshot comparison
/// (cells named `snapshot/<policy>`). Everything else delegates.
pub struct SnapshotOnly {
    inner: Box<dyn MemoryPolicy>,
}

impl SnapshotOnly {
    /// Wrap `inner`, pinning it to the snapshot allocation path.
    pub fn new(inner: Box<dyn MemoryPolicy>) -> Self {
        SnapshotOnly { inner }
    }
}

impl MemoryPolicy for SnapshotOnly {
    fn name(&self) -> String {
        format!("snapshot/{}", self.inner.name())
    }

    fn allocate_into(
        &mut self,
        snapshot: &SystemSnapshot,
        scratch: &mut AllocScratch,
        out: &mut Grants,
    ) {
        self.inner.allocate_into(snapshot, scratch, out);
    }

    // supports_dirty_allocation deliberately NOT delegated: default false.

    fn on_batch(&mut self, stats: &BatchStats) {
        self.inner.on_batch(stats);
    }

    fn wants_tenant_feedback(&self) -> bool {
        self.inner.wants_tenant_feedback()
    }

    fn on_tenant_batch(&mut self, tenant: u32, stats: &BatchStats) {
        self.inner.on_tenant_batch(tenant, stats);
    }

    fn target_mpl(&self) -> Option<u32> {
        self.inner.target_mpl()
    }

    fn mode(&self) -> StrategyMode {
        self.inner.mode()
    }

    fn trace(&self) -> &[TracePoint] {
        self.inner.trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{QueryDemand, QueryId};
    use simkit::SimTime;

    fn snapshot(n: u64) -> SystemSnapshot {
        SystemSnapshot {
            now: SimTime::ZERO,
            total_memory: 2560,
            queries: (0..n)
                .map(|i| QueryDemand {
                    id: QueryId(i),
                    deadline: SimTime(100 + i),
                    min_mem: 37,
                    max_mem: 1321,
                    tenant: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn names() {
        assert_eq!(MaxPolicy.name(), "Max");
        assert_eq!(MinMaxPolicy::unlimited().name(), "MinMax");
        assert_eq!(MinMaxPolicy::with_limit(10).name(), "MinMax-10");
        assert_eq!(ProportionalPolicy::unlimited().name(), "Proportional");
        assert_eq!(ProportionalPolicy::with_limit(4).name(), "Proportional-4");
    }

    #[test]
    fn max_policy_admits_one_baseline_query() {
        let mut p = MaxPolicy;
        let grants = p.allocate(&snapshot(5));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].1, 1321);
    }

    #[test]
    fn minmax_policy_admits_many() {
        let mut p = MinMaxPolicy::unlimited();
        let grants = p.allocate(&snapshot(80));
        assert_eq!(grants.len(), 69);
    }

    #[test]
    fn limits_are_reported() {
        assert_eq!(MinMaxPolicy::with_limit(10).target_mpl(), Some(10));
        assert_eq!(MinMaxPolicy::unlimited().target_mpl(), None);
        assert_eq!(MaxPolicy.target_mpl(), None);
    }

    #[test]
    fn snapshot_only_delegates_but_pins_the_snapshot_path() {
        let mut p = SnapshotOnly::new(Box::new(MinMaxPolicy::with_limit(10)));
        assert_eq!(p.name(), "snapshot/MinMax-10");
        assert!(!p.supports_dirty_allocation());
        assert_eq!(p.target_mpl(), Some(10));
        assert_eq!(p.mode(), StrategyMode::MinMax);
        assert_eq!(
            p.allocate(&snapshot(80)),
            MinMaxPolicy::with_limit(10).allocate(&snapshot(80))
        );
    }

    #[test]
    fn proportional_spreads_memory() {
        let mut p = ProportionalPolicy::unlimited();
        let grants = p.allocate(&snapshot(4));
        assert_eq!(grants.len(), 4);
        // 2560 / (4 × 1321) ≈ 0.48 of max each, > min.
        for (_, pages) in &grants {
            assert!((400..=700).contains(pages), "grant {pages}");
        }
    }
}
