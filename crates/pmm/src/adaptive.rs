//! The Priority Memory Management algorithm (Section 3).
//!
//! PMM adapts two decisions to the workload:
//!
//! * **The allocation strategy** — it starts in Max mode and switches to
//!   MinMax when a batch shows (1) missed deadlines, (2) CPU *and* disks
//!   below `UtilLow`, (3) statistically non-zero admission waiting time, and
//!   (4) execution times statistically below the time constraints (all four
//!   conditions of Section 3.2, the tests at `AdaptConfLevel`). It reverts
//!   to Max when the MinMax target MPL falls to or below the average MPL
//!   that Max mode realized.
//! * **The target MPL** (in MinMax mode) — by *miss-ratio projection*:
//!   a least-squares quadratic of miss ratio against MPL, classified into
//!   the four curve types of Section 3.1.1, backed by the *resource
//!   utilization heuristic* of Section 3.1.2 when the projection fails or
//!   lacks data.
//!
//! PMM also monitors three workload characteristics and restarts itself
//! (dropping all learned statistics) when any of them shifts significantly
//! at `ChangeConfLevel` (Section 3.3).
//!
//! **PMM v2 — regime awareness.** The Section 3.3 tests watch *what* the
//! queries are (memory demand, operand I/Os, normalized constraints); under
//! a bursty MMPP arrival process the query mix never changes — only the
//! arrival intensity does — so v1 happily pools feedback batches that span
//! both MMPP states and projects from a curve that belongs to neither.
//! [`Pmm::regime_aware`] adds a detector over the windowed miss-ratio
//! series: when the last few batches sit at a significantly different
//! miss level than the batches before them, the learned statistics are
//! *segmented* at that point (projection fits and pooled evidence dropped,
//! mode and target kept) so the projection re-learns inside the new regime
//! instead of mixing both.

use crate::allocator::{max_allocate_into, minmax_allocate_into, AllocScratch, Grants};
use crate::policy::MemoryPolicy;
use crate::types::{BatchStats, StrategyMode, SystemSnapshot, TracePoint};
use simkit::metrics::Tally;
use stats::{
    mean_positive_test, means_differ_test, CurveShape, LinFit, QuadFit, SampleSummary,
};
use std::collections::VecDeque;

/// Default width (in feedback batches) of each half of the regime
/// detector's comparison window: the last `N` batches are tested against
/// the `N` before them. At the paper's `SampleSize` = 30 this gives ≥ 90
/// Bernoulli observations per side — comfortably past the large-sample
/// threshold of the z-test.
pub const REGIME_WINDOW_BATCHES: usize = 3;

/// Change detector over the windowed miss-ratio series (PMM v2).
///
/// Each feedback batch contributes one `(served, missed)` point. The
/// detector keeps the last `2 × window` points and tests the older half
/// against the newer half with the same two-sided difference-of-means test
/// PMM uses for its workload characteristics — each batch expands to
/// `served` Bernoulli observations, so a handful of batches already clears
/// [`stats::LARGE_SAMPLE_MIN`]. A rejection marks a regime switch: the
/// older half is discarded (it belongs to the previous regime) and the
/// caller segments its learned statistics.
#[derive(Clone, Debug)]
struct RegimeDetector {
    /// `(served, missed)` per batch, oldest first; at most `2 × window`.
    series: VecDeque<(u64, u64)>,
    window: usize,
    conf_level: f64,
}

impl RegimeDetector {
    fn new(window: usize, conf_level: f64) -> Self {
        RegimeDetector {
            series: VecDeque::new(),
            window: window.max(1),
            conf_level,
        }
    }

    /// Bernoulli summary of a run of batches: `n` = total served, mean =
    /// pooled miss ratio, unbiased p(1−p) variance.
    fn summarize<'a, I: Iterator<Item = &'a (u64, u64)>>(points: I) -> SampleSummary {
        let (served, missed) =
            points.fold((0u64, 0u64), |(s, m), &(bs, bm)| (s + bs, m + bm));
        if served == 0 {
            return SampleSummary::default();
        }
        let p = missed as f64 / served as f64;
        let var = if served > 1 {
            p * (1.0 - p) * served as f64 / (served - 1) as f64
        } else {
            0.0
        };
        SampleSummary::new(p, var, served)
    }

    /// Record one batch. Returns `true` when the newest `window` batches
    /// sit at a significantly different miss level than the `window`
    /// batches before them — a regime switch.
    fn observe(&mut self, served: u64, missed: u64) -> bool {
        self.series.push_back((served, missed));
        while self.series.len() > 2 * self.window {
            self.series.pop_front();
        }
        if self.series.len() < 2 * self.window {
            return false;
        }
        let old = Self::summarize(self.series.iter().take(self.window));
        let new = Self::summarize(self.series.iter().skip(self.window));
        if means_differ_test(old, new, self.conf_level) {
            // The old half belongs to the previous regime; the new half
            // seeds the next comparison window.
            for _ in 0..self.window {
                self.series.pop_front();
            }
            return true;
        }
        false
    }

    fn clear(&mut self) {
        self.series.clear();
    }
}

/// PMM tuning knobs (Table 1).
#[derive(Clone, Copy, Debug)]
pub struct PmmParams {
    /// `SampleSize` — re-evaluation frequency in query completions. The
    /// simulator owns batching; this is kept here so reports can show it.
    pub sample_size: u32,
    /// Lower edge of the desirable bottleneck-utilization range.
    pub util_low: f64,
    /// Upper edge of the desirable bottleneck-utilization range.
    pub util_high: f64,
    /// Confidence level of the strategy-switch tests (conditions 3 and 4).
    pub adapt_conf_level: f64,
    /// Confidence level of the workload-change tests.
    pub change_conf_level: f64,
    /// Safety cap on the target MPL (the paper needs none because its
    /// workloads are bounded; we keep the guard for degenerate configs).
    pub mpl_cap: u32,
}

impl Default for PmmParams {
    fn default() -> Self {
        PmmParams {
            sample_size: 30,
            util_low: 0.70,
            util_high: 0.85,
            adapt_conf_level: 0.95,
            change_conf_level: 0.99,
            mpl_cap: 512,
        }
    }
}

/// The PMM policy.
pub struct Pmm {
    params: PmmParams,
    mode: StrategyMode,
    target_mpl: u32,
    /// Quadratic (MPL, miss-ratio) fit — the miss-ratio projection state.
    miss_fit: QuadFit,
    /// Linear (MPL, bottleneck-utilization) fit — the RU heuristic state.
    util_fit: LinFit,
    /// Realized MPL while in Max mode (for the revert-to-Max condition).
    max_mode_mpl: Tally,
    /// Previous batch's workload characteristics, for change detection.
    prev_chars: Option<[SampleSummary; 3]>,
    /// Evidence pooled across Max-mode batches for the switch tests
    /// (conditions 3 and 4 need large samples; one batch is only
    /// `SampleSize` observations).
    wait_evidence: SampleSummary,
    slack_evidence: SampleSummary,
    trace: Vec<TracePoint>,
    batches_seen: u64,
    restarts: u64,
    /// Regime detector over the windowed miss-ratio series (`None` = the
    /// paper's v1 behavior).
    regime: Option<RegimeDetector>,
    /// Regime segmentations performed since construction.
    segments: u64,
}

impl Pmm {
    /// A fresh PMM instance in Max mode.
    pub fn new(params: PmmParams) -> Self {
        Pmm {
            params,
            mode: StrategyMode::Max,
            target_mpl: 1,
            miss_fit: QuadFit::new(),
            util_fit: LinFit::new(),
            max_mode_mpl: Tally::new(),
            prev_chars: None,
            wait_evidence: SampleSummary::default(),
            slack_evidence: SampleSummary::default(),
            trace: Vec::new(),
            batches_seen: 0,
            restarts: 0,
            regime: None,
            segments: 0,
        }
    }

    /// With the Table 1 defaults.
    pub fn with_defaults() -> Self {
        Pmm::new(PmmParams::default())
    }

    /// Regime-aware PMM (v2) with the Table 1 defaults and a
    /// [`REGIME_WINDOW_BATCHES`]-batch detector window. Reports as
    /// `"PMM-regime"`.
    pub fn regime_aware() -> Self {
        Pmm::with_regime(PmmParams::default(), REGIME_WINDOW_BATCHES)
    }

    /// Regime-aware PMM with explicit parameters: the miss-ratio series
    /// detector compares the last `window_batches` feedback batches against
    /// the `window_batches` before them at `params.change_conf_level`.
    pub fn with_regime(params: PmmParams, window_batches: usize) -> Self {
        let mut pmm = Pmm::new(params);
        pmm.regime = Some(RegimeDetector::new(
            window_batches,
            params.change_conf_level,
        ));
        pmm
    }

    /// The tuning parameters this instance runs with.
    pub fn params(&self) -> &PmmParams {
        &self.params
    }

    /// Number of PMM self-restarts caused by detected workload changes.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Regime switches detected on the miss-ratio series (always 0 for the
    /// v1 policy).
    pub fn regime_switches(&self) -> u64 {
        self.segments
    }

    /// Batches processed since the last restart.
    pub fn batches_seen(&self) -> u64 {
        self.batches_seen
    }

    /// The resource-utilization heuristic (Section 3.1.2):
    /// `MPL_new = (UtilLow + UtilHigh) / (2·Util_current) × MPL_current`,
    /// where `Util_current` comes from the least-squares utilization line
    /// evaluated at the current MPL (not just the latest reading).
    fn ru_heuristic(&self, current_mpl: f64, latest_util: f64) -> u32 {
        let util = self
            .util_fit
            .predict(current_mpl)
            .unwrap_or(latest_util)
            .max(0.02); // guard against division blow-up at idle
        let mid = (self.params.util_low + self.params.util_high) / 2.0;
        let new = mid / util * current_mpl;
        (new.round() as u32).clamp(1, self.params.mpl_cap)
    }

    /// Detect a workload change by comparing each monitored characteristic
    /// with its last observed value (Section 3.3).
    fn workload_changed(&self, stats: &BatchStats) -> bool {
        let Some(prev) = &self.prev_chars else {
            return false;
        };
        let current = [
            stats.char_max_mem,
            stats.char_operand_ios,
            stats.char_norm_constraint,
        ];
        prev.iter()
            .zip(&current)
            .any(|(p, c)| means_differ_test(*p, *c, self.params.change_conf_level))
    }

    /// Forget everything and re-adapt (the PMM restart of Section 3.3).
    fn restart(&mut self, stats: &BatchStats) {
        self.mode = StrategyMode::Max;
        self.target_mpl = 1;
        self.miss_fit.reset();
        self.util_fit.reset();
        self.max_mode_mpl.reset();
        self.wait_evidence.reset();
        self.slack_evidence.reset();
        self.batches_seen = 0;
        self.restarts += 1;
        if let Some(det) = &mut self.regime {
            // A class-mix change invalidates the miss series along with
            // everything else.
            det.clear();
        }
        self.trace.push(TracePoint {
            at: stats.now,
            mode: self.mode,
            target_mpl: None,
        });
    }

    /// Segment the learned statistics at a detected regime switch (PMM v2).
    /// Unlike [`Pmm::restart`] this keeps the current mode and target —
    /// the workload *class* is unchanged, only its intensity moved — but
    /// drops the projection fits and pooled evidence so the next target
    /// is computed purely from post-switch batches.
    fn segment(&mut self, stats: &BatchStats) {
        self.miss_fit.reset();
        self.util_fit.reset();
        self.wait_evidence.reset();
        self.slack_evidence.reset();
        self.segments += 1;
        self.trace.push(TracePoint {
            at: stats.now,
            mode: self.mode,
            target_mpl: (self.mode == StrategyMode::MinMax).then_some(self.target_mpl),
        });
    }

    /// The four switch-to-MinMax conditions of Section 3.2. Conditions 3
    /// and 4 are large-sample tests over the evidence pooled since the last
    /// restart, because a single batch (`SampleSize` = 30 queries, fewer of
    /// them completed) rarely reaches the large-sample threshold alone.
    fn should_switch_to_minmax(&self, stats: &BatchStats) -> bool {
        let missed = stats.missed > 0;
        let under_utilized = stats.cpu_util < self.params.util_low
            && stats.disk_util < self.params.util_low;
        let memory_contended =
            mean_positive_test(self.wait_evidence, self.params.adapt_conf_level);
        let slack_available =
            mean_positive_test(self.slack_evidence, self.params.adapt_conf_level);
        missed && under_utilized && memory_contended && slack_available
    }

    /// Miss-ratio projection (Section 3.1.1): fit, classify, choose.
    fn project_target(&mut self, stats: &BatchStats) -> u32 {
        let fallback = self.ru_heuristic(self.target_mpl as f64, stats.bottleneck_util());
        let Some(curve) = self.miss_fit.solve() else {
            return fallback;
        };
        let lo = self.miss_fit.min_x();
        let hi = self.miss_fit.max_x();
        match curve.classify(lo, hi) {
            CurveShape::Bowl => {
                let vertex = curve.vertex().unwrap_or(fallback as f64);
                (vertex.round() as u32).clamp(1, self.params.mpl_cap)
            }
            CurveShape::Decreasing => {
                // One above the largest attempted MPL, unless the RU
                // heuristic argues for even higher.
                let candidate = (hi.round() as u32).saturating_add(1);
                candidate.max(fallback).clamp(1, self.params.mpl_cap)
            }
            CurveShape::Increasing => {
                // One below the smallest attempted MPL, or lower if the RU
                // heuristic says so.
                let candidate = (lo.round() as u32).saturating_sub(1).max(1);
                candidate.min(fallback).max(1)
            }
            CurveShape::Hill => fallback,
        }
    }
}

impl MemoryPolicy for Pmm {
    fn name(&self) -> String {
        if self.regime.is_some() {
            "PMM-regime".into()
        } else {
            "PMM".into()
        }
    }

    fn allocate_into(
        &mut self,
        snapshot: &SystemSnapshot,
        scratch: &mut AllocScratch,
        out: &mut Grants,
    ) {
        match self.mode {
            StrategyMode::Max => {
                max_allocate_into(&snapshot.queries, snapshot.total_memory, scratch, out);
            }
            StrategyMode::MinMax => minmax_allocate_into(
                &snapshot.queries,
                snapshot.total_memory,
                Some(self.target_mpl),
                scratch,
                out,
            ),
            StrategyMode::Proportional => unreachable!("PMM never uses Proportional"),
        }
    }

    fn on_batch(&mut self, stats: &BatchStats) {
        // 1. Workload change ⇒ restart (and skip learning from a batch that
        //    straddles the change).
        if self.workload_changed(stats) {
            self.prev_chars = Some([
                stats.char_max_mem,
                stats.char_operand_ios,
                stats.char_norm_constraint,
            ]);
            self.restart(stats);
            return;
        }
        self.prev_chars = Some([
            stats.char_max_mem,
            stats.char_operand_ios,
            stats.char_norm_constraint,
        ]);

        // 1b. Regime detection (v2 only): an MMPP intensity switch is
        //     invisible to the characteristic tests above (same query mix),
        //     but shows in the windowed miss-ratio series. Segment the
        //     learned batches there instead of mixing both regimes, and
        //     skip learning from the batch window that straddles the
        //     switch.
        if let Some(det) = &mut self.regime {
            if det.observe(stats.served, stats.missed) {
                self.segment(stats);
                return;
            }
        }
        self.batches_seen += 1;

        // 2. Record the batch's observations.
        let batch_mpl = if self.mode == StrategyMode::MinMax {
            // The MPL whose consequences we observed: the setting in force.
            self.target_mpl as f64
        } else {
            stats.realized_mpl.max(1.0)
        };
        self.util_fit.add(batch_mpl, stats.bottleneck_util());

        match self.mode {
            StrategyMode::Max => {
                self.max_mode_mpl.record(stats.realized_mpl);
                self.wait_evidence.merge(&stats.wait_time);
                self.slack_evidence.merge(&stats.slack_surplus);
                if self.should_switch_to_minmax(stats) {
                    self.mode = StrategyMode::MinMax;
                    // Initial target from the RU heuristic (the projection
                    // has no MinMax observations yet).
                    self.target_mpl = self
                        .ru_heuristic(
                            stats.realized_mpl.max(1.0),
                            stats.bottleneck_util(),
                        )
                        .max(2);
                    self.trace.push(TracePoint {
                        at: stats.now,
                        mode: self.mode,
                        target_mpl: Some(self.target_mpl),
                    });
                }
            }
            StrategyMode::MinMax => {
                // Only MinMax-mode batches inform the miss-ratio projection:
                // Max mode has no MPL setting to correlate with.
                self.miss_fit.add(batch_mpl, stats.miss_ratio());
                let new_target = self.project_target(stats);
                // Revert to Max when MinMax buys no extra concurrency
                // (Section 3.2's feedback check).
                let max_mpl = self.max_mode_mpl.mean();
                if self.max_mode_mpl.count() > 0 && (new_target as f64) <= max_mpl {
                    self.mode = StrategyMode::Max;
                    self.trace.push(TracePoint {
                        at: stats.now,
                        mode: self.mode,
                        target_mpl: None,
                    });
                } else if new_target != self.target_mpl {
                    self.target_mpl = new_target;
                    self.trace.push(TracePoint {
                        at: stats.now,
                        mode: self.mode,
                        target_mpl: Some(self.target_mpl),
                    });
                }
            }
            StrategyMode::Proportional => unreachable!(),
        }
    }

    fn target_mpl(&self) -> Option<u32> {
        (self.mode == StrategyMode::MinMax).then_some(self.target_mpl)
    }

    fn mode(&self) -> StrategyMode {
        self.mode
    }

    fn trace(&self) -> &[TracePoint] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{QueryDemand, QueryId};
    use simkit::SimTime;

    fn summary(mean: f64, var: f64, n: u64) -> SampleSummary {
        SampleSummary::new(mean, var, n)
    }

    /// A batch typical of the memory-bottlenecked baseline in Max mode:
    /// misses, idle resources, real waiting, plenty of slack.
    fn max_mode_struggle(now_s: u64) -> BatchStats {
        BatchStats {
            now: SimTime::from_secs(now_s),
            served: 30,
            missed: 8,
            realized_mpl: 1.8,
            cpu_util: 0.15,
            disk_util: 0.25,
            wait_time: summary(40.0, 100.0, 30),
            slack_surplus: summary(120.0, 400.0, 30),
            char_max_mem: summary(1321.0, 10_000.0, 30),
            char_operand_ios: summary(1200.0, 10_000.0, 30),
            char_norm_constraint: summary(0.2, 0.001, 30),
        }
    }

    fn minmax_batch(now_s: u64, mpl_effect: f64) -> BatchStats {
        BatchStats {
            now: SimTime::from_secs(now_s),
            served: 30,
            missed: (mpl_effect * 30.0) as u64,
            realized_mpl: 10.0,
            cpu_util: 0.3,
            disk_util: 0.45,
            wait_time: summary(2.0, 4.0, 30),
            slack_surplus: summary(100.0, 400.0, 30),
            char_max_mem: summary(1321.0, 10_000.0, 30),
            char_operand_ios: summary(1200.0, 10_000.0, 30),
            char_norm_constraint: summary(0.2, 0.001, 30),
        }
    }

    #[test]
    fn starts_in_max_mode() {
        let pmm = Pmm::with_defaults();
        assert_eq!(pmm.mode(), StrategyMode::Max);
        assert_eq!(pmm.target_mpl(), None);
    }

    #[test]
    fn switches_to_minmax_when_all_conditions_hold() {
        let mut pmm = Pmm::with_defaults();
        pmm.on_batch(&max_mode_struggle(100));
        assert_eq!(pmm.mode(), StrategyMode::MinMax);
        let target = pmm.target_mpl().unwrap();
        // RU heuristic from MPL 1.8 at util 0.25: 0.775/0.5 × 1.8 ≈ 3,
        // well above the Max-mode MPL.
        assert!(target >= 2, "target {target}");
        assert_eq!(pmm.trace().len(), 1);
    }

    #[test]
    fn does_not_switch_without_misses() {
        let mut pmm = Pmm::with_defaults();
        let mut b = max_mode_struggle(100);
        b.missed = 0;
        pmm.on_batch(&b);
        assert_eq!(pmm.mode(), StrategyMode::Max);
    }

    #[test]
    fn does_not_switch_when_resources_busy() {
        // High disk utilization means the bottleneck is the disk, not
        // memory: switching to MinMax would only cause thrashing.
        let mut pmm = Pmm::with_defaults();
        let mut b = max_mode_struggle(100);
        b.disk_util = 0.8;
        pmm.on_batch(&b);
        assert_eq!(pmm.mode(), StrategyMode::Max);
    }

    #[test]
    fn does_not_switch_without_waiting_evidence() {
        let mut pmm = Pmm::with_defaults();
        let mut b = max_mode_struggle(100);
        b.wait_time = summary(0.0, 1.0, 30);
        pmm.on_batch(&b);
        assert_eq!(pmm.mode(), StrategyMode::Max);
    }

    #[test]
    fn does_not_switch_when_constraints_already_tight() {
        let mut pmm = Pmm::with_defaults();
        let mut b = max_mode_struggle(100);
        b.slack_surplus = summary(-5.0, 25.0, 30); // exec times exceed constraints
        pmm.on_batch(&b);
        assert_eq!(pmm.mode(), StrategyMode::Max);
    }

    #[test]
    fn projection_converges_to_bowl_minimum() {
        // Feed PMM a synthetic concave miss-ratio curve with minimum at
        // MPL 10 and watch the target approach it.
        let mut pmm = Pmm::with_defaults();
        pmm.on_batch(&max_mode_struggle(0));
        assert_eq!(pmm.mode(), StrategyMode::MinMax);
        let curve = |mpl: f64| 0.10 + 0.002 * (mpl - 10.0) * (mpl - 10.0);
        for i in 0..20 {
            let mpl = pmm.target_mpl().unwrap() as f64;
            let mut b = minmax_batch(100 + i, 0.0);
            b.realized_mpl = mpl;
            b.missed = (curve(mpl) * 30.0).round() as u64;
            pmm.on_batch(&b);
            if pmm.mode() != StrategyMode::MinMax {
                panic!("reverted unexpectedly at iteration {i}");
            }
        }
        let final_target = pmm.target_mpl().unwrap();
        assert!(
            (7..=13).contains(&final_target),
            "target {final_target} should approach the optimum 10"
        );
    }

    #[test]
    fn reverts_to_max_when_target_collapses() {
        let mut pmm = Pmm::with_defaults();
        // Establish Max-mode average MPL ≈ 1.8 but prevent switching yet.
        let mut quiet = max_mode_struggle(0);
        quiet.missed = 0;
        pmm.on_batch(&quiet);
        pmm.on_batch(&max_mode_struggle(1));
        assert_eq!(pmm.mode(), StrategyMode::MinMax);
        // Now feed batches where higher MPL means more misses: the
        // projection pushes the target down to the Max-mode level.
        for i in 0..30 {
            let mpl = pmm.target_mpl().unwrap_or(1) as f64;
            let mut b = minmax_batch(10 + i, 0.0);
            b.realized_mpl = mpl;
            // Steep increasing curve: misses grow with MPL.
            b.missed = ((0.05 * mpl).min(0.9) * 30.0).round() as u64;
            pmm.on_batch(&b);
            if pmm.mode() == StrategyMode::Max {
                return; // reverted as expected
            }
        }
        panic!("PMM never reverted to Max");
    }

    #[test]
    fn workload_change_restarts_pmm() {
        let mut pmm = Pmm::with_defaults();
        pmm.on_batch(&max_mode_struggle(0));
        assert_eq!(pmm.mode(), StrategyMode::MinMax);
        pmm.on_batch(&minmax_batch(10, 0.1));
        assert!(pmm.batches_seen() >= 2);
        // The Small class arrives: max-mem demand drops 1321 → 111.
        let mut changed = minmax_batch(20, 0.1);
        changed.char_max_mem = summary(111.0, 100.0, 30);
        changed.char_operand_ios = summary(100.0, 64.0, 30);
        pmm.on_batch(&changed);
        assert_eq!(pmm.mode(), StrategyMode::Max, "restart returns to Max");
        assert_eq!(pmm.restarts(), 1);
        assert_eq!(pmm.batches_seen(), 0);
    }

    #[test]
    fn small_fluctuations_do_not_restart() {
        let mut pmm = Pmm::with_defaults();
        pmm.on_batch(&max_mode_struggle(0));
        let mut b = minmax_batch(10, 0.1);
        // 2% wiggle in the demand, large variance: not significant at 99%.
        b.char_max_mem = summary(1350.0, 200_000.0, 30);
        pmm.on_batch(&b);
        assert_eq!(pmm.restarts(), 0);
    }

    #[test]
    fn allocation_respects_mode() {
        let mut pmm = Pmm::with_defaults();
        let snap = SystemSnapshot {
            now: SimTime::ZERO,
            total_memory: 2560,
            queries: (0..10)
                .map(|i| QueryDemand {
                    id: QueryId(i),
                    deadline: SimTime(100 + i),
                    min_mem: 37,
                    max_mem: 1321,
                    tenant: 0,
                })
                .collect(),
        };
        // Max mode: a single query fits.
        assert_eq!(pmm.allocate(&snap).len(), 1);
        // After switching: target-MPL many queries.
        pmm.on_batch(&max_mode_struggle(0));
        let grants = pmm.allocate(&snap);
        let target = pmm.target_mpl().unwrap() as usize;
        assert_eq!(grants.len(), target.min(10));
    }

    #[test]
    fn ru_heuristic_centers_utilization() {
        let pmm = Pmm::with_defaults();
        // util 0.31 at MPL 10 → 0.775/0.62 ≈ 1.25 → target 25 at mpl 20...
        let t = pmm.ru_heuristic(10.0, 0.31);
        assert_eq!(t, 25);
        // Saturated resource → cut the MPL.
        let t = pmm.ru_heuristic(10.0, 0.97);
        assert!(t < 10, "target {t}");
    }

    #[test]
    fn regime_name_and_default_off() {
        assert_eq!(Pmm::with_defaults().name(), "PMM");
        assert_eq!(Pmm::regime_aware().name(), "PMM-regime");
        assert_eq!(Pmm::with_defaults().regime_switches(), 0);
    }

    #[test]
    fn regime_detector_fires_on_level_shift_and_segments_the_fit() {
        let mut pmm = Pmm::regime_aware();
        pmm.on_batch(&max_mode_struggle(0));
        assert_eq!(pmm.mode(), StrategyMode::MinMax);
        // A calm regime at the warm-up batch's own miss level (~27%), so
        // the Max→MinMax transition itself does not read as a switch.
        for i in 0..6 {
            pmm.on_batch(&minmax_batch(10 + i, 0.27));
        }
        assert_eq!(pmm.regime_switches(), 0, "stationary series: no switch");
        let batches_before = pmm.batches_seen();
        // The burst state arrives: miss level jumps to 60%.
        let mut fired = false;
        for i in 0..6 {
            pmm.on_batch(&minmax_batch(100 + i, 0.6));
            if pmm.regime_switches() > 0 {
                fired = true;
                break;
            }
        }
        assert!(fired, "60% vs 3% over 90-query halves must reject");
        // Segmentation keeps the mode but drops the projection data: the
        // next MinMax batch starts a fresh fit (min_x == max_x == target).
        assert_eq!(pmm.mode(), StrategyMode::MinMax, "segment keeps the mode");
        assert!(
            pmm.batches_seen() <= batches_before + 6,
            "segmentation does not restart the batch counter"
        );
        assert_eq!(pmm.restarts(), 0, "a regime switch is not a restart");
    }

    #[test]
    fn regime_detector_ignores_stationary_noise() {
        let mut pmm = Pmm::regime_aware();
        pmm.on_batch(&max_mode_struggle(0));
        // 20 batches fluctuating between 10% and 17% misses: within noise
        // for 90-observation halves at 99% confidence.
        for i in 0..20 {
            let frac = if i % 2 == 0 { 0.10 } else { 0.17 };
            pmm.on_batch(&minmax_batch(10 + i, frac));
        }
        assert_eq!(pmm.regime_switches(), 0, "no switch on stationary noise");
    }

    #[test]
    fn workload_restart_clears_the_regime_series() {
        let mut pmm = Pmm::regime_aware();
        pmm.on_batch(&max_mode_struggle(0));
        for i in 0..5 {
            pmm.on_batch(&minmax_batch(10 + i, 0.03));
        }
        // Class mix changes → full restart; the miss series must not carry
        // pre-restart batches into the next comparison.
        let mut changed = minmax_batch(100, 0.03);
        changed.char_max_mem = summary(111.0, 100.0, 30);
        changed.char_operand_ios = summary(100.0, 64.0, 30);
        pmm.on_batch(&changed);
        assert_eq!(pmm.restarts(), 1);
        let det = pmm.regime.as_ref().expect("regime-aware");
        assert!(det.series.is_empty(), "restart clears the series");
    }

    #[test]
    fn trace_records_decisions() {
        let mut pmm = Pmm::with_defaults();
        pmm.on_batch(&max_mode_struggle(0));
        pmm.on_batch(&minmax_batch(10, 0.2));
        assert!(!pmm.trace().is_empty());
        assert_eq!(pmm.trace()[0].mode, StrategyMode::MinMax);
    }
}
