//! Multi-tenant memory partitioning as a [`MemoryPolicy`].
//!
//! [`PartitionedPolicy`] wraps [`crate::allocator::partitioned_allocate`]:
//! each tenant partition gets its quota allocated by the two-pass MinMax
//! machinery, and soft partitions may borrow pages other tenants leave idle
//! (handed back automatically at the next allocation event — see the
//! allocator docs). This is the enforcement half of the `workload` crate's
//! `TenantSpec`; the simulator stamps each query's partition into
//! [`crate::QueryDemand::tenant`].

use crate::allocator::{
    partitioned_allocate_into, AllocScratch, Grants, PartitionScratch, PartitionSpec,
    PartitionStrategy,
};
use crate::incremental::{DirtySet, IncrementalPartitioned};
use crate::policy::MemoryPolicy;
use crate::types::{QueryDemand, StrategyMode, SystemSnapshot};

/// MinMax-per-partition multi-tenant policy.
pub struct PartitionedPolicy {
    partitions: Vec<PartitionSpec>,
    limit: Option<u32>,
    /// Per-partition group/grant buffers reused across allocation events
    /// (the caller-owned `AllocScratch` only covers the shared ED sort).
    scratch: PartitionScratch,
    /// Dirty-set allocation state, built on first use (after the builders
    /// have finished shaping `partitions`). Strategies are static here —
    /// MinMax-`limit` everywhere — so only demand churn dirties a partition.
    incremental: Option<IncrementalPartitioned>,
    strategies: Vec<PartitionStrategy>,
}

impl PartitionedPolicy {
    /// Partitioned MinMax-∞ over `partitions`.
    pub fn new(partitions: Vec<PartitionSpec>) -> Self {
        PartitionedPolicy {
            partitions,
            limit: None,
            scratch: PartitionScratch::default(),
            incremental: None,
            strategies: Vec::new(),
        }
    }

    /// Impose a per-partition MPL limit (MinMax-N within each partition).
    pub fn with_limit(mut self, n: u32) -> Self {
        self.limit = Some(n);
        self
    }

    /// Make every partition soft (quota + borrowing) — the "shared when
    /// idle" configuration the tenants experiment sweeps against hard
    /// isolation.
    pub fn soften(mut self) -> Self {
        for p in &mut self.partitions {
            p.soft = true;
        }
        self
    }

    /// The partition table in force.
    pub fn partitions(&self) -> &[PartitionSpec] {
        &self.partitions
    }
}

impl MemoryPolicy for PartitionedPolicy {
    fn name(&self) -> String {
        let flavor = if self.partitions.iter().all(|p| p.soft) {
            "Partitioned-soft"
        } else {
            "Partitioned"
        };
        match self.limit {
            Some(n) => format!("{flavor}-{n}"),
            None => flavor.into(),
        }
    }

    fn allocate_into(
        &mut self,
        snapshot: &SystemSnapshot,
        _scratch: &mut AllocScratch,
        out: &mut Grants,
    ) {
        partitioned_allocate_into(
            &snapshot.queries,
            &self.partitions,
            snapshot.total_memory,
            self.limit,
            &mut self.scratch,
            out,
        );
    }

    fn supports_dirty_allocation(&self) -> bool {
        // The empty table degenerates to un-partitioned MinMax, which has
        // no dirty-set structure; it stays on the snapshot path.
        !self.partitions.is_empty()
    }

    fn allocate_dirty_into(
        &mut self,
        total_memory: u32,
        groups: &[Vec<QueryDemand>],
        dirty: &mut DirtySet,
        out: &mut Grants,
    ) {
        if self.incremental.is_none() {
            self.incremental = Some(IncrementalPartitioned::new(self.partitions.clone()));
            self.strategies =
                vec![PartitionStrategy::MinMax(self.limit); self.partitions.len()];
        }
        self.incremental.as_mut().unwrap().allocate_dirty_into(
            groups,
            &self.strategies,
            total_memory,
            dirty,
            out,
        );
    }

    fn target_mpl(&self) -> Option<u32> {
        // The limit is per partition; the system-wide ceiling is limit × P.
        self.limit
            .map(|n| n.saturating_mul(self.partitions.len().max(1) as u32))
    }

    fn mode(&self) -> StrategyMode {
        StrategyMode::MinMax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{QueryDemand, QueryId};
    use simkit::SimTime;

    fn snapshot(per_tenant: u64, tenants: u32) -> SystemSnapshot {
        SystemSnapshot {
            now: SimTime::ZERO,
            total_memory: 2560,
            queries: (0..per_tenant * tenants as u64)
                .map(|i| QueryDemand {
                    id: QueryId(i),
                    deadline: SimTime(100 + i),
                    min_mem: 37,
                    max_mem: 1321,
                    tenant: (i % tenants as u64) as u32,
                })
                .collect(),
        }
    }

    fn halves(soft: bool) -> Vec<PartitionSpec> {
        vec![
            PartitionSpec { quota: 1280, soft },
            PartitionSpec { quota: 1280, soft },
        ]
    }

    #[test]
    fn names_reflect_flavor_and_limit() {
        assert_eq!(PartitionedPolicy::new(halves(false)).name(), "Partitioned");
        assert_eq!(
            PartitionedPolicy::new(halves(false)).soften().name(),
            "Partitioned-soft"
        );
        assert_eq!(
            PartitionedPolicy::new(halves(true)).with_limit(4).name(),
            "Partitioned-soft-4"
        );
    }

    #[test]
    fn allocation_respects_pool_and_serves_both_tenants() {
        let mut p = PartitionedPolicy::new(halves(false));
        let snap = snapshot(6, 2);
        let grants = p.allocate(&snap);
        let total: u64 = grants.iter().map(|&(_, g)| g as u64).sum();
        assert!(total <= 2560);
        let tenants_served: std::collections::BTreeSet<u64> =
            grants.iter().map(|(id, _)| id.0 % 2).collect();
        assert_eq!(tenants_served.len(), 2, "both partitions admit work");
    }

    #[test]
    fn target_mpl_scales_with_partitions() {
        let p = PartitionedPolicy::new(halves(false)).with_limit(3);
        assert_eq!(p.target_mpl(), Some(6));
        assert_eq!(PartitionedPolicy::new(halves(false)).target_mpl(), None);
        assert_eq!(p.mode(), StrategyMode::MinMax);
    }

    #[test]
    fn soften_flips_every_partition() {
        let p = PartitionedPolicy::new(halves(false)).soften();
        assert!(p.partitions().iter().all(|s| s.soft));
    }
}
