//! PMM v2: an independent PMM feedback controller per tenant partition.
//!
//! [`crate::PartitionedPolicy`] isolates tenants with *static* MinMax
//! inside each quota — the right control experiment, but blind to each
//! tenant's own workload: a tenant whose queries would benefit from Max
//! mode (memory-rich, low contention) is squeezed the same way as one that
//! needs MinMax's admission throttling. [`TenantPmm`] instead runs one
//! full [`Pmm`] instance per partition. Each controller receives *its own*
//! feedback batches (the simulator closes a `SampleSize` window per tenant
//! — see `MemoryPolicy::on_tenant_batch`), runs its own strategy-switch
//! tests, miss-ratio projection, and workload-change detection, and
//! publishes a per-partition [`PartitionStrategy`]. The allocator then
//! arbitrates: quotas first (each divided by its tenant's current
//! strategy), then soft-quota borrow-back of idle pages in declaration
//! order — so adaptivity happens *within* the isolation contract, never
//! across it.

use crate::adaptive::{Pmm, PmmParams};
use crate::allocator::{
    partitioned_allocate_with_into, AllocScratch, Grants, PartitionScratch,
    PartitionSpec, PartitionStrategy,
};
use crate::incremental::{DirtySet, IncrementalPartitioned};
use crate::policy::MemoryPolicy;
use crate::types::{BatchStats, QueryDemand, StrategyMode, SystemSnapshot, TracePoint};

/// Adaptive multi-tenant policy: one [`Pmm`] controller per partition.
pub struct TenantPmm {
    partitions: Vec<PartitionSpec>,
    /// The parameter set every controller runs with (kept so builder
    /// upgrades like [`TenantPmm::regime_aware`] preserve it).
    params: PmmParams,
    controllers: Vec<Pmm>,
    /// Per-partition strategies, refreshed from the controllers before
    /// every allocation (reused buffer).
    strategies: Vec<PartitionStrategy>,
    scratch: PartitionScratch,
    /// Merged decision trace: every controller's trace points, appended in
    /// the order the decisions were taken (tenant batches close in virtual
    /// time order, so the merge is chronological).
    trace: Vec<TracePoint>,
    /// How many trace points of each controller have been merged already.
    trace_seen: Vec<usize>,
    regime_aware: bool,
    /// Dirty-set allocation state, built on first use (after the builders
    /// have finished shaping `partitions`).
    incremental: Option<IncrementalPartitioned>,
    /// Partitions whose controller switched strategy since the last
    /// allocation — they must re-divide even if their demand set did not
    /// change, so the allocator merges them into the caller's dirty set.
    strategy_dirty: Vec<u32>,
}

impl TenantPmm {
    /// One default-parameter PMM controller per partition.
    ///
    /// # Panics
    /// Panics on an empty partition table — a tenant-aware policy without
    /// tenants is a configuration bug.
    pub fn new(partitions: Vec<PartitionSpec>) -> Self {
        Self::with_params(partitions, PmmParams::default())
    }

    /// Per-tenant controllers sharing one parameter set.
    ///
    /// # Panics
    /// Panics on an empty partition table.
    pub fn with_params(partitions: Vec<PartitionSpec>, params: PmmParams) -> Self {
        assert!(
            !partitions.is_empty(),
            "TenantPmm needs at least one partition"
        );
        let n = partitions.len();
        TenantPmm {
            partitions,
            params,
            controllers: (0..n).map(|_| Pmm::new(params)).collect(),
            strategies: vec![PartitionStrategy::Max; n],
            scratch: PartitionScratch::default(),
            trace: Vec::new(),
            trace_seen: vec![0; n],
            regime_aware: false,
            incremental: None,
            strategy_dirty: Vec::new(),
        }
    }

    /// Upgrade every per-tenant controller to the regime-aware v2
    /// projection (see [`Pmm::regime_aware`]); reports as
    /// `"PMM-tenant-regime"`.
    pub fn regime_aware(mut self) -> Self {
        self.controllers = (0..self.partitions.len())
            .map(|_| {
                Pmm::with_regime(self.params, crate::adaptive::REGIME_WINDOW_BATCHES)
            })
            .collect();
        self.regime_aware = true;
        self
    }

    /// Make every partition soft (quota + borrow-back), mirroring
    /// [`crate::PartitionedPolicy::soften`].
    pub fn soften(mut self) -> Self {
        for p in &mut self.partitions {
            p.soft = true;
        }
        self
    }

    /// The partition table in force.
    pub fn partitions(&self) -> &[PartitionSpec] {
        &self.partitions
    }

    /// The per-tenant controllers, index-aligned with
    /// [`TenantPmm::partitions`] (inspection / tests).
    pub fn controllers(&self) -> &[Pmm] {
        &self.controllers
    }

    /// Clamp a tenant index the way the allocator does: out-of-range bills
    /// to the last partition.
    fn clamp(&self, tenant: u32) -> usize {
        (tenant as usize).min(self.partitions.len() - 1)
    }

    /// The partition strategy controller `c` currently publishes.
    fn strategy_of(c: &Pmm) -> PartitionStrategy {
        match c.mode() {
            StrategyMode::Max => PartitionStrategy::Max,
            // A PMM controller's MinMax target is its partition's MPL
            // ceiling here — per-tenant, not system-wide.
            _ => PartitionStrategy::MinMax(c.target_mpl()),
        }
    }

    /// Refresh the per-partition strategy table from the controllers.
    fn refresh_strategies(&mut self) {
        for (s, c) in self.strategies.iter_mut().zip(&self.controllers) {
            *s = Self::strategy_of(c);
        }
    }

    /// Pull any new trace points out of controller `i` into the merged
    /// trace.
    fn merge_trace(&mut self, i: usize) {
        let points = self.controllers[i].trace();
        if points.len() > self.trace_seen[i] {
            self.trace.extend_from_slice(&points[self.trace_seen[i]..]);
            self.trace_seen[i] = points.len();
        }
    }
}

impl MemoryPolicy for TenantPmm {
    fn name(&self) -> String {
        if self.regime_aware {
            "PMM-tenant-regime".into()
        } else {
            "PMM-tenant".into()
        }
    }

    fn allocate_into(
        &mut self,
        snapshot: &SystemSnapshot,
        _scratch: &mut AllocScratch,
        out: &mut Grants,
    ) {
        self.refresh_strategies();
        partitioned_allocate_with_into(
            &snapshot.queries,
            &self.partitions,
            &self.strategies,
            snapshot.total_memory,
            &mut self.scratch,
            out,
        );
    }

    fn supports_dirty_allocation(&self) -> bool {
        true
    }

    fn allocate_dirty_into(
        &mut self,
        total_memory: u32,
        groups: &[Vec<QueryDemand>],
        dirty: &mut DirtySet,
        out: &mut Grants,
    ) {
        if self.incremental.is_none() {
            self.refresh_strategies();
            self.incremental = Some(IncrementalPartitioned::new(self.partitions.clone()));
        }
        // Controllers that switched strategy since the last allocation are
        // as dirty as demand churn: their partitions must re-divide.
        for k in 0..self.strategy_dirty.len() {
            dirty.mark(self.strategy_dirty[k] as usize);
        }
        self.strategy_dirty.clear();
        self.incremental.as_mut().unwrap().allocate_dirty_into(
            groups,
            &self.strategies,
            total_memory,
            dirty,
            out,
        );
    }

    fn wants_tenant_feedback(&self) -> bool {
        true
    }

    fn on_tenant_batch(&mut self, tenant: u32, stats: &BatchStats) {
        let i = self.clamp(tenant);
        self.controllers[i].on_batch(stats);
        // Track strategy switches for the incremental path; the strategy
        // table is the allocator's input, so it is updated here too (the
        // snapshot path refreshes the whole table per allocation anyway).
        let new = Self::strategy_of(&self.controllers[i]);
        if new != self.strategies[i] {
            self.strategies[i] = new;
            self.strategy_dirty.push(i as u32);
        }
        self.merge_trace(i);
    }

    fn target_mpl(&self) -> Option<u32> {
        // A system-wide ceiling exists only while *every* controller caps
        // its partition; one Max-mode tenant makes the total unbounded.
        self.controllers
            .iter()
            .map(MemoryPolicy::target_mpl)
            .try_fold(0u32, |acc, t| t.map(|t| acc.saturating_add(t)))
    }

    fn mode(&self) -> StrategyMode {
        // Summary for reports: MinMax once every tenant has switched.
        if self
            .controllers
            .iter()
            .all(|c| c.mode() == StrategyMode::MinMax)
        {
            StrategyMode::MinMax
        } else {
            StrategyMode::Max
        }
    }

    fn trace(&self) -> &[TracePoint] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{QueryDemand, QueryId};
    use simkit::SimTime;
    use stats::SampleSummary;

    fn summary(mean: f64, var: f64, n: u64) -> SampleSummary {
        SampleSummary::new(mean, var, n)
    }

    /// A batch that satisfies all four switch-to-MinMax conditions.
    fn struggle(now_s: u64) -> BatchStats {
        BatchStats {
            now: SimTime::from_secs(now_s),
            served: 30,
            missed: 8,
            realized_mpl: 1.8,
            cpu_util: 0.15,
            disk_util: 0.25,
            wait_time: summary(40.0, 100.0, 30),
            slack_surplus: summary(120.0, 400.0, 30),
            char_max_mem: summary(1321.0, 10_000.0, 30),
            char_operand_ios: summary(1200.0, 10_000.0, 30),
            char_norm_constraint: summary(0.2, 0.001, 30),
        }
    }

    fn halves(soft: bool) -> Vec<PartitionSpec> {
        vec![
            PartitionSpec { quota: 1280, soft },
            PartitionSpec { quota: 1280, soft },
        ]
    }

    fn snapshot(per_tenant: u64, tenants: u32) -> SystemSnapshot {
        SystemSnapshot {
            now: SimTime::ZERO,
            total_memory: 2560,
            queries: (0..per_tenant * tenants as u64)
                .map(|i| QueryDemand {
                    id: QueryId(i),
                    deadline: SimTime(100 + i),
                    min_mem: 37,
                    max_mem: 1321,
                    tenant: (i % tenants as u64) as u32,
                })
                .collect(),
        }
    }

    #[test]
    fn names_and_feedback_opt_in() {
        let p = TenantPmm::new(halves(false));
        assert_eq!(p.name(), "PMM-tenant");
        assert!(p.wants_tenant_feedback());
        assert_eq!(
            TenantPmm::new(halves(false)).regime_aware().name(),
            "PMM-tenant-regime"
        );
        assert!(!crate::MaxPolicy.wants_tenant_feedback());
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn rejects_empty_partition_table() {
        TenantPmm::new(Vec::new());
    }

    #[test]
    fn regime_upgrade_preserves_custom_params() {
        let custom = PmmParams {
            mpl_cap: 7,
            util_low: 0.55,
            ..PmmParams::default()
        };
        let p = TenantPmm::with_params(halves(false), custom).regime_aware();
        for c in p.controllers() {
            assert_eq!(c.params().mpl_cap, 7, "custom params survive the upgrade");
            assert_eq!(c.params().util_low, 0.55);
        }
    }

    #[test]
    fn controllers_adapt_independently() {
        let mut p = TenantPmm::new(halves(false));
        assert_eq!(p.mode(), StrategyMode::Max);
        // Only tenant 1 struggles: its controller switches, tenant 0 stays
        // in Max mode.
        p.on_tenant_batch(1, &struggle(100));
        assert_eq!(p.controllers()[0].mode(), StrategyMode::Max);
        assert_eq!(p.controllers()[1].mode(), StrategyMode::MinMax);
        assert_eq!(p.mode(), StrategyMode::Max, "summary mode: not all MinMax");
        assert_eq!(p.target_mpl(), None, "a Max-mode tenant is unbounded");
        // The merged trace carries tenant 1's switch decision.
        assert_eq!(p.trace().len(), 1);
        assert_eq!(p.trace()[0].mode, StrategyMode::MinMax);
        // Now tenant 0 struggles too.
        p.on_tenant_batch(0, &struggle(200));
        assert_eq!(p.mode(), StrategyMode::MinMax);
        let sum = p.target_mpl().expect("both capped");
        let t0 = p.controllers()[0].target_mpl().unwrap();
        let t1 = p.controllers()[1].target_mpl().unwrap();
        assert_eq!(sum, t0 + t1);
        assert_eq!(p.trace().len(), 2);
    }

    #[test]
    fn allocation_follows_each_tenant_mode() {
        let mut p = TenantPmm::new(halves(false));
        let snap = snapshot(6, 2);
        // Both in Max mode: a 1280-page quota cannot hold a 1321-page
        // maximum, so each partition admits exactly its most urgent query
        // at the budget-clamped grant (starvation-free Max).
        let grants = p.allocate(&snap);
        assert_eq!(grants.len(), 2, "one clamped admission per partition");
        assert!(grants.iter().all(|&(_, pages)| pages == 1280));
        // Tenant 1 switches to MinMax: its partition admits many minimums
        // while tenant 0 still admits a single clamped maximum.
        p.on_tenant_batch(1, &struggle(100));
        let grants = p.allocate(&snap);
        let t1: Vec<_> = grants.iter().filter(|(id, _)| id.0 % 2 == 1).collect();
        let target = p.controllers()[1].target_mpl().unwrap() as usize;
        assert_eq!(t1.len(), target.min(6));
        let t0: Vec<_> = grants.iter().filter(|(id, _)| id.0 % 2 == 0).collect();
        assert_eq!(t0.len(), 1);
        assert_eq!(t0[0].1, 1280);
    }

    #[test]
    fn out_of_range_tenant_feedback_clamps_to_last() {
        let mut p = TenantPmm::new(halves(false));
        p.on_tenant_batch(9, &struggle(100));
        assert_eq!(p.controllers()[1].mode(), StrategyMode::MinMax);
        assert_eq!(p.controllers()[0].mode(), StrategyMode::Max);
    }

    #[test]
    fn soften_enables_borrow_back_across_adaptive_partitions() {
        let mut p = TenantPmm::new(halves(true));
        // Tenant 0 adapts to MinMax; tenant 1 is idle.
        p.on_tenant_batch(0, &struggle(100));
        let snap = SystemSnapshot {
            now: SimTime::ZERO,
            total_memory: 2560,
            queries: (0..8)
                .map(|i| QueryDemand {
                    id: QueryId(i),
                    deadline: SimTime(100 + i),
                    min_mem: 300,
                    max_mem: 1321,
                    tenant: 0,
                })
                .collect(),
        };
        let grants = p.allocate(&snap);
        let total: u64 = grants.iter().map(|&(_, g)| g as u64).sum();
        assert!(
            total > 1280,
            "soft quota borrows the idle partition: {total}"
        );
        assert!(total <= 2560);
    }

    #[test]
    fn global_batches_are_ignored() {
        let mut p = TenantPmm::new(halves(false));
        p.on_batch(&struggle(100));
        assert!(
            p.controllers()
                .iter()
                .all(|c| c.mode() == StrategyMode::Max),
            "global feedback must not reach the per-tenant controllers"
        );
    }
}
