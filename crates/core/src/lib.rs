//! `pmm-core` — the public face of the reproduction.
//!
//! One import point for downstream users: the PMM algorithm and baseline
//! policies (`pmm`), the firm-RTDBS simulator (`rtdbs`), and the substrates
//! (`simkit`, `stats`, `storage`, `exec`).
//!
//! # Quickstart
//!
//! ```
//! use pmm_core::prelude::*;
//!
//! // Simulate 20 minutes of the paper's baseline workload under PMM.
//! let mut cfg = SimConfig::baseline(0.05);
//! cfg.duration_secs = 1200.0;
//! let report = run_simulation(cfg, Box::new(Pmm::with_defaults()));
//! assert!(report.served > 0);
//! println!("miss ratio = {:.1}%", report.miss_pct());
//! ```

pub use exec;
pub use obs;
pub use pmm;
pub use rtdbs;
pub use simkit;
pub use stats;
pub use storage;
pub use workload;

/// Everything a typical experiment needs.
pub mod prelude {
    pub use exec::{ExecConfig, ExternalSort, HashJoin, Operator};
    pub use obs::{ObsConfig, TraceEvent, TraceMode};
    pub use pmm::{
        MaxPolicy, MemoryPolicy, MinMaxPolicy, PartitionSpec, PartitionedPolicy, Pmm,
        PmmParams, ProportionalPolicy, SnapshotOnly, StrategyMode, TenantPmm,
    };
    pub use rtdbs::{
        run_simulation, ConfigError, DegradationMode, FaultPlan, FaultSpec,
        PhaseSchedule, QueryType, ResourceConfig, RunReport, SimConfig, WorkloadClass,
    };
    pub use simkit::{Duration, SimTime};
    pub use storage::{
        DeviceSpec, DiskGeometry, EvictionSpec, RelationGroupSpec, SsdSpec,
    };
    pub use workload::{
        AlternationSchedule, ArrivalProcess, ArrivalSpec, Scenario, TenantSpec,
    };
}
