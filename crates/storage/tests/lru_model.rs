//! Equivalence pins for the buffer pool's eviction policies.
//!
//! The LRU arm replaced its `VecDeque::contains` / `position` linear scans
//! with a slab-backed doubly-linked list plus a hash index. The observable
//! behavior — which lookups hit, which miss, and the hit/miss counters —
//! must be *identical* to the original deque implementation, because the
//! engine's golden determinism pin rides on every cache decision. This
//! model test replays long random op sequences against a faithful
//! re-implementation of the seed deque cache, at the paper's 5-line size
//! (256 KB / 8 KB pages / 6-page blocks) and at larger shapes where
//! eviction churns harder.
//!
//! The LRU-K arm is pinned the same way: [`LruKModel`] is a naive
//! from-the-paper transcription (a flat list of lines, each holding its
//! last K access stamps; the victim minimizes `(has full history, oldest
//! retained stamp)`), replayed against `BufferPool` with
//! `EvictionSpec::LruK`. Both the flat-scan (small capacity) and hashed
//! (large capacity) index arms are covered, and LRU-1 is checked to
//! degenerate to exact LRU against the deque reference.

use std::collections::VecDeque;
use storage::{BufferPool, EvictionSpec, FileId, PrefetchCache};

/// The seed implementation, verbatim semantics: a deque of `(file, block)`
/// lines, scanned linearly.
struct DequeModel {
    capacity_blocks: usize,
    block_pages: u32,
    lru: VecDeque<(FileId, u32)>,
    hits: u64,
    misses: u64,
}

impl DequeModel {
    fn new(capacity_pages: u32, block_pages: u32) -> Self {
        DequeModel {
            capacity_blocks: (capacity_pages / block_pages).max(1) as usize,
            block_pages,
            lru: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn lookup(&mut self, file: FileId, first: u32, pages: u32) -> bool {
        let first_block = first / self.block_pages;
        let last_block = (first + pages.max(1) - 1) / self.block_pages;
        let all_present =
            (first_block..=last_block).all(|block| self.lru.contains(&(file, block)));
        if all_present {
            self.hits += 1;
            for block in first_block..=last_block {
                if let Some(pos) = self.lru.iter().position(|&x| x == (file, block)) {
                    let line = self.lru.remove(pos).expect("position valid");
                    self.lru.push_back(line);
                }
            }
        } else {
            self.misses += 1;
        }
        all_present
    }

    fn insert(&mut self, file: FileId, first: u32, pages: u32) {
        for p in (first..first + pages.max(1)).step_by(self.block_pages as usize) {
            let k = (file, p / self.block_pages);
            if let Some(pos) = self.lru.iter().position(|&x| x == k) {
                self.lru.remove(pos);
            }
            self.lru.push_back(k);
            while self.lru.len() > self.capacity_blocks {
                self.lru.pop_front();
            }
        }
    }

    fn invalidate_file(&mut self, file: FileId) {
        self.lru.retain(|k| k.0 != file);
    }
}

/// Naive LRU-K reference \[O'Neil et al. 93\], transcribed directly: a flat
/// list of `(line, access stamps)` pairs fed by a global logical clock.
/// Each access appends a stamp and trims the history to the last K; the
/// victim is the line minimizing `(has full history, oldest retained
/// stamp)`, so short-history lines go first (oldest first access first)
/// and full lines by oldest K-th-most-recent access. Stamps are unique, so
/// victim selection never depends on list order.
struct LruKModel {
    capacity_blocks: usize,
    block_pages: u32,
    k: usize,
    clock: u64,
    lines: Vec<((FileId, u32), Vec<u64>)>,
    hits: u64,
    misses: u64,
}

impl LruKModel {
    fn new(capacity_pages: u32, block_pages: u32, k: usize) -> Self {
        LruKModel {
            capacity_blocks: (capacity_pages / block_pages).max(1) as usize,
            block_pages,
            k,
            clock: 0,
            lines: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn record(&mut self, key: (FileId, u32)) {
        self.clock += 1;
        let clock = self.clock;
        let k = self.k;
        let history = &mut self
            .lines
            .iter_mut()
            .find(|(l, _)| *l == key)
            .expect("resident line")
            .1;
        history.push(clock);
        if history.len() > k {
            history.remove(0);
        }
    }

    fn lookup(&mut self, file: FileId, first: u32, pages: u32) -> bool {
        let first_block = first / self.block_pages;
        let last_block = (first + pages.max(1) - 1) / self.block_pages;
        let all_present = (first_block..=last_block)
            .all(|block| self.lines.iter().any(|(l, _)| *l == (file, block)));
        if all_present {
            self.hits += 1;
            for block in first_block..=last_block {
                self.record((file, block));
            }
        } else {
            self.misses += 1;
        }
        all_present
    }

    fn insert(&mut self, file: FileId, first: u32, pages: u32) {
        for p in (first..first + pages.max(1)).step_by(self.block_pages as usize) {
            let key = (file, p / self.block_pages);
            if !self.lines.iter().any(|(l, _)| *l == key) {
                self.lines.push((key, Vec::new()));
            }
            self.record(key);
            while self.lines.len() > self.capacity_blocks {
                let victim = self
                    .lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, h))| (h.len() >= self.k, h[0]))
                    .map(|(i, _)| i)
                    .expect("over-capacity pool is non-empty");
                self.lines.remove(victim);
            }
        }
    }

    fn invalidate_file(&mut self, file: FileId) {
        self.lines.retain(|((f, _), _)| *f != file);
    }
}

/// An op-by-op oracle a [`BufferPool`] is replayed against.
trait RefModel {
    fn lookup(&mut self, file: FileId, first: u32, pages: u32) -> bool;
    fn insert(&mut self, file: FileId, first: u32, pages: u32);
    fn invalidate_file(&mut self, file: FileId);
    fn stats(&self) -> (u64, u64);
}

impl RefModel for DequeModel {
    fn lookup(&mut self, file: FileId, first: u32, pages: u32) -> bool {
        DequeModel::lookup(self, file, first, pages)
    }
    fn insert(&mut self, file: FileId, first: u32, pages: u32) {
        DequeModel::insert(self, file, first, pages)
    }
    fn invalidate_file(&mut self, file: FileId) {
        DequeModel::invalidate_file(self, file)
    }
    fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl RefModel for LruKModel {
    fn lookup(&mut self, file: FileId, first: u32, pages: u32) -> bool {
        LruKModel::lookup(self, file, first, pages)
    }
    fn insert(&mut self, file: FileId, first: u32, pages: u32) {
        LruKModel::insert(self, file, first, pages)
    }
    fn invalidate_file(&mut self, file: FileId) {
        LruKModel::invalidate_file(self, file)
    }
    fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Drive `cache` and an op-by-op oracle through the same pseudo-random op
/// sequence and demand identical hit/miss behavior after every single
/// operation. One harness serves every reference model.
fn reference_run(
    mut cache: BufferPool,
    model: &mut dyn RefModel,
    block_pages: u32,
    ops: u64,
    seed: u64,
) {
    let mut x = seed | 1;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    };
    for op in 0..ops {
        let file = match next() % 4 {
            0 => FileId::Relation((next() % 3) as u32),
            1 => FileId::Relation((next() % 2) as u32),
            2 => FileId::Temp(next() % 3),
            _ => FileId::Temp(next() % 2),
        };
        let first = (next() % 40) as u32;
        let pages = 1 + (next() % (2 * block_pages as u64 + 1)) as u32;
        match next() % 8 {
            // Reads dominate, as in the engine.
            0..=4 => {
                let got = cache.lookup(file, first, pages);
                let want = model.lookup(file, first, pages);
                assert_eq!(got, want, "lookup diverged at op {op}");
            }
            5 | 6 => {
                // Block-aligned insert, as `Disk::service` performs after a
                // prefetching read miss.
                let aligned = (first / block_pages) * block_pages;
                let whole = pages.div_ceil(block_pages) * block_pages;
                cache.insert(file, aligned, whole);
                model.insert(file, aligned, whole);
            }
            _ => {
                cache.invalidate_file(file);
                model.invalidate_file(file);
            }
        }
        assert_eq!(
            cache.stats(),
            model.stats(),
            "hit/miss counters diverged at op {op}"
        );
    }
    let (hits, misses) = cache.stats();
    assert!(hits > 0, "degenerate sequence: no hits exercised");
    assert!(misses > 0, "degenerate sequence: no misses exercised");
}

/// Pin a cache (LRU unless overridden) against the seed deque reference.
fn deque_equivalence_run(
    cache: BufferPool,
    capacity_pages: u32,
    block_pages: u32,
    ops: u64,
    seed: u64,
) {
    let mut model = DequeModel::new(capacity_pages, block_pages);
    reference_run(cache, &mut model, block_pages, ops, seed);
}

fn equivalence_run(capacity_pages: u32, block_pages: u32, ops: u64, seed: u64) {
    deque_equivalence_run(
        PrefetchCache::new(capacity_pages, block_pages),
        capacity_pages,
        block_pages,
        ops,
        seed,
    );
}

/// Pin the slab-and-index LRU-K pool against the naive reference.
fn equivalence_run_lruk(
    capacity_pages: u32,
    block_pages: u32,
    k: u32,
    ops: u64,
    seed: u64,
) {
    let cache =
        BufferPool::with_policy(capacity_pages, block_pages, EvictionSpec::LruK { k });
    let mut model = LruKModel::new(capacity_pages, block_pages, k as usize);
    reference_run(cache, &mut model, block_pages, ops, seed);
}

/// The paper's configuration: 256 KB cache, 8 KB pages, 6-page blocks —
/// 5 whole cache lines.
#[test]
fn paper_size_five_lines() {
    equivalence_run(32, 6, 20_000, 0x9E37_79B9);
}

/// A larger cache (the shape the indexed order exists for) and a tiny
/// 1-block degenerate cache, where eviction fires on every insert.
#[test]
fn stress_shapes() {
    equivalence_run(256, 6, 20_000, 0xDEAD_BEEF);
    equivalence_run(4, 4, 5_000, 7);
}

/// LRU-2 at the paper's 5-line pool size (the flat-scan index arm).
#[test]
fn paper_size_five_lines_lru2() {
    equivalence_run_lruk(32, 6, 2, 20_000, 0x9E37_79B9);
}

/// LRU-K across the hashed index arm, a 1-line degenerate pool with deeper
/// history, and a mid-size K = 4 shape.
#[test]
fn stress_shapes_lruk() {
    equivalence_run_lruk(256, 6, 2, 20_000, 0xDEAD_BEEF);
    equivalence_run_lruk(4, 4, 3, 5_000, 7);
    equivalence_run_lruk(64, 6, 4, 10_000, 0x1234_5678);
}

/// LRU-1 keeps exactly one stamp — the last access — so its victim is the
/// least-recently-used line: it must replay bit-for-bit against the seed
/// deque LRU reference, on both index arms.
#[test]
fn lru1_degenerates_to_exact_lru() {
    for (cap, bp) in [(32u32, 6u32), (256, 6)] {
        deque_equivalence_run(
            BufferPool::with_policy(cap, bp, EvictionSpec::LruK { k: 1 }),
            cap,
            bp,
            20_000,
            0x5EED,
        );
    }
}
