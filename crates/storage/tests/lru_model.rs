//! Equivalence pin for the indexed-LRU prefetch cache.
//!
//! The cache replaced its `VecDeque::contains` / `position` linear scans
//! with a slab-backed doubly-linked list plus a hash index. The observable
//! behavior — which lookups hit, which miss, and the hit/miss counters —
//! must be *identical* to the original deque implementation, because the
//! engine's golden determinism pin rides on every cache decision. This
//! model test replays long random op sequences against a faithful
//! re-implementation of the seed deque cache, at the paper's 5-line size
//! (256 KB / 8 KB pages / 6-page blocks) and at larger shapes where
//! eviction churns harder.

use std::collections::VecDeque;
use storage::{FileId, PrefetchCache};

/// The seed implementation, verbatim semantics: a deque of `(file, block)`
/// lines, scanned linearly.
struct DequeModel {
    capacity_blocks: usize,
    block_pages: u32,
    lru: VecDeque<(FileId, u32)>,
    hits: u64,
    misses: u64,
}

impl DequeModel {
    fn new(capacity_pages: u32, block_pages: u32) -> Self {
        DequeModel {
            capacity_blocks: (capacity_pages / block_pages).max(1) as usize,
            block_pages,
            lru: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn lookup(&mut self, file: FileId, first: u32, pages: u32) -> bool {
        let first_block = first / self.block_pages;
        let last_block = (first + pages.max(1) - 1) / self.block_pages;
        let all_present =
            (first_block..=last_block).all(|block| self.lru.contains(&(file, block)));
        if all_present {
            self.hits += 1;
            for block in first_block..=last_block {
                if let Some(pos) = self.lru.iter().position(|&x| x == (file, block)) {
                    let line = self.lru.remove(pos).expect("position valid");
                    self.lru.push_back(line);
                }
            }
        } else {
            self.misses += 1;
        }
        all_present
    }

    fn insert(&mut self, file: FileId, first: u32, pages: u32) {
        for p in (first..first + pages.max(1)).step_by(self.block_pages as usize) {
            let k = (file, p / self.block_pages);
            if let Some(pos) = self.lru.iter().position(|&x| x == k) {
                self.lru.remove(pos);
            }
            self.lru.push_back(k);
            while self.lru.len() > self.capacity_blocks {
                self.lru.pop_front();
            }
        }
    }

    fn invalidate_file(&mut self, file: FileId) {
        self.lru.retain(|k| k.0 != file);
    }
}

/// Drive both caches through the same pseudo-random op sequence and demand
/// identical hit/miss behavior after every single operation.
fn equivalence_run(capacity_pages: u32, block_pages: u32, ops: u64, seed: u64) {
    let mut cache = PrefetchCache::new(capacity_pages, block_pages);
    let mut model = DequeModel::new(capacity_pages, block_pages);
    let mut x = seed | 1;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    };
    for op in 0..ops {
        let file = match next() % 4 {
            0 => FileId::Relation((next() % 3) as u32),
            1 => FileId::Relation((next() % 2) as u32),
            2 => FileId::Temp(next() % 3),
            _ => FileId::Temp(next() % 2),
        };
        let first = (next() % 40) as u32;
        let pages = 1 + (next() % (2 * block_pages as u64 + 1)) as u32;
        match next() % 8 {
            // Reads dominate, as in the engine.
            0..=4 => {
                let got = cache.lookup(file, first, pages);
                let want = model.lookup(file, first, pages);
                assert_eq!(got, want, "lookup diverged at op {op}");
            }
            5 | 6 => {
                // Block-aligned insert, as `Disk::service` performs after a
                // prefetching read miss.
                let aligned = (first / block_pages) * block_pages;
                let whole = pages.div_ceil(block_pages) * block_pages;
                cache.insert(file, aligned, whole);
                model.insert(file, aligned, whole);
            }
            _ => {
                cache.invalidate_file(file);
                model.invalidate_file(file);
            }
        }
        assert_eq!(
            cache.stats(),
            (model.hits, model.misses),
            "hit/miss counters diverged at op {op}"
        );
    }
    let (hits, misses) = cache.stats();
    assert!(hits > 0, "degenerate sequence: no hits exercised");
    assert!(misses > 0, "degenerate sequence: no misses exercised");
}

/// The paper's configuration: 256 KB cache, 8 KB pages, 6-page blocks —
/// 5 whole cache lines.
#[test]
fn paper_size_five_lines() {
    equivalence_run(32, 6, 20_000, 0x9E37_79B9);
}

/// A larger cache (the shape the indexed order exists for) and a tiny
/// 1-block degenerate cache, where eviction fires on every insert.
#[test]
fn stress_shapes() {
    equivalence_run(256, 6, 20_000, 0xDEAD_BEEF);
    equivalence_run(4, 4, 5_000, 7);
}
