//! One physical disk: a pluggable [`ServiceModel`], a prefetch
//! [`BufferPool`], and an ED+elevator queue; plus [`DiskFarm`], the set of
//! disks.
//!
//! Section 4.2: each disk has a 256-KByte cache used for prefetching; on a
//! sequential read that misses the cache, `BlockSize` (6) pages are fetched,
//! **except during the merge phase of an external sort** (the merge reads
//! many runs concurrently, so prefetching would pollute the tiny cache).
//! Whenever queries have enough buffers they spool outputs so writes also go
//! to disk in blocks.
//!
//! The disk is a passive state machine: the simulator's disk manager calls
//! [`Disk::start`] to begin servicing a request (obtaining its service
//! time), schedules the completion on its calendar, and calls
//! [`Disk::finish`] when the event fires. Timing and positional state
//! (head cylinder, SSD parallelism) live entirely in the service model, so
//! the same state machine runs the paper's cylinder disk and the SSD.

use crate::layout::FileId;
use crate::pool::{BufferPool, EvictionSpec};
use crate::queue::{DiskQueue, QueuedRequest};
use crate::service::ServiceModel;
use simkit::metrics::Utilization;
use simkit::{Duration, SimTime};

/// Whether an access reads or writes the media.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoKind {
    /// Read; may hit the prefetch cache.
    Read,
    /// Write; always touches the media (write-through).
    Write,
}

/// A physical disk access (page range within one file).
#[derive(Clone, Debug)]
pub struct Access {
    /// Opaque owner tag (the simulator stores the owning query id here so
    /// aborted queries' pending requests can be cancelled).
    pub owner: u64,
    /// File being accessed.
    pub file: FileId,
    /// First page of the range (file-relative).
    pub first_page: u32,
    /// Number of pages.
    pub pages: u32,
    /// Read or write.
    pub kind: IoKind,
    /// If true, a read miss fetches whole cache blocks (sequential
    /// prefetch); merge-phase reads set this to false.
    pub prefetch: bool,
    /// Target cylinder (resolved from the layout by the caller).
    pub cylinder: u32,
}

/// The service decision for one access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Service {
    /// Satisfied from the prefetch cache; no media access.
    CacheHit,
    /// Requires the media for `time`. Positional state (head movement)
    /// is tracked inside the disk's service model.
    Media {
        /// Total service time (seek + rotation + transfer on the cylinder
        /// model; latency + transfer on the SSD).
        time: Duration,
    },
    /// The device is in an outage window: the access failed and the disk
    /// holds it for a retry after `backoff` of sim time. The caller
    /// schedules the retry; backoff time does **not** count as utilization
    /// (the device is unreachable, not serving).
    Faulted {
        /// 1-based retry attempt this failure begins (1 = first retry).
        attempt: u32,
        /// Capped exponential backoff before the retry may start.
        backoff: Duration,
    },
    /// The access failed and its retry budget is spent: a hard I/O error.
    /// The disk stays idle; the caller decides the owner's fate
    /// (abort vs. requeue).
    FaultExhausted,
}

/// Retry/backoff parameters for transient device faults: a failed access is
/// retried up to `max_retries` times, waiting
/// `min(base · 2^(attempt−1), cap)` of sim time before each attempt, then
/// surfaces [`Service::FaultExhausted`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetrySpec {
    /// Retry attempts before the hard error (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Ceiling on the exponential backoff.
    pub cap: Duration,
}

impl Default for RetrySpec {
    fn default() -> Self {
        RetrySpec {
            max_retries: 5,
            base: Duration::from_secs_f64(0.25),
            cap: Duration::from_secs(4),
        }
    }
}

impl RetrySpec {
    /// Backoff before retry `attempt` (1-based): capped exponential.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let mut b = self.base;
        for _ in 1..attempt {
            if b >= self.cap {
                break;
            }
            b = Duration(b.0.saturating_mul(2));
        }
        b.min(self.cap)
    }
}

/// One disk: queue + service model + cache + utilization accounting, plus
/// fault state (degradation factor, outage flag, pending retry) driven by
/// the simulator's fault plan.
pub struct Disk {
    /// Timing and positional state of the device.
    model: Box<dyn ServiceModel>,
    queue: DiskQueue<Access>,
    busy: bool,
    cache: BufferPool,
    utilization: Utilization,
    completed: u64,
    /// Media service-time multiplier (1.0 = healthy).
    degrade: f64,
    /// True inside an outage window: every access fails, even would-be
    /// cache hits — the device is unreachable, not just slow.
    outage: bool,
    /// The access waiting out a backoff, with its retry attempt count.
    retry: Option<(Access, u32)>,
    retry_cfg: RetrySpec,
}

impl Disk {
    /// A new idle disk running `model`, with a prefetch pool sized by the
    /// model's cache capacity and evicting per `eviction`.
    pub fn new(
        model: Box<dyn ServiceModel>,
        eviction: EvictionSpec,
        block_pages: u32,
        start: SimTime,
    ) -> Self {
        let cache = BufferPool::with_policy(model.cache_pages(), block_pages, eviction);
        Disk {
            model,
            queue: DiskQueue::new(),
            busy: false,
            cache,
            utilization: Utilization::new(start),
            completed: 0,
            degrade: 1.0,
            outage: false,
            retry: None,
            retry_cfg: RetrySpec::default(),
        }
    }

    /// Set the media service-time multiplier (1.0 = healthy). Applies to
    /// accesses started from now on; the in-flight one keeps its time.
    pub fn set_degrade(&mut self, factor: f64) {
        self.degrade = factor;
    }

    /// Enter (`true`) or leave (`false`) an outage window.
    pub fn set_outage(&mut self, outage: bool) {
        self.outage = outage;
    }

    /// True inside an outage window.
    pub fn is_outage(&self) -> bool {
        self.outage
    }

    /// Replace the retry/backoff parameters.
    pub fn set_retry_spec(&mut self, spec: RetrySpec) {
        self.retry_cfg = spec;
    }

    /// The device's service model (for introspection/tests).
    pub fn model(&self) -> &dyn ServiceModel {
        &*self.model
    }

    /// Queue an access with ED priority `deadline`. The current head
    /// position is passed down so the queue maintains its pop winner
    /// incrementally: the head only moves when a media access starts, so
    /// everything queued since then folds into an O(1) pick.
    pub fn enqueue(&mut self, deadline: SimTime, access: Access) {
        self.queue.push_at(
            self.model.position(),
            QueuedRequest {
                deadline,
                cylinder: access.cylinder,
                tag: access,
            },
        );
    }

    /// True if the disk is currently servicing a request.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Number of queued (not yet started) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Begin servicing the next queued request, if idle and work exists.
    /// Returns the access and its service outcome; the caller schedules the
    /// completion event (immediately for a cache hit).
    pub fn start(&mut self, now: SimTime) -> Option<(Access, Service)> {
        if self.busy {
            return None;
        }
        // A pending retry goes before the queue: it already holds the
        // device's attention.
        let (access, attempts) = match self.retry.take() {
            Some((a, n)) => (a, n),
            None => (self.queue.pop(self.model.position())?.tag, 0),
        };
        if self.outage {
            let attempt = attempts + 1;
            if attempt > self.retry_cfg.max_retries {
                // Budget spent: hard error; the disk stays idle so the
                // caller can immediately start the next request.
                return Some((access, Service::FaultExhausted));
            }
            let backoff = self.retry_cfg.backoff(attempt);
            self.retry = Some((access.clone(), attempt));
            // Busy blocks the queue for the backoff, but the device is not
            // serving — utilization stays flat.
            self.busy = true;
            return Some((access, Service::Faulted { attempt, backoff }));
        }
        // Requests still waiting behind this one: the queue-depth hint
        // models with internal parallelism consume.
        let queued = self.queue.len();
        let mut service = self.service(&access, queued);
        if self.degrade != 1.0 {
            if let Service::Media { time } = service {
                service = Service::Media {
                    time: time.scale(self.degrade),
                };
            }
        }
        self.busy = true;
        self.utilization.begin_busy(now);
        Some((access, service))
    }

    /// A [`Service::Faulted`] backoff has elapsed: release the device so
    /// [`Disk::start`] can run the retry (or, if it was cancelled
    /// meanwhile, the next queued request). No utilization bookkeeping —
    /// the backoff never counted as busy time.
    pub fn retry_elapsed(&mut self, _now: SimTime) {
        debug_assert!(self.busy, "retry_elapsed without a pending backoff");
        self.busy = false;
    }

    /// Compute the service decision for `access` (cache consult + timing).
    fn service(&mut self, access: &Access, queued: usize) -> Service {
        match access.kind {
            IoKind::Read => {
                if self
                    .cache
                    .lookup(access.file, access.first_page, access.pages)
                {
                    return Service::CacheHit;
                }
                // Fetch: with prefetch on, round the fetch up to whole
                // blocks starting at the block boundary.
                let fetch_pages = if access.prefetch {
                    let bp = self.cache.block_pages();
                    let first_block = access.first_page / bp;
                    let last_block = (access.first_page + access.pages.max(1) - 1) / bp;
                    (last_block - first_block + 1) * bp
                } else {
                    access.pages.max(1)
                };
                let time = self.model.access_time(
                    access.cylinder,
                    fetch_pages,
                    IoKind::Read,
                    queued,
                );
                if access.prefetch {
                    let bp = self.cache.block_pages();
                    self.cache.insert(
                        access.file,
                        (access.first_page / bp) * bp,
                        fetch_pages,
                    );
                }
                Service::Media { time }
            }
            IoKind::Write => {
                let time = self.model.access_time(
                    access.cylinder,
                    access.pages.max(1),
                    IoKind::Write,
                    queued,
                );
                Service::Media { time }
            }
        }
    }

    /// Mark the in-flight request complete at `now`.
    pub fn finish(&mut self, now: SimTime) {
        debug_assert!(self.busy, "finish without start");
        self.busy = false;
        self.completed += 1;
        self.utilization.end_busy(now);
    }

    /// Remove queued requests matching `pred` (aborted queries). In-flight
    /// requests are allowed to complete (a started disk access cannot be
    /// recalled). A matching access waiting out a retry backoff is dropped
    /// too — its pending retry event then just releases the device.
    pub fn cancel_queued<F: Fn(&Access) -> bool>(&mut self, pred: F) -> usize {
        let mut n = self.queue.discard_where(|a| pred(a));
        if self.retry.as_ref().is_some_and(|(a, _)| pred(a)) {
            self.retry = None;
            n += 1;
        }
        n
    }

    /// Invalidate cached lines of a deleted file.
    pub fn invalidate(&mut self, file: FileId) {
        self.cache.invalidate_file(file);
    }

    /// Busy fraction since the start of the current measurement window.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.utilization.fraction(now)
    }

    /// Restart the utilization window at `now`.
    pub fn reset_utilization(&mut self, now: SimTime) {
        self.utilization.reset_window(now);
    }

    /// Completed request count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }
}

/// All the disks in the system.
pub struct DiskFarm {
    disks: Vec<Disk>,
}

impl DiskFarm {
    /// `n` identical disks, each running a fresh model from `make_model`.
    pub fn new<F: Fn() -> Box<dyn ServiceModel>>(
        n: u32,
        make_model: F,
        eviction: EvictionSpec,
        block_pages: u32,
        start: SimTime,
    ) -> Self {
        assert!(n > 0, "a database system needs at least one disk");
        DiskFarm {
            disks: (0..n)
                .map(|_| Disk::new(make_model(), eviction, block_pages, start))
                .collect(),
        }
    }

    /// Number of disks.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Always false: the farm is non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Mutable access to disk `i`.
    pub fn disk_mut(&mut self, i: usize) -> &mut Disk {
        &mut self.disks[i]
    }

    /// Immutable access to disk `i`.
    pub fn disk(&self, i: usize) -> &Disk {
        &self.disks[i]
    }

    /// Mean utilization across disks (the "disk resource" reading the RU
    /// heuristic uses).
    pub fn mean_utilization(&self, now: SimTime) -> f64 {
        self.disks.iter().map(|d| d.utilization(now)).sum::<f64>()
            / self.disks.len() as f64
    }

    /// Highest per-disk utilization.
    pub fn max_utilization(&self, now: SimTime) -> f64 {
        self.disks
            .iter()
            .map(|d| d.utilization(now))
            .fold(0.0, f64::max)
    }

    /// Restart every disk's utilization window.
    pub fn reset_utilization(&mut self, now: SimTime) {
        for d in &mut self.disks {
            d.reset_utilization(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskGeometry;
    use crate::service::{CylinderModel, DeviceSpec, SsdModel, SsdSpec};

    fn cyl_disk() -> Disk {
        Disk::new(
            Box::new(CylinderModel::new(DiskGeometry::default())),
            EvictionSpec::Lru,
            6,
            SimTime::ZERO,
        )
    }

    fn ssd_disk() -> Disk {
        Disk::new(
            Box::new(SsdModel::new(SsdSpec::default())),
            EvictionSpec::Lru,
            6,
            SimTime::ZERO,
        )
    }

    fn read(file: u32, first: u32, pages: u32, cylinder: u32) -> Access {
        Access {
            owner: u64::from(file),
            file: FileId::Relation(file),
            first_page: first,
            pages,
            kind: IoKind::Read,
            prefetch: true,
            cylinder,
        }
    }

    #[test]
    fn sequential_read_misses_then_hits() {
        let mut disk = cyl_disk();
        disk.enqueue(SimTime(10), read(0, 0, 6, 700));
        let (_, s1) = disk.start(SimTime::ZERO).unwrap();
        assert!(matches!(s1, Service::Media { .. }));
        disk.finish(SimTime(1000));
        // Re-read the same block: cache hit.
        disk.enqueue(SimTime(10), read(0, 0, 6, 700));
        let (_, s2) = disk.start(SimTime(1000)).unwrap();
        assert_eq!(s2, Service::CacheHit);
        disk.finish(SimTime(1000));
        assert_eq!(disk.cache_stats().0, 1);
    }

    #[test]
    fn non_prefetch_read_does_not_populate_cache() {
        let mut disk = cyl_disk();
        let mut acc = read(0, 0, 1, 700);
        acc.prefetch = false;
        disk.enqueue(SimTime(10), acc.clone());
        let (_, s1) = disk.start(SimTime::ZERO).unwrap();
        match s1 {
            Service::Media { time } => {
                // Single page, no block round-up.
                let expected = DiskGeometry::default().access_time(700, 1);
                assert_eq!(time, expected);
            }
            other => panic!("cold read cannot {other:?}"),
        }
        disk.finish(SimTime(100));
        disk.enqueue(SimTime(10), acc);
        let (_, s2) = disk.start(SimTime(100)).unwrap();
        assert!(
            matches!(s2, Service::Media { .. }),
            "no prefetch, so no hit"
        );
    }

    #[test]
    fn prefetch_rounds_to_block() {
        let g = DiskGeometry::default();
        let mut disk = cyl_disk();
        // 2-page read spanning a block: fetch rounds up to 6 pages.
        disk.enqueue(SimTime(10), read(0, 2, 2, 700));
        let (_, s) = disk.start(SimTime::ZERO).unwrap();
        match s {
            Service::Media { time } => {
                assert_eq!(time, g.access_time(700, 6));
            }
            _ => panic!("expected media access"),
        }
    }

    #[test]
    fn head_moves_and_second_seek_is_shorter() {
        let mut disk = cyl_disk();
        disk.enqueue(SimTime(10), read(0, 0, 6, 700));
        let (_, s1) = disk.start(SimTime::ZERO).unwrap();
        let t1 = match s1 {
            Service::Media { time } => time,
            _ => panic!(),
        };
        disk.finish(SimTime(1));
        assert_eq!(disk.model().position(), 700, "head tracked by the model");
        disk.enqueue(SimTime(10), read(1, 0, 6, 705));
        let (_, s2) = disk.start(SimTime(1)).unwrap();
        let t2 = match s2 {
            Service::Media { time } => time,
            _ => panic!(),
        };
        assert!(t2 < t1, "short seek {t2:?} should beat long seek {t1:?}");
    }

    #[test]
    fn busy_disk_does_not_start_twice() {
        let mut disk = cyl_disk();
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        disk.enqueue(SimTime(2), read(1, 0, 6, 800));
        assert!(disk.start(SimTime::ZERO).is_some());
        assert!(disk.start(SimTime::ZERO).is_none(), "busy");
        disk.finish(SimTime(100));
        assert!(disk.start(SimTime(100)).is_some());
    }

    #[test]
    fn utilization_accounting() {
        let mut disk = cyl_disk();
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        disk.start(SimTime::ZERO).unwrap();
        disk.finish(SimTime::from_secs(5));
        let u = disk.utilization(SimTime::from_secs(10));
        assert!((u - 0.5).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn cancel_queued_drops_only_matching() {
        let mut disk = cyl_disk();
        disk.enqueue(SimTime(1), read(7, 0, 6, 700));
        disk.enqueue(SimTime(2), read(8, 0, 6, 800));
        let n = disk.cancel_queued(|a| a.file == FileId::Relation(7));
        assert_eq!(n, 1);
        assert_eq!(disk.queue_len(), 1);
    }

    #[test]
    fn cache_invalidation() {
        let mut disk = cyl_disk();
        let temp = FileId::Temp(3);
        let mut acc = read(0, 0, 6, 100);
        acc.file = temp;
        disk.enqueue(SimTime(1), acc.clone());
        disk.start(SimTime::ZERO).unwrap();
        disk.finish(SimTime(10));
        disk.invalidate(temp);
        disk.enqueue(SimTime(1), acc);
        let (_, s) = disk.start(SimTime(10)).unwrap();
        assert!(
            matches!(s, Service::Media { .. }),
            "invalidated line must miss"
        );
    }

    #[test]
    fn lru_eviction_under_capacity_pressure() {
        // Cache holds 32/6 = 5 blocks; touching 6 distinct blocks evicts the
        // first.
        let mut disk = cyl_disk();
        let mut t = 0u64;
        for b in 0..6u32 {
            disk.enqueue(SimTime(1), read(0, b * 6, 6, 700));
            disk.start(SimTime(t)).unwrap();
            t += 100;
            disk.finish(SimTime(t));
        }
        // Block 0 was evicted.
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        let (_, s) = disk.start(SimTime(t)).unwrap();
        assert!(matches!(s, Service::Media { .. }));
    }

    #[test]
    fn ssd_disk_is_position_blind_and_fast() {
        let mut ssd = ssd_disk();
        ssd.enqueue(SimTime(1), read(0, 0, 6, 1499));
        let (_, s) = ssd.start(SimTime::ZERO).unwrap();
        let t_far = match s {
            Service::Media { time } => time,
            _ => panic!("cold read"),
        };
        ssd.finish(SimTime(100));
        ssd.enqueue(SimTime(1), read(1, 0, 6, 0));
        let (_, s) = ssd.start(SimTime(100)).unwrap();
        let t_near = match s {
            Service::Media { time } => time,
            _ => panic!("cold read"),
        };
        assert_eq!(t_far, t_near, "no seeks on flash");
        let mut cyl = cyl_disk();
        cyl.enqueue(SimTime(1), read(0, 0, 6, 1499));
        let (_, s) = cyl.start(SimTime::ZERO).unwrap();
        let t_disk = match s {
            Service::Media { time } => time,
            _ => panic!("cold read"),
        };
        assert!(t_far < t_disk, "flash beats the mechanical disk");
    }

    #[test]
    fn ssd_stacked_queue_amortizes_latency() {
        // Two identical cold reads: the one started with another request
        // waiting behind it gets the queue-depth latency discount.
        let mut solo = ssd_disk();
        solo.enqueue(SimTime(1), read(0, 0, 6, 10));
        let (_, s) = solo.start(SimTime::ZERO).unwrap();
        let t_solo = match s {
            Service::Media { time } => time,
            _ => panic!(),
        };
        let mut stacked = ssd_disk();
        stacked.enqueue(SimTime(1), read(0, 0, 6, 10));
        stacked.enqueue(SimTime(2), read(1, 0, 6, 20));
        let (_, s) = stacked.start(SimTime::ZERO).unwrap();
        let t_stacked = match s {
            Service::Media { time } => time,
            _ => panic!(),
        };
        assert!(t_stacked < t_solo);
    }

    #[test]
    fn farm_builds_from_device_spec() {
        let g = DiskGeometry::default();
        let device = DeviceSpec::Ssd(SsdSpec::default());
        let farm =
            DiskFarm::new(2, || device.build(&g), EvictionSpec::Lru, 6, SimTime::ZERO);
        assert_eq!(farm.len(), 2);
        assert_eq!(farm.disk(0).model().name(), "ssd");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let spec = RetrySpec {
            max_retries: 10,
            base: Duration::from_secs(1),
            cap: Duration::from_secs(4),
        };
        assert_eq!(spec.backoff(1), Duration::from_secs(1));
        assert_eq!(spec.backoff(2), Duration::from_secs(2));
        assert_eq!(spec.backoff(3), Duration::from_secs(4));
        assert_eq!(spec.backoff(4), Duration::from_secs(4), "capped");
        assert_eq!(spec.backoff(100), Duration::from_secs(4));
    }

    #[test]
    fn outage_fails_even_cache_hits_and_retries_then_exhausts() {
        let mut disk = cyl_disk();
        // Warm the cache.
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        disk.start(SimTime::ZERO).unwrap();
        disk.finish(SimTime(100));
        disk.reset_utilization(SimTime(100));
        disk.set_retry_spec(RetrySpec {
            max_retries: 2,
            base: Duration::from_secs(1),
            cap: Duration::from_secs(4),
        });
        disk.set_outage(true);
        let mut now = SimTime(100);
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        // Two retries with doubling backoff, then the hard error.
        let (_, s1) = disk.start(now).unwrap();
        assert_eq!(
            s1,
            Service::Faulted {
                attempt: 1,
                backoff: Duration::from_secs(1)
            },
            "a warm cache does not save an unreachable device"
        );
        assert!(disk.is_busy(), "backoff occupies the device");
        now += Duration::from_secs(1);
        disk.retry_elapsed(now);
        let (_, s2) = disk.start(now).unwrap();
        assert_eq!(
            s2,
            Service::Faulted {
                attempt: 2,
                backoff: Duration::from_secs(2)
            }
        );
        now += Duration::from_secs(2);
        disk.retry_elapsed(now);
        let (_, s3) = disk.start(now).unwrap();
        assert_eq!(s3, Service::FaultExhausted);
        assert!(!disk.is_busy(), "hard error leaves the disk idle");
        // Backoff never counted as busy time.
        assert_eq!(disk.utilization(now), 0.0);
        // Recovery: the same access succeeds (from cache) once healthy.
        disk.set_outage(false);
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        let (_, s4) = disk.start(now).unwrap();
        assert_eq!(s4, Service::CacheHit);
    }

    #[test]
    fn degrade_scales_media_time_only() {
        let g = DiskGeometry::default();
        let mut disk = cyl_disk();
        disk.set_degrade(3.0);
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        let (_, s) = disk.start(SimTime::ZERO).unwrap();
        match s {
            Service::Media { time } => {
                assert_eq!(time, g.access_time(700, 6).scale(3.0));
            }
            _ => panic!("expected media access"),
        }
        disk.finish(SimTime(100));
        // Cache hits are unaffected: the media is slow, not the cache.
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        let (_, s) = disk.start(SimTime(100)).unwrap();
        assert_eq!(s, Service::CacheHit);
    }

    #[test]
    fn cancel_queued_drops_pending_retry() {
        let mut disk = cyl_disk();
        disk.set_outage(true);
        disk.enqueue(SimTime(1), read(7, 0, 6, 700));
        let (_, s) = disk.start(SimTime::ZERO).unwrap();
        assert!(matches!(s, Service::Faulted { .. }));
        let n = disk.cancel_queued(|a| a.file == FileId::Relation(7));
        assert_eq!(n, 1, "the retried access counts as cancelled");
        // The backoff event still releases the device; nothing restarts.
        disk.retry_elapsed(SimTime(1_000_000));
        assert!(disk.start(SimTime(1_000_000)).is_none(), "queue is empty");
    }

    #[test]
    fn farm_mean_and_max_utilization() {
        let g = DiskGeometry::default();
        let mut farm = DiskFarm::new(
            2,
            || DeviceSpec::Cylinder.build(&g),
            EvictionSpec::Lru,
            6,
            SimTime::ZERO,
        );
        farm.disk_mut(0).enqueue(SimTime(1), read(0, 0, 6, 700));
        farm.disk_mut(0).start(SimTime::ZERO).unwrap();
        farm.disk_mut(0).finish(SimTime::from_secs(10));
        let now = SimTime::from_secs(10);
        assert!((farm.mean_utilization(now) - 0.5).abs() < 1e-9);
        assert!((farm.max_utilization(now) - 1.0).abs() < 1e-9);
    }
}
