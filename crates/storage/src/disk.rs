//! One physical disk: head position, a 256 KB prefetch cache, and an
//! ED+elevator queue; plus [`DiskFarm`], the set of disks.
//!
//! Section 4.2: each disk has a 256-KByte cache used for prefetching; on a
//! sequential read that misses the cache, `BlockSize` (6) pages are fetched,
//! **except during the merge phase of an external sort** (the merge reads
//! many runs concurrently, so prefetching would pollute the tiny cache).
//! Whenever queries have enough buffers they spool outputs so writes also go
//! to disk in blocks.
//!
//! The disk is a passive state machine: the simulator's disk manager calls
//! [`Disk::start`] to begin servicing a request (obtaining its service
//! time), schedules the completion on its calendar, and calls
//! [`Disk::finish`] when the event fires.

use crate::geometry::{DiskGeometry, ServiceTable};
use crate::layout::FileId;
use crate::queue::{DiskQueue, QueuedRequest};
use simkit::metrics::Utilization;
use simkit::{Duration, SimTime};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor hasher for the cache index: the key space is
/// tiny fixed-width integers, where SipHash's per-probe cost dominated the
/// read-service hot path. Only used where iteration order is never
/// observed (pure point lookups), so swapping the hasher cannot move a
/// simulated event.
#[derive(Default)]
pub struct FastHasher(u64);

/// Knuth's multiplicative constant (golden-ratio based).
const FAST_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for FastHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FAST_SEED);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(FAST_SEED);
    }

    fn finish(&self) -> u64 {
        // Final avalanche so low bits (the map's bucket index) mix.
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(FAST_SEED);
        h ^ (h >> 29)
    }
}

/// `HashMap` with [`FastHasher`], for order-insensitive point lookups.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Whether an access reads or writes the media.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoKind {
    /// Read; may hit the prefetch cache.
    Read,
    /// Write; always touches the media (write-through).
    Write,
}

/// A physical disk access (page range within one file).
#[derive(Clone, Debug)]
pub struct Access {
    /// Opaque owner tag (the simulator stores the owning query id here so
    /// aborted queries' pending requests can be cancelled).
    pub owner: u64,
    /// File being accessed.
    pub file: FileId,
    /// First page of the range (file-relative).
    pub first_page: u32,
    /// Number of pages.
    pub pages: u32,
    /// Read or write.
    pub kind: IoKind,
    /// If true, a read miss fetches whole cache blocks (sequential
    /// prefetch); merge-phase reads set this to false.
    pub prefetch: bool,
    /// Target cylinder (resolved from the layout by the caller).
    pub cylinder: u32,
}

/// A cache line: one block of pages of one file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct CacheKey {
    file: FileId,
    block: u32,
}

/// Slot sentinel for the ends of the [`IndexedLru`] list.
const LRU_NIL: u32 = u32::MAX;

/// One slab node of the LRU list.
#[derive(Clone, Copy, Debug)]
struct LruNode {
    key: CacheKey,
    prev: u32,
    next: u32,
}

/// Key → slot index of the LRU order, sized to the cache it serves: at the
/// paper's 5-line capacity a linear scan over a flat pair vector wins (the
/// profile showed even a fast-hashed map dominating the read-service path);
/// larger caches keep the hashed index so big-cache experiments stay O(1).
/// Both arms are pinned against the same reference model by
/// `crates/storage/tests/lru_model.rs` (paper size *and* stress shapes).
#[derive(Debug)]
enum KeyIndex {
    /// Small capacity: flat `(key, slot)` pairs, scanned.
    Small(Vec<(CacheKey, u32)>),
    /// Large capacity: hashed point lookups.
    Hashed(FastMap<CacheKey, u32>),
}

impl KeyIndex {
    /// Largest capacity (entries) served by the linear index.
    const SMALL_MAX: usize = 32;

    fn with_capacity(entries: usize) -> Self {
        if entries <= Self::SMALL_MAX {
            KeyIndex::Small(Vec::with_capacity(entries + 1))
        } else {
            KeyIndex::Hashed(FastMap::default())
        }
    }

    fn len(&self) -> usize {
        match self {
            KeyIndex::Small(v) => v.len(),
            KeyIndex::Hashed(m) => m.len(),
        }
    }

    fn get(&self, key: &CacheKey) -> Option<u32> {
        match self {
            KeyIndex::Small(v) => v.iter().find(|(k, _)| k == key).map(|&(_, slot)| slot),
            KeyIndex::Hashed(m) => m.get(key).copied(),
        }
    }

    fn insert(&mut self, key: CacheKey, slot: u32) {
        match self {
            KeyIndex::Small(v) => {
                debug_assert!(!v.iter().any(|(k, _)| *k == key));
                v.push((key, slot));
            }
            KeyIndex::Hashed(m) => {
                m.insert(key, slot);
            }
        }
    }

    fn remove(&mut self, key: &CacheKey) {
        match self {
            KeyIndex::Small(v) => {
                if let Some(at) = v.iter().position(|(k, _)| k == key) {
                    v.swap_remove(at);
                }
            }
            KeyIndex::Hashed(m) => {
                m.remove(key);
            }
        }
    }
}

/// Indexed LRU order: a doubly-linked list over a slab of nodes plus a
/// capacity-sized [`KeyIndex`] from key to slot. Every operation the
/// prefetch cache needs — membership, move-to-back, insert, evict-front,
/// retain — is O(1) in the list (retain is O(len)), replacing the
/// `VecDeque::contains` / `position` linear scans that ran on every read
/// service. The observable order semantics are *identical* to the deque
/// version — `crates/storage/tests/lru_model.rs` pins that against a
/// reference model.
#[derive(Debug)]
struct IndexedLru {
    index: KeyIndex,
    nodes: Vec<LruNode>,
    free: Vec<u32>,
    /// Least-recently-used end (the eviction victim).
    head: u32,
    /// Most-recently-used end.
    tail: u32,
}

impl IndexedLru {
    fn new(capacity_entries: usize) -> Self {
        IndexedLru {
            index: KeyIndex::with_capacity(capacity_entries),
            nodes: Vec::new(),
            free: Vec::new(),
            head: LRU_NIL,
            tail: LRU_NIL,
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.index.get(key).is_some()
    }

    /// Detach `slot` from the list (it stays allocated).
    fn unlink(&mut self, slot: u32) {
        let LruNode { prev, next, .. } = self.nodes[slot as usize];
        if prev == LRU_NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == LRU_NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    /// Attach a detached `slot` at the MRU end.
    fn link_back(&mut self, slot: u32) {
        let node = &mut self.nodes[slot as usize];
        node.prev = self.tail;
        node.next = LRU_NIL;
        if self.tail == LRU_NIL {
            self.head = slot;
        } else {
            self.nodes[self.tail as usize].next = slot;
        }
        self.tail = slot;
    }

    /// Move `key` to the MRU end if present.
    fn touch(&mut self, key: &CacheKey) {
        if let Some(slot) = self.index.get(key) {
            self.unlink(slot);
            self.link_back(slot);
        }
    }

    /// Insert `key` at the MRU end (moving it there if already present —
    /// the deque version's remove + push_back).
    fn insert_back(&mut self, key: CacheKey) {
        if let Some(slot) = self.index.get(&key) {
            self.unlink(slot);
            self.link_back(slot);
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s as usize].key = key;
                s
            }
            None => {
                let s = u32::try_from(self.nodes.len()).expect("cache fits u32 slots");
                self.nodes.push(LruNode {
                    key,
                    prev: LRU_NIL,
                    next: LRU_NIL,
                });
                s
            }
        };
        self.index.insert(key, slot);
        self.link_back(slot);
    }

    /// Evict the LRU entry.
    fn pop_front(&mut self) -> Option<CacheKey> {
        if self.head == LRU_NIL {
            return None;
        }
        let slot = self.head;
        let key = self.nodes[slot as usize].key;
        self.unlink(slot);
        self.free.push(slot);
        self.index.remove(&key);
        Some(key)
    }

    /// Drop every entry failing `pred`, preserving the order of the rest.
    fn retain(&mut self, pred: impl Fn(&CacheKey) -> bool) {
        let mut cur = self.head;
        while cur != LRU_NIL {
            let LruNode { key, next, .. } = self.nodes[cur as usize];
            if !pred(&key) {
                self.unlink(cur);
                self.free.push(cur);
                self.index.remove(&key);
            }
            cur = next;
        }
    }
}

/// LRU prefetch cache, tracked at block granularity.
#[derive(Debug)]
pub struct PrefetchCache {
    capacity_blocks: usize,
    block_pages: u32,
    lru: IndexedLru,
    hits: u64,
    misses: u64,
}

impl PrefetchCache {
    /// Cache with `capacity_pages` pages organized in `block_pages`-page
    /// lines (256 KB / 8 KB = 32 pages = 5 whole 6-page blocks).
    pub fn new(capacity_pages: u32, block_pages: u32) -> Self {
        assert!(block_pages > 0);
        let capacity_blocks = (capacity_pages / block_pages).max(1) as usize;
        PrefetchCache {
            capacity_blocks,
            block_pages,
            lru: IndexedLru::new(capacity_blocks),
            hits: 0,
            misses: 0,
        }
    }

    fn key(&self, file: FileId, page: u32) -> CacheKey {
        CacheKey {
            file,
            block: page / self.block_pages,
        }
    }

    /// True if every page of `[first, first+pages)` of `file` is cached.
    /// Touches the lines (LRU update) on a full hit. Runs on every read
    /// service; membership and the touch are both O(1) per block through
    /// the indexed order.
    pub fn lookup(&mut self, file: FileId, first: u32, pages: u32) -> bool {
        let first_block = first / self.block_pages;
        let last_block = (first + pages.max(1) - 1) / self.block_pages;
        let all_present = (first_block..=last_block)
            .all(|block| self.lru.contains(&CacheKey { file, block }));
        if all_present {
            self.hits += 1;
            for block in first_block..=last_block {
                self.lru.touch(&CacheKey { file, block });
            }
        } else {
            self.misses += 1;
        }
        all_present
    }

    /// Insert the lines covering `[first, first+pages)` of `file`.
    pub fn insert(&mut self, file: FileId, first: u32, pages: u32) {
        for p in (first..first + pages.max(1)).step_by(self.block_pages as usize) {
            let k = self.key(file, p);
            self.lru.insert_back(k);
            while self.lru.len() > self.capacity_blocks {
                self.lru.pop_front();
            }
        }
    }

    /// Drop every line belonging to `file` (called when a temp is deleted).
    pub fn invalidate_file(&mut self, file: FileId) {
        self.lru.retain(|k| k.file != file);
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// The service decision for one access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Service {
    /// Satisfied from the prefetch cache; no media access.
    CacheHit,
    /// Requires the media for `time`, moving the head to `new_head`.
    Media {
        /// Total seek + rotation + transfer time.
        time: Duration,
        /// Cylinder the head rests on afterwards.
        new_head: u32,
    },
}

/// One disk: queue + head + cache + utilization accounting.
pub struct Disk {
    geometry: DiskGeometry,
    /// Memoized seek/rotation/transfer components (kills the per-access
    /// `sqrt` and float-tick roundings; bit-equal to the direct math).
    service_table: ServiceTable,
    queue: DiskQueue<Access>,
    head: u32,
    busy: bool,
    cache: PrefetchCache,
    utilization: Utilization,
    completed: u64,
}

impl Disk {
    /// A new idle disk with its head parked at cylinder 0.
    pub fn new(geometry: DiskGeometry, block_pages: u32, start: SimTime) -> Self {
        Disk {
            geometry,
            service_table: ServiceTable::new(&geometry),
            queue: DiskQueue::new(),
            head: 0,
            busy: false,
            cache: PrefetchCache::new(geometry.cache_pages(), block_pages),
            utilization: Utilization::new(start),
            completed: 0,
        }
    }

    /// Queue an access with ED priority `deadline`.
    pub fn enqueue(&mut self, deadline: SimTime, access: Access) {
        self.queue.push(QueuedRequest {
            deadline,
            cylinder: access.cylinder,
            tag: access,
        });
    }

    /// True if the disk is currently servicing a request.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Number of queued (not yet started) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Begin servicing the next queued request, if idle and work exists.
    /// Returns the access and its service outcome; the caller schedules the
    /// completion event (immediately for a cache hit).
    pub fn start(&mut self, now: SimTime) -> Option<(Access, Service)> {
        if self.busy {
            return None;
        }
        let request = self.queue.pop(self.head)?;
        let access = request.tag;
        let service = self.service(&access);
        if let Service::Media { new_head, .. } = service {
            self.head = new_head;
        }
        self.busy = true;
        self.utilization.begin_busy(now);
        Some((access, service))
    }

    /// Compute the service decision for `access` (cache consult + timing).
    fn service(&mut self, access: &Access) -> Service {
        match access.kind {
            IoKind::Read => {
                if self
                    .cache
                    .lookup(access.file, access.first_page, access.pages)
                {
                    return Service::CacheHit;
                }
                // Fetch: with prefetch on, round the fetch up to whole
                // blocks starting at the block boundary.
                let fetch_pages = if access.prefetch {
                    let bp = self.cache.block_pages;
                    let first_block = access.first_page / bp;
                    let last_block = (access.first_page + access.pages.max(1) - 1) / bp;
                    (last_block - first_block + 1) * bp
                } else {
                    access.pages.max(1)
                };
                let dist = self.head.abs_diff(access.cylinder);
                let time =
                    self.service_table
                        .access_time(&self.geometry, dist, fetch_pages);
                if access.prefetch {
                    let bp = self.cache.block_pages;
                    self.cache.insert(
                        access.file,
                        (access.first_page / bp) * bp,
                        fetch_pages,
                    );
                }
                Service::Media {
                    time,
                    new_head: access.cylinder,
                }
            }
            IoKind::Write => {
                let dist = self.head.abs_diff(access.cylinder);
                let time = self.service_table.access_time(
                    &self.geometry,
                    dist,
                    access.pages.max(1),
                );
                Service::Media {
                    time,
                    new_head: access.cylinder,
                }
            }
        }
    }

    /// Mark the in-flight request complete at `now`.
    pub fn finish(&mut self, now: SimTime) {
        debug_assert!(self.busy, "finish without start");
        self.busy = false;
        self.completed += 1;
        self.utilization.end_busy(now);
    }

    /// Remove queued requests matching `pred` (aborted queries). In-flight
    /// requests are allowed to complete (a started disk access cannot be
    /// recalled).
    pub fn cancel_queued<F: Fn(&Access) -> bool>(&mut self, pred: F) -> usize {
        self.queue.discard_where(|a| pred(a))
    }

    /// Invalidate cached lines of a deleted file.
    pub fn invalidate(&mut self, file: FileId) {
        self.cache.invalidate_file(file);
    }

    /// Busy fraction since the start of the current measurement window.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.utilization.fraction(now)
    }

    /// Restart the utilization window at `now`.
    pub fn reset_utilization(&mut self, now: SimTime) {
        self.utilization.reset_window(now);
    }

    /// Completed request count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }
}

/// All the disks in the system.
pub struct DiskFarm {
    disks: Vec<Disk>,
}

impl DiskFarm {
    /// `n` identical disks.
    pub fn new(n: u32, geometry: DiskGeometry, block_pages: u32, start: SimTime) -> Self {
        assert!(n > 0, "a database system needs at least one disk");
        DiskFarm {
            disks: (0..n)
                .map(|_| Disk::new(geometry, block_pages, start))
                .collect(),
        }
    }

    /// Number of disks.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Always false: the farm is non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Mutable access to disk `i`.
    pub fn disk_mut(&mut self, i: usize) -> &mut Disk {
        &mut self.disks[i]
    }

    /// Immutable access to disk `i`.
    pub fn disk(&self, i: usize) -> &Disk {
        &self.disks[i]
    }

    /// Mean utilization across disks (the "disk resource" reading the RU
    /// heuristic uses).
    pub fn mean_utilization(&self, now: SimTime) -> f64 {
        self.disks.iter().map(|d| d.utilization(now)).sum::<f64>()
            / self.disks.len() as f64
    }

    /// Highest per-disk utilization.
    pub fn max_utilization(&self, now: SimTime) -> f64 {
        self.disks
            .iter()
            .map(|d| d.utilization(now))
            .fold(0.0, f64::max)
    }

    /// Restart every disk's utilization window.
    pub fn reset_utilization(&mut self, now: SimTime) {
        for d in &mut self.disks {
            d.reset_utilization(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(file: u32, first: u32, pages: u32, cylinder: u32) -> Access {
        Access {
            owner: u64::from(file),
            file: FileId::Relation(file),
            first_page: first,
            pages,
            kind: IoKind::Read,
            prefetch: true,
            cylinder,
        }
    }

    #[test]
    fn sequential_read_misses_then_hits() {
        let mut disk = Disk::new(DiskGeometry::default(), 6, SimTime::ZERO);
        disk.enqueue(SimTime(10), read(0, 0, 6, 700));
        let (_, s1) = disk.start(SimTime::ZERO).unwrap();
        assert!(matches!(s1, Service::Media { .. }));
        disk.finish(SimTime(1000));
        // Re-read the same block: cache hit.
        disk.enqueue(SimTime(10), read(0, 0, 6, 700));
        let (_, s2) = disk.start(SimTime(1000)).unwrap();
        assert_eq!(s2, Service::CacheHit);
        disk.finish(SimTime(1000));
        assert_eq!(disk.cache_stats().0, 1);
    }

    #[test]
    fn non_prefetch_read_does_not_populate_cache() {
        let mut disk = Disk::new(DiskGeometry::default(), 6, SimTime::ZERO);
        let mut acc = read(0, 0, 1, 700);
        acc.prefetch = false;
        disk.enqueue(SimTime(10), acc.clone());
        let (_, s1) = disk.start(SimTime::ZERO).unwrap();
        match s1 {
            Service::Media { time, .. } => {
                // Single page, no block round-up.
                let expected = DiskGeometry::default().access_time(700, 1);
                assert_eq!(time, expected);
            }
            Service::CacheHit => panic!("cold read cannot hit"),
        }
        disk.finish(SimTime(100));
        disk.enqueue(SimTime(10), acc);
        let (_, s2) = disk.start(SimTime(100)).unwrap();
        assert!(
            matches!(s2, Service::Media { .. }),
            "no prefetch, so no hit"
        );
    }

    #[test]
    fn prefetch_rounds_to_block() {
        let g = DiskGeometry::default();
        let mut disk = Disk::new(g, 6, SimTime::ZERO);
        // 2-page read spanning a block: fetch rounds up to 6 pages.
        disk.enqueue(SimTime(10), read(0, 2, 2, 700));
        let (_, s) = disk.start(SimTime::ZERO).unwrap();
        match s {
            Service::Media { time, .. } => {
                assert_eq!(time, g.access_time(700, 6));
            }
            _ => panic!("expected media access"),
        }
    }

    #[test]
    fn head_moves_and_second_seek_is_shorter() {
        let g = DiskGeometry::default();
        let mut disk = Disk::new(g, 6, SimTime::ZERO);
        disk.enqueue(SimTime(10), read(0, 0, 6, 700));
        let (_, s1) = disk.start(SimTime::ZERO).unwrap();
        let t1 = match s1 {
            Service::Media { time, .. } => time,
            _ => panic!(),
        };
        disk.finish(SimTime(1));
        disk.enqueue(SimTime(10), read(1, 0, 6, 705));
        let (_, s2) = disk.start(SimTime(1)).unwrap();
        let t2 = match s2 {
            Service::Media { time, .. } => time,
            _ => panic!(),
        };
        assert!(t2 < t1, "short seek {t2:?} should beat long seek {t1:?}");
    }

    #[test]
    fn busy_disk_does_not_start_twice() {
        let mut disk = Disk::new(DiskGeometry::default(), 6, SimTime::ZERO);
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        disk.enqueue(SimTime(2), read(1, 0, 6, 800));
        assert!(disk.start(SimTime::ZERO).is_some());
        assert!(disk.start(SimTime::ZERO).is_none(), "busy");
        disk.finish(SimTime(100));
        assert!(disk.start(SimTime(100)).is_some());
    }

    #[test]
    fn utilization_accounting() {
        let mut disk = Disk::new(DiskGeometry::default(), 6, SimTime::ZERO);
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        disk.start(SimTime::ZERO).unwrap();
        disk.finish(SimTime::from_secs(5));
        let u = disk.utilization(SimTime::from_secs(10));
        assert!((u - 0.5).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn cancel_queued_drops_only_matching() {
        let mut disk = Disk::new(DiskGeometry::default(), 6, SimTime::ZERO);
        disk.enqueue(SimTime(1), read(7, 0, 6, 700));
        disk.enqueue(SimTime(2), read(8, 0, 6, 800));
        let n = disk.cancel_queued(|a| a.file == FileId::Relation(7));
        assert_eq!(n, 1);
        assert_eq!(disk.queue_len(), 1);
    }

    #[test]
    fn cache_invalidation() {
        let mut disk = Disk::new(DiskGeometry::default(), 6, SimTime::ZERO);
        let temp = FileId::Temp(3);
        let mut acc = read(0, 0, 6, 100);
        acc.file = temp;
        disk.enqueue(SimTime(1), acc.clone());
        disk.start(SimTime::ZERO).unwrap();
        disk.finish(SimTime(10));
        disk.invalidate(temp);
        disk.enqueue(SimTime(1), acc);
        let (_, s) = disk.start(SimTime(10)).unwrap();
        assert!(
            matches!(s, Service::Media { .. }),
            "invalidated line must miss"
        );
    }

    #[test]
    fn lru_eviction_under_capacity_pressure() {
        // Cache holds 32/6 = 5 blocks; touching 6 distinct blocks evicts the
        // first.
        let mut disk = Disk::new(DiskGeometry::default(), 6, SimTime::ZERO);
        let mut t = 0u64;
        for b in 0..6u32 {
            disk.enqueue(SimTime(1), read(0, b * 6, 6, 700));
            disk.start(SimTime(t)).unwrap();
            t += 100;
            disk.finish(SimTime(t));
        }
        // Block 0 was evicted.
        disk.enqueue(SimTime(1), read(0, 0, 6, 700));
        let (_, s) = disk.start(SimTime(t)).unwrap();
        assert!(matches!(s, Service::Media { .. }));
    }

    #[test]
    fn farm_mean_and_max_utilization() {
        let mut farm = DiskFarm::new(2, DiskGeometry::default(), 6, SimTime::ZERO);
        farm.disk_mut(0).enqueue(SimTime(1), read(0, 0, 6, 700));
        farm.disk_mut(0).start(SimTime::ZERO).unwrap();
        farm.disk_mut(0).finish(SimTime::from_secs(10));
        let now = SimTime::from_secs(10);
        assert!((farm.mean_utilization(now) - 0.5).abs() < 1e-9);
        assert!((farm.max_utilization(now) - 1.0).abs() < 1e-9);
    }
}
