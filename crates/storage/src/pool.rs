//! The per-disk buffer pool (prefetch cache) with pluggable eviction.
//!
//! Section 4.2 gives each disk a 256-KByte prefetch cache; the seed
//! hard-wired LRU eviction into `PrefetchCache`. This module generalizes it
//! into [`BufferPool`] — hit/miss accounting plus block-granular line
//! management — over an [`EvictionPolicy`] trait with two implementations:
//!
//! * [`IndexedLru`] — the existing LRU order (slab doubly-linked list +
//!   capacity-sized key index), semantics identical to the seed's deque
//!   cache and pinned by `crates/storage/tests/lru_model.rs` and the golden
//!   report.
//! * [`LruKPolicy`] — LRU-K \[O'Neil et al. 93\]: each line keeps its last
//!   `K` access stamps; the victim is the line whose K-th most recent
//!   access is oldest, with lines holding fewer than `K` stamps evicted
//!   first (oldest first access breaks the tie). LRU-1 degenerates to
//!   exact LRU.
//!
//! [`EvictionSpec`] is the configuration-surface enum selecting a policy,
//! mirroring `DeviceSpec` on the device axis.

use crate::layout::FileId;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor hasher for the cache index: the key space is
/// tiny fixed-width integers, where SipHash's per-probe cost dominated the
/// read-service hot path. Only used where iteration order is never
/// observed (pure point lookups), so swapping the hasher cannot move a
/// simulated event.
#[derive(Default)]
pub struct FastHasher(u64);

/// Knuth's multiplicative constant (golden-ratio based).
const FAST_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for FastHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FAST_SEED);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(FAST_SEED);
    }

    fn finish(&self) -> u64 {
        // Final avalanche so low bits (the map's bucket index) mix.
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(FAST_SEED);
        h ^ (h >> 29)
    }
}

/// `HashMap` with [`FastHasher`], for order-insensitive point lookups.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A cache line: one block of pages of one file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// File the line belongs to.
    pub file: FileId,
    /// Block index within the file (page / block_pages).
    pub block: u32,
}

/// Slot sentinel for the ends of the [`IndexedLru`] list.
const LRU_NIL: u32 = u32::MAX;

/// One slab node of the LRU list.
#[derive(Clone, Copy, Debug)]
struct LruNode {
    key: CacheKey,
    prev: u32,
    next: u32,
}

/// Key → slot index of an eviction order, sized to the cache it serves: at
/// the paper's 5-line capacity a linear scan over a flat pair vector wins
/// (the profile showed even a fast-hashed map dominating the read-service
/// path); larger caches keep the hashed index so big-cache experiments
/// stay O(1). Both arms are pinned against the same reference models by
/// `crates/storage/tests/lru_model.rs` (paper size *and* stress shapes).
#[derive(Debug)]
enum KeyIndex {
    /// Small capacity: flat `(key, slot)` pairs, scanned.
    Small(Vec<(CacheKey, u32)>),
    /// Large capacity: hashed point lookups.
    Hashed(FastMap<CacheKey, u32>),
}

impl KeyIndex {
    /// Largest capacity (entries) served by the linear index.
    const SMALL_MAX: usize = 32;

    fn with_capacity(entries: usize) -> Self {
        if entries <= Self::SMALL_MAX {
            KeyIndex::Small(Vec::with_capacity(entries + 1))
        } else {
            KeyIndex::Hashed(FastMap::default())
        }
    }

    fn len(&self) -> usize {
        match self {
            KeyIndex::Small(v) => v.len(),
            KeyIndex::Hashed(m) => m.len(),
        }
    }

    fn get(&self, key: &CacheKey) -> Option<u32> {
        match self {
            KeyIndex::Small(v) => v.iter().find(|(k, _)| k == key).map(|&(_, slot)| slot),
            KeyIndex::Hashed(m) => m.get(key).copied(),
        }
    }

    fn insert(&mut self, key: CacheKey, slot: u32) {
        match self {
            KeyIndex::Small(v) => {
                debug_assert!(!v.iter().any(|(k, _)| *k == key));
                v.push((key, slot));
            }
            KeyIndex::Hashed(m) => {
                m.insert(key, slot);
            }
        }
    }

    fn remove(&mut self, key: &CacheKey) {
        match self {
            KeyIndex::Small(v) => {
                if let Some(at) = v.iter().position(|(k, _)| k == key) {
                    v.swap_remove(at);
                }
            }
            KeyIndex::Hashed(m) => {
                m.remove(key);
            }
        }
    }
}

/// How a [`BufferPool`] orders its lines for replacement.
///
/// Object-safe: the pool boxes one, selected by [`EvictionSpec`]. The
/// contract mirrors what block-granular caching needs — membership,
/// access recording, insertion (which records an access when the line is
/// already resident), victim selection, and filtered invalidation.
pub trait EvictionPolicy: std::fmt::Debug + Send {
    /// Short policy name for reports (`"lru"`, `"lru-2"`).
    fn name(&self) -> String;

    /// Number of resident lines.
    fn len(&self) -> usize;

    /// True when no lines are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `key` is resident.
    fn contains(&self, key: &CacheKey) -> bool;

    /// Record an access to `key` if resident (cache hit).
    fn touch(&mut self, key: &CacheKey);

    /// Make `key` resident, recording an access (re-inserting a resident
    /// line is equivalent to touching it). The caller evicts afterwards if
    /// the pool is over capacity.
    fn insert(&mut self, key: CacheKey);

    /// Remove and return the replacement victim, if any line is resident.
    fn evict(&mut self) -> Option<CacheKey>;

    /// Drop every line failing `pred`, preserving the order of the rest.
    fn retain(&mut self, pred: &dyn Fn(&CacheKey) -> bool);
}

/// Indexed LRU order: a doubly-linked list over a slab of nodes plus a
/// capacity-sized `KeyIndex` from key to slot. Every operation the
/// buffer pool needs — membership, move-to-back, insert, evict-front,
/// retain — is O(1) in the list (retain is O(len)), replacing the
/// `VecDeque::contains` / `position` linear scans that ran on every read
/// service. The observable order semantics are *identical* to the seed's
/// deque version — `crates/storage/tests/lru_model.rs` pins that against a
/// reference model.
#[derive(Debug)]
pub struct IndexedLru {
    index: KeyIndex,
    nodes: Vec<LruNode>,
    free: Vec<u32>,
    /// Least-recently-used end (the eviction victim).
    head: u32,
    /// Most-recently-used end.
    tail: u32,
}

impl IndexedLru {
    /// An empty order sized for `capacity_entries` lines.
    pub fn new(capacity_entries: usize) -> Self {
        IndexedLru {
            index: KeyIndex::with_capacity(capacity_entries),
            nodes: Vec::new(),
            free: Vec::new(),
            head: LRU_NIL,
            tail: LRU_NIL,
        }
    }

    /// Detach `slot` from the list (it stays allocated).
    fn unlink(&mut self, slot: u32) {
        let LruNode { prev, next, .. } = self.nodes[slot as usize];
        if prev == LRU_NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == LRU_NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    /// Attach a detached `slot` at the MRU end.
    fn link_back(&mut self, slot: u32) {
        let node = &mut self.nodes[slot as usize];
        node.prev = self.tail;
        node.next = LRU_NIL;
        if self.tail == LRU_NIL {
            self.head = slot;
        } else {
            self.nodes[self.tail as usize].next = slot;
        }
        self.tail = slot;
    }
}

impl EvictionPolicy for IndexedLru {
    fn name(&self) -> String {
        "lru".into()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.index.get(key).is_some()
    }

    /// Move `key` to the MRU end if present.
    fn touch(&mut self, key: &CacheKey) {
        if let Some(slot) = self.index.get(key) {
            self.unlink(slot);
            self.link_back(slot);
        }
    }

    /// Insert `key` at the MRU end (moving it there if already present —
    /// the deque version's remove + push_back).
    fn insert(&mut self, key: CacheKey) {
        if let Some(slot) = self.index.get(&key) {
            self.unlink(slot);
            self.link_back(slot);
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s as usize].key = key;
                s
            }
            None => {
                let s = u32::try_from(self.nodes.len()).expect("cache fits u32 slots");
                self.nodes.push(LruNode {
                    key,
                    prev: LRU_NIL,
                    next: LRU_NIL,
                });
                s
            }
        };
        self.index.insert(key, slot);
        self.link_back(slot);
    }

    /// Evict the LRU entry.
    fn evict(&mut self) -> Option<CacheKey> {
        if self.head == LRU_NIL {
            return None;
        }
        let slot = self.head;
        let key = self.nodes[slot as usize].key;
        self.unlink(slot);
        self.free.push(slot);
        self.index.remove(&key);
        Some(key)
    }

    fn retain(&mut self, pred: &dyn Fn(&CacheKey) -> bool) {
        let mut cur = self.head;
        while cur != LRU_NIL {
            let LruNode { key, next, .. } = self.nodes[cur as usize];
            if !pred(&key) {
                self.unlink(cur);
                self.free.push(cur);
                self.index.remove(&key);
            }
            cur = next;
        }
    }
}

/// One LRU-K line: its key and up to `k` most-recent access stamps
/// (oldest first).
#[derive(Clone, Debug)]
struct LruKEntry {
    key: CacheKey,
    live: bool,
    /// Logical access stamps, oldest at index 0, at most `k` retained.
    history: Vec<u64>,
}

/// LRU-K replacement \[O'Neil et al. 93\]: evict the line whose K-th most
/// recent access lies furthest in the past. Lines touched fewer than K
/// times have infinite backward-K distance and are evicted before any
/// fully-historied line, oldest first access first. Stamps come from a
/// pool-global logical access counter, so all comparisons are exact and
/// tie-free (every stamp is unique) — victim selection is deterministic
/// regardless of slab layout.
///
/// Eviction scans the slab — O(capacity) — which is fine at cache-line
/// counts (the paper's pool holds 5 lines; the stress shapes dozens).
#[derive(Debug)]
pub struct LruKPolicy {
    k: u32,
    /// Pool-global logical clock, incremented on every recorded access.
    clock: u64,
    index: KeyIndex,
    slots: Vec<LruKEntry>,
    free: Vec<u32>,
}

impl LruKPolicy {
    /// A new policy keeping `k` stamps per line.
    pub fn new(k: u32, capacity_entries: usize) -> Self {
        assert!(k > 0, "LRU-K needs at least one stamp of history");
        LruKPolicy {
            k,
            clock: 0,
            index: KeyIndex::with_capacity(capacity_entries),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Record one access to the line in `slot`.
    fn record(&mut self, slot: u32) {
        self.clock += 1;
        let entry = &mut self.slots[slot as usize];
        entry.history.push(self.clock);
        if entry.history.len() > self.k as usize {
            entry.history.remove(0);
        }
    }

    /// The victim-selection key of `entry`: lines with short history sort
    /// before full-history lines; within each class the oldest retained
    /// stamp (first access, resp. K-th most recent access) decides.
    fn victim_key(entry: &LruKEntry, k: u32) -> (bool, u64) {
        let full = entry.history.len() >= k as usize;
        (full, entry.history[0])
    }
}

impl EvictionPolicy for LruKPolicy {
    fn name(&self) -> String {
        format!("lru-{}", self.k)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.index.get(key).is_some()
    }

    fn touch(&mut self, key: &CacheKey) {
        if let Some(slot) = self.index.get(key) {
            self.record(slot);
        }
    }

    fn insert(&mut self, key: CacheKey) {
        if let Some(slot) = self.index.get(&key) {
            self.record(slot);
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                let entry = &mut self.slots[s as usize];
                entry.key = key;
                entry.live = true;
                entry.history.clear();
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("cache fits u32 slots");
                self.slots.push(LruKEntry {
                    key,
                    live: true,
                    history: Vec::with_capacity(self.k as usize + 1),
                });
                s
            }
        };
        self.index.insert(key, slot);
        self.record(slot);
    }

    fn evict(&mut self) -> Option<CacheKey> {
        let k = self.k;
        let victim = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, e)| e.live)
            .min_by_key(|(_, e)| Self::victim_key(e, k))
            .map(|(i, _)| i as u32)?;
        let entry = &mut self.slots[victim as usize];
        entry.live = false;
        let key = entry.key;
        self.free.push(victim);
        self.index.remove(&key);
        Some(key)
    }

    fn retain(&mut self, pred: &dyn Fn(&CacheKey) -> bool) {
        for i in 0..self.slots.len() {
            let entry = &self.slots[i];
            if entry.live && !pred(&entry.key) {
                let key = entry.key;
                self.slots[i].live = false;
                self.free.push(i as u32);
                self.index.remove(&key);
            }
        }
    }
}

/// Which eviction policy a buffer pool runs — the cache axis of the
/// configuration surface (`ResourceConfig::eviction`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EvictionSpec {
    /// Plain LRU (the seed behavior; the default).
    #[default]
    Lru,
    /// LRU-K with `k` retained access stamps per line.
    LruK {
        /// History depth (K ≥ 1; K = 2 is the classic setting).
        k: u32,
    },
}

impl EvictionSpec {
    /// Short policy name for cell labels (`"lru"`, `"lruk"`).
    pub fn name(&self) -> &'static str {
        match self {
            EvictionSpec::Lru => "lru",
            EvictionSpec::LruK { .. } => "lruk",
        }
    }

    /// Build a fresh policy sized for `capacity_entries` lines.
    pub fn build(&self, capacity_entries: usize) -> Box<dyn EvictionPolicy> {
        match self {
            EvictionSpec::Lru => Box::new(IndexedLru::new(capacity_entries)),
            EvictionSpec::LruK { k } => Box::new(LruKPolicy::new(*k, capacity_entries)),
        }
    }
}

/// Block-granular buffer pool: hit/miss accounting over an eviction
/// policy. This is the prefetch cache of Section 4.2, generalized — the
/// seed's `PrefetchCache` is exactly `BufferPool` with [`EvictionSpec::Lru`]
/// (the name survives as an alias).
#[derive(Debug)]
pub struct BufferPool {
    capacity_blocks: usize,
    block_pages: u32,
    policy: Box<dyn EvictionPolicy>,
    hits: u64,
    misses: u64,
}

/// The paper's name for the per-disk pool.
pub type PrefetchCache = BufferPool;

impl BufferPool {
    /// LRU pool with `capacity_pages` pages organized in `block_pages`-page
    /// lines (256 KB / 8 KB = 32 pages = 5 whole 6-page blocks) — the seed
    /// constructor, byte-identical behavior.
    pub fn new(capacity_pages: u32, block_pages: u32) -> Self {
        Self::with_policy(capacity_pages, block_pages, EvictionSpec::Lru)
    }

    /// Pool with an explicit eviction policy.
    pub fn with_policy(
        capacity_pages: u32,
        block_pages: u32,
        eviction: EvictionSpec,
    ) -> Self {
        assert!(block_pages > 0);
        let capacity_blocks = (capacity_pages / block_pages).max(1) as usize;
        BufferPool {
            capacity_blocks,
            block_pages,
            policy: eviction.build(capacity_blocks),
            hits: 0,
            misses: 0,
        }
    }

    /// Pages per cache line.
    pub fn block_pages(&self) -> u32 {
        self.block_pages
    }

    /// The active eviction policy's name.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    fn key(&self, file: FileId, page: u32) -> CacheKey {
        CacheKey {
            file,
            block: page / self.block_pages,
        }
    }

    /// True if every page of `[first, first+pages)` of `file` is cached.
    /// Records the accesses (policy update) on a full hit. Runs on every
    /// read service; membership and the touch are both O(1) per block
    /// through the indexed order.
    pub fn lookup(&mut self, file: FileId, first: u32, pages: u32) -> bool {
        let first_block = first / self.block_pages;
        let last_block = (first + pages.max(1) - 1) / self.block_pages;
        let all_present = (first_block..=last_block)
            .all(|block| self.policy.contains(&CacheKey { file, block }));
        if all_present {
            self.hits += 1;
            for block in first_block..=last_block {
                self.policy.touch(&CacheKey { file, block });
            }
        } else {
            self.misses += 1;
        }
        all_present
    }

    /// Insert the lines covering `[first, first+pages)` of `file`.
    pub fn insert(&mut self, file: FileId, first: u32, pages: u32) {
        for p in (first..first + pages.max(1)).step_by(self.block_pages as usize) {
            let k = self.key(file, p);
            self.policy.insert(k);
            while self.policy.len() > self.capacity_blocks {
                self.policy.evict();
            }
        }
    }

    /// Drop every line belonging to `file` (called when a temp is deleted).
    pub fn invalidate_file(&mut self, file: FileId) {
        self.policy.retain(&|k| k.file != file);
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(file: u32, block: u32) -> CacheKey {
        CacheKey {
            file: FileId::Relation(file),
            block,
        }
    }

    #[test]
    fn lruk_scan_resistance() {
        // The motivating LRU-K behavior: a twice-touched line survives a
        // sweep of once-touched lines that would flush plain LRU.
        let mut pool = BufferPool::with_policy(12, 6, EvictionSpec::LruK { k: 2 });
        let hot = FileId::Relation(0);
        pool.insert(hot, 0, 6);
        pool.insert(hot, 0, 6); // second access: full history
        for f in 1..5u32 {
            pool.insert(FileId::Relation(f), 0, 6); // scan: single-touch lines
        }
        assert!(pool.lookup(hot, 0, 6), "hot line must survive the scan");

        let mut lru = BufferPool::with_policy(12, 6, EvictionSpec::Lru);
        lru.insert(hot, 0, 6);
        lru.insert(hot, 0, 6);
        for f in 1..5u32 {
            lru.insert(FileId::Relation(f), 0, 6);
        }
        assert!(!lru.lookup(hot, 0, 6), "plain LRU flushes the hot line");
    }

    #[test]
    fn lruk_evicts_short_history_before_full_history() {
        let mut p = LruKPolicy::new(2, 8);
        p.insert(key(0, 0));
        p.insert(key(0, 0)); // full history, oldest stamps
        p.insert(key(0, 1)); // one stamp
        p.insert(key(0, 2)); // one stamp, newer
        assert_eq!(p.evict(), Some(key(0, 1)), "oldest single-touch first");
        assert_eq!(p.evict(), Some(key(0, 2)));
        assert_eq!(p.evict(), Some(key(0, 0)), "full-history line last");
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn lruk_orders_full_lines_by_kth_most_recent() {
        let mut p = LruKPolicy::new(2, 8);
        p.insert(key(0, 0)); // stamps 1
        p.insert(key(0, 1)); // stamps 2
        p.insert(key(0, 0)); // stamps 1,3
        p.insert(key(0, 1)); // stamps 2,4
                             // Touch line 0 again: its history becomes 3,5 — its K-th most
                             // recent (3) is now newer than line 1's (2).
        p.touch(&key(0, 0));
        assert_eq!(p.evict(), Some(key(0, 1)));
    }

    #[test]
    fn lruk_retain_and_slot_reuse() {
        let mut p = LruKPolicy::new(2, 8);
        p.insert(key(0, 0));
        p.insert(key(1, 0));
        p.insert(key(0, 1));
        p.retain(&|k| k.file != FileId::Relation(0));
        assert_eq!(p.len(), 1);
        assert!(p.contains(&key(1, 0)));
        assert!(!p.contains(&key(0, 0)));
        // Reused slots must start with a clean history.
        p.insert(key(2, 0));
        p.insert(key(2, 0));
        assert_eq!(p.evict(), Some(key(1, 0)), "fresh full history wins");
    }

    #[test]
    fn pool_reports_policy_names() {
        assert_eq!(BufferPool::new(32, 6).policy_name(), "lru");
        assert_eq!(
            BufferPool::with_policy(32, 6, EvictionSpec::LruK { k: 2 }).policy_name(),
            "lru-2"
        );
        assert_eq!(EvictionSpec::Lru.name(), "lru");
        assert_eq!(EvictionSpec::LruK { k: 2 }.name(), "lruk");
    }
}
