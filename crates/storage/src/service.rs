//! Pluggable storage service models.
//!
//! The seed hard-wired the paper's 1994 cylinder geometry (seek, rotation,
//! transfer) into `Disk::start`, so every policy conclusion was
//! implicitly conditioned on mechanical storage. [`ServiceModel`] makes the
//! device the pluggable part: it owns access-time computation *and* the
//! positional state the computation depends on (the head cylinder for a
//! mechanical disk; nothing for an SSD).
//!
//! Two implementations:
//!
//! * [`CylinderModel`] — the existing [`DiskGeometry`] + [`ServiceTable`]
//!   math, extracted verbatim. Behavior is pinned byte-for-byte by the
//!   golden report (`tests/golden_report.rs`): swapping `Disk` onto this
//!   model moved zero simulated events.
//! * [`SsdModel`] — no mechanical terms at all: a per-op latency plus a
//!   bandwidth-proportional transfer, with queue-depth internal parallelism
//!   and read/write asymmetry ([`SsdSpec`]).
//!
//! [`DeviceSpec`] is the configuration-surface enum that selects and builds
//! a model; it lives here (not in `rtdbs`) so the bench driver and tests
//! can construct devices without the engine.

use crate::disk::IoKind;
use crate::geometry::{DiskGeometry, ServiceTable};
use simkit::Duration;

/// A storage device's service-time model. Owns the device-positional state
/// (e.g. head cylinder) that the next access's cost depends on.
///
/// Object-safe and `Send` so a [`crate::Disk`] can box one and still move
/// across the bench driver's worker threads.
pub trait ServiceModel: std::fmt::Debug + Send {
    /// Short device name for reports (`"cylinder"`, `"ssd"`).
    fn name(&self) -> &'static str;

    /// Capacity of the device's prefetch cache in pages.
    fn cache_pages(&self) -> u32;

    /// Current queue position used for elevator (SCAN) ordering among
    /// equal-priority requests: the head cylinder for a mechanical disk, a
    /// constant for devices with no mechanical position (every request is
    /// then equally "close", and ED order alone decides).
    fn position(&self) -> u32;

    /// Teleport the positional state to `cylinder` without charging any
    /// service time. Stand-alone estimation uses this to start the head
    /// where the query's first access lands (no initial-seek charge).
    fn park_at(&mut self, cylinder: u32);

    /// Service time of one media access of `pages` pages at `cylinder`,
    /// advancing the positional state. `queued` is the number of requests
    /// still waiting behind this one — a queue-depth hint that models with
    /// internal parallelism (SSD) use to amortize per-op latency; the
    /// cylinder model ignores it.
    fn access_time(
        &mut self,
        cylinder: u32,
        pages: u32,
        kind: IoKind,
        queued: usize,
    ) -> Duration;
}

/// The paper's mechanical disk: `Seek(n) = SeekFactor·√n` + half-rotation +
/// linear transfer, memoized through [`ServiceTable`] (bit-equal to the
/// direct [`DiskGeometry`] math — pinned by
/// `service_table_matches_direct_computation`).
#[derive(Debug)]
pub struct CylinderModel {
    geometry: DiskGeometry,
    table: ServiceTable,
    head: u32,
}

impl CylinderModel {
    /// A new model with the head parked at cylinder 0.
    pub fn new(geometry: DiskGeometry) -> Self {
        CylinderModel {
            geometry,
            table: ServiceTable::new(&geometry),
            head: 0,
        }
    }
}

impl ServiceModel for CylinderModel {
    fn name(&self) -> &'static str {
        "cylinder"
    }

    fn cache_pages(&self) -> u32 {
        self.geometry.cache_pages()
    }

    fn position(&self) -> u32 {
        self.head
    }

    fn park_at(&mut self, cylinder: u32) {
        self.head = cylinder;
    }

    fn access_time(
        &mut self,
        cylinder: u32,
        pages: u32,
        _kind: IoKind,
        _queued: usize,
    ) -> Duration {
        let dist = self.head.abs_diff(cylinder);
        self.head = cylinder;
        self.table.access_time(&self.geometry, dist, pages)
    }
}

/// Parameters of a flash device: per-op latency + bandwidth transfer, with
/// read/write asymmetry and NCQ-style internal parallelism. Defaults model
/// a mid-range SATA SSD.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SsdSpec {
    /// Per-operation read latency in microseconds (default 60).
    pub read_latency_us: f64,
    /// Per-operation write latency in microseconds (default 250 — program
    /// operations are slower than reads on flash).
    pub write_latency_us: f64,
    /// Sequential read bandwidth in MB/s (default 500).
    pub read_bandwidth_mb_s: f64,
    /// Sequential write bandwidth in MB/s (default 300).
    pub write_bandwidth_mb_s: f64,
    /// Internal command-queue depth (default 8): per-op latency is divided
    /// by the number of concurrently queued requests, up to this depth.
    pub queue_depth: u32,
    /// Page size in bytes (default 8192, matching the paper's pages).
    pub page_bytes: u32,
    /// On-device prefetch-cache size in bytes (default 256 KB, matching the
    /// mechanical disk so cache behavior is comparable across devices).
    pub cache_bytes: u32,
}

impl Default for SsdSpec {
    fn default() -> Self {
        SsdSpec {
            read_latency_us: 60.0,
            write_latency_us: 250.0,
            read_bandwidth_mb_s: 500.0,
            write_bandwidth_mb_s: 300.0,
            queue_depth: 8,
            page_bytes: 8192,
            cache_bytes: 256 * 1024,
        }
    }
}

impl SsdSpec {
    /// Capacity of the prefetch cache in pages (0 when `page_bytes` is 0 —
    /// config validation rejects that upstream rather than dividing by
    /// zero here).
    pub fn cache_pages(&self) -> u32 {
        self.cache_bytes.checked_div(self.page_bytes).unwrap_or(0)
    }
}

/// Flash service model: no seek, no rotation. One access costs
/// `latency / min(queue_depth, queued + 1) + bytes / bandwidth`, with
/// latency and bandwidth picked per [`IoKind`]. The latency division
/// models internal parallelism: when requests are stacked behind this one
/// the device overlaps their command setup, so the *effective* per-op
/// latency shrinks while the bandwidth term (a shared-channel resource)
/// does not. Folding the overlap into the service time keeps the engine's
/// one-in-flight-per-disk event shape unchanged.
#[derive(Debug)]
pub struct SsdModel {
    spec: SsdSpec,
}

impl SsdModel {
    /// A new model for `spec`.
    pub fn new(spec: SsdSpec) -> Self {
        assert!(spec.queue_depth > 0, "SSD queue depth must be positive");
        SsdModel { spec }
    }
}

impl ServiceModel for SsdModel {
    fn name(&self) -> &'static str {
        "ssd"
    }

    fn cache_pages(&self) -> u32 {
        self.spec.cache_pages()
    }

    fn position(&self) -> u32 {
        // No mechanical position: every request is equally close, so
        // elevator ordering degenerates to pure ED order.
        0
    }

    fn park_at(&mut self, _cylinder: u32) {}

    fn access_time(
        &mut self,
        _cylinder: u32,
        pages: u32,
        kind: IoKind,
        queued: usize,
    ) -> Duration {
        let (latency_us, bandwidth_mb_s) = match kind {
            IoKind::Read => (self.spec.read_latency_us, self.spec.read_bandwidth_mb_s),
            IoKind::Write => (self.spec.write_latency_us, self.spec.write_bandwidth_mb_s),
        };
        let lanes = u64::from(self.spec.queue_depth)
            .min(queued as u64 + 1)
            .max(1) as f64;
        let bytes = pages.max(1) as f64 * self.spec.page_bytes as f64;
        // One float-to-tick rounding for the whole access, so the service
        // time is a pure function of (pages, kind, queued) — deterministic
        // across runs and thread counts.
        Duration::from_secs_f64(
            latency_us * 1e-6 / lanes + bytes / (bandwidth_mb_s * 1e6),
        )
    }
}

/// Which service model a disk runs — the device axis of the configuration
/// surface (`ResourceConfig::device`).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum DeviceSpec {
    /// The paper's mechanical disk, parameterized by the resource config's
    /// [`DiskGeometry`] (which also drives file layout for every device).
    #[default]
    Cylinder,
    /// A flash device with the given parameters.
    Ssd(SsdSpec),
}

impl DeviceSpec {
    /// Short device name for cell labels (`"cyl"`, `"ssd"`).
    pub fn name(&self) -> &'static str {
        match self {
            DeviceSpec::Cylinder => "cyl",
            DeviceSpec::Ssd(_) => "ssd",
        }
    }

    /// Build a fresh service model. `geometry` parameterizes the cylinder
    /// device; the SSD carries its own spec.
    pub fn build(&self, geometry: &DiskGeometry) -> Box<dyn ServiceModel> {
        match self {
            DeviceSpec::Cylinder => Box::new(CylinderModel::new(*geometry)),
            DeviceSpec::Ssd(spec) => Box::new(SsdModel::new(*spec)),
        }
    }

    /// Prefetch-cache capacity in pages for this device (0 only on
    /// degenerate specs, which config validation rejects).
    pub fn cache_pages(&self, geometry: &DiskGeometry) -> u32 {
        match self {
            DeviceSpec::Cylinder => geometry
                .cache_bytes
                .checked_div(geometry.page_bytes)
                .unwrap_or(0),
            DeviceSpec::Ssd(spec) => spec.cache_pages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cylinder_model_is_bit_equal_to_direct_geometry() {
        // The extracted model must reproduce the seed's exact Durations:
        // distance from the tracked head, then seek + rotation + transfer.
        let g = DiskGeometry::default();
        let mut model = CylinderModel::new(g);
        let mut head = 0u32;
        for (cyl, pages) in [(700, 6), (700, 6), (705, 1), (0, 12), (1499, 64), (3, 2)] {
            let expect = g.access_time(head.abs_diff(cyl), pages);
            let got = model.access_time(cyl, pages, IoKind::Read, 0);
            assert_eq!(got, expect, "mismatch at ({cyl}, {pages})");
            head = cyl;
            assert_eq!(model.position(), head);
        }
        // Writes and queue hints change nothing on the mechanical model.
        let expect = g.access_time(head.abs_diff(10), 6);
        assert_eq!(model.access_time(10, 6, IoKind::Write, 5), expect);
    }

    #[test]
    fn cylinder_park_charges_no_seek() {
        let g = DiskGeometry::default();
        let mut model = CylinderModel::new(g);
        model.park_at(900);
        let t = model.access_time(900, 6, IoKind::Read, 0);
        assert_eq!(t, g.access_time(0, 6), "parked head must not seek");
    }

    #[test]
    fn ssd_reads_beat_writes_and_both_beat_the_disk() {
        let mut ssd = SsdModel::new(SsdSpec::default());
        let read = ssd.access_time(700, 6, IoKind::Read, 0);
        let write = ssd.access_time(42, 6, IoKind::Write, 0);
        assert!(read < write, "flash reads are faster than programs");
        let mut cyl = CylinderModel::new(DiskGeometry::default());
        let disk = cyl.access_time(700, 6, IoKind::Read, 0);
        assert!(
            write.as_secs_f64() * 10.0 < disk.as_secs_f64(),
            "an SSD block access should be well over 10x faster: {write:?} vs {disk:?}"
        );
    }

    #[test]
    fn ssd_transfer_scales_with_pages_not_position() {
        let mut ssd = SsdModel::new(SsdSpec::default());
        let near = ssd.access_time(0, 6, IoKind::Read, 0);
        let far = ssd.access_time(1499, 6, IoKind::Read, 0);
        assert_eq!(near, far, "no mechanical position");
        let one = ssd.access_time(0, 1, IoKind::Read, 0).as_secs_f64();
        let six = ssd.access_time(0, 6, IoKind::Read, 0).as_secs_f64();
        let spec = SsdSpec::default();
        let lat = spec.read_latency_us * 1e-6;
        // Subtracting the per-op latency leaves the pure bandwidth term;
        // times are rounded to microsecond ticks, so allow 1 µs per page.
        assert!(((six - lat) - 6.0 * (one - lat)).abs() < 6e-6);
    }

    #[test]
    fn ssd_queue_depth_amortizes_latency_up_to_the_limit() {
        let spec = SsdSpec {
            queue_depth: 4,
            ..SsdSpec::default()
        };
        let mut ssd = SsdModel::new(spec);
        let solo = ssd.access_time(0, 1, IoKind::Read, 0);
        let stacked = ssd.access_time(0, 1, IoKind::Read, 3);
        assert!(stacked < solo, "queued work amortizes per-op latency");
        // Beyond the device's queue depth the amortization saturates.
        let deep = ssd.access_time(0, 1, IoKind::Read, 100);
        assert_eq!(deep, stacked, "parallelism capped at queue_depth");
        // The bandwidth term is not amortized: a big stacked transfer still
        // costs at least its media time.
        let spec = SsdSpec::default();
        let big = ssd.access_time(0, 64, IoKind::Read, 100).as_secs_f64();
        let media = 64.0 * spec.page_bytes as f64 / (spec.read_bandwidth_mb_s * 1e6);
        assert!(big >= media);
    }

    #[test]
    fn ssd_service_is_deterministic() {
        let mut a = SsdModel::new(SsdSpec::default());
        let mut b = SsdModel::new(SsdSpec::default());
        for q in 0..20 {
            assert_eq!(
                a.access_time(q, 6, IoKind::Read, q as usize),
                b.access_time(q, 6, IoKind::Read, q as usize)
            );
        }
    }

    #[test]
    fn device_spec_builds_and_names() {
        let g = DiskGeometry::default();
        assert_eq!(DeviceSpec::default(), DeviceSpec::Cylinder);
        assert_eq!(DeviceSpec::Cylinder.name(), "cyl");
        assert_eq!(DeviceSpec::Ssd(SsdSpec::default()).name(), "ssd");
        assert_eq!(DeviceSpec::Cylinder.build(&g).name(), "cylinder");
        assert_eq!(DeviceSpec::Ssd(SsdSpec::default()).build(&g).name(), "ssd");
        // Both defaults expose the paper's 32-page cache.
        assert_eq!(DeviceSpec::Cylinder.cache_pages(&g), 32);
        assert_eq!(DeviceSpec::Ssd(SsdSpec::default()).cache_pages(&g), 32);
    }
}
