//! Disk geometry and the service-time model of Section 4.2.
//!
//! `DiskAccess = Seek + RotateDelay + Transfer`, with
//! `Seek(n) = SeekFactor · √n` as in \[Bitt88\]. Defaults follow Table 3:
//! 1500 cylinders of 90 pages each, 16.7 ms rotation, 8 KB pages. The scan
//! of Table 3 garbles the seek factor; we use 0.617 ms (the value in the
//! companion papers). `PagesPerTrack` is not in the table at all — we assume
//! 15 tracks per cylinder (6 pages, i.e. ~49 KB, per track — typical of the
//! era's drives), giving a per-page transfer time of `16.7 ms / 6 ≈ 2.8 ms`
//! and, with it, stand-alone join times of the magnitude Table 7 reports.

use simkit::Duration;

/// Physical parameters of one disk (Table 3 defaults).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskGeometry {
    /// Number of cylinders (`NumCylinders`, default 1500).
    pub num_cylinders: u32,
    /// Pages per cylinder (`CylinderSize`, default 90).
    pub pages_per_cylinder: u32,
    /// Pages per track (default 6; see module docs).
    pub pages_per_track: u32,
    /// Seek factor in milliseconds (default 0.617).
    pub seek_factor_ms: f64,
    /// Full-rotation time in milliseconds (`RotationTime`, default 16.7).
    pub rotation_ms: f64,
    /// Page size in bytes (`PageSize`, default 8192).
    pub page_bytes: u32,
    /// Size of the per-disk prefetch cache in bytes (default 256 KB).
    pub cache_bytes: u32,
}

impl Default for DiskGeometry {
    fn default() -> Self {
        DiskGeometry {
            num_cylinders: 1500,
            pages_per_cylinder: 90,
            pages_per_track: 6,
            seek_factor_ms: 0.617,
            rotation_ms: 16.7,
            page_bytes: 8192,
            cache_bytes: 256 * 1024,
        }
    }
}

impl DiskGeometry {
    /// Capacity of the prefetch cache in pages.
    pub fn cache_pages(&self) -> u32 {
        self.cache_bytes / self.page_bytes
    }

    /// Total pages on the disk.
    pub fn total_pages(&self) -> u64 {
        self.num_cylinders as u64 * self.pages_per_cylinder as u64
    }

    /// Seek time across `n` cylinders: `SeekFactor · √n`; zero when the head
    /// is already on-cylinder.
    pub fn seek_time(&self, cylinders: u32) -> Duration {
        if cylinders == 0 {
            Duration::ZERO
        } else {
            Duration::from_millis_f64(self.seek_factor_ms * (cylinders as f64).sqrt())
        }
    }

    /// Expected rotational delay: half a rotation. Deterministic (expected
    /// value) so that runs are reproducible.
    pub fn rotational_delay(&self) -> Duration {
        Duration::from_millis_f64(self.rotation_ms / 2.0)
    }

    /// Media transfer time for `pages` contiguous pages.
    pub fn transfer_time(&self, pages: u32) -> Duration {
        Duration::from_millis_f64(
            self.rotation_ms * pages as f64 / self.pages_per_track as f64,
        )
    }

    /// Full service time for one access: seek across `cyl_distance`
    /// cylinders, average rotational latency, then transfer of `pages`.
    pub fn access_time(&self, cyl_distance: u32, pages: u32) -> Duration {
        self.seek_time(cyl_distance) + self.rotational_delay() + self.transfer_time(pages)
    }

    /// Cylinder holding page `page` of a file that starts at
    /// `start_cylinder` (files are laid out contiguously, cylinder-aligned).
    pub fn cylinder_of(&self, start_cylinder: u32, page: u32) -> u32 {
        start_cylinder + page / self.pages_per_cylinder
    }

    /// Number of whole cylinders needed to hold `pages` pages.
    pub fn cylinders_for(&self, pages: u32) -> u32 {
        pages.div_ceil(self.pages_per_cylinder).max(1)
    }
}

/// Sentinel marking a [`ServiceTable`] entry as not yet computed. A real
/// service component can never reach it (it would be a ~585-millennia
/// seek).
const UNFILLED: Duration = Duration(u64::MAX);

/// Memoized service-time components for one disk's geometry.
///
/// `DiskGeometry::access_time` runs a `sqrt` (seek) plus three
/// float-to-tick roundings per media access; every distinct cylinder
/// distance and transfer length maps to a fixed [`Duration`], so the disk
/// hot path fills this table lazily and then serves lookups. Entries are
/// produced by *the same expressions* as the direct computation — bit-equal
/// `Duration`s, pinned by `service_table_matches_direct_computation` across
/// the full cylinder range — which keeps simulation behavior identical.
#[derive(Debug)]
pub struct ServiceTable {
    /// Seek time by cylinder distance (index 0 = on-cylinder = zero).
    seek: Vec<Duration>,
    /// Transfer time by page count, for the small counts accesses use.
    transfer: Vec<Duration>,
    /// Constant expected rotational delay.
    rotation: Duration,
}

impl ServiceTable {
    /// Transfer lengths memoized directly; longer transfers (never produced
    /// by block-sized operator I/O) fall back to the direct computation.
    const MAX_TRANSFER_PAGES: usize = 64;

    /// An empty (all-lazy) table for `geometry`.
    pub fn new(geometry: &DiskGeometry) -> Self {
        ServiceTable {
            seek: vec![UNFILLED; geometry.num_cylinders as usize],
            transfer: vec![UNFILLED; Self::MAX_TRANSFER_PAGES + 1],
            rotation: geometry.rotational_delay(),
        }
    }

    /// Memoized [`DiskGeometry::seek_time`].
    pub fn seek_time(&mut self, geometry: &DiskGeometry, cylinders: u32) -> Duration {
        let Some(slot) = self.seek.get_mut(cylinders as usize) else {
            return geometry.seek_time(cylinders);
        };
        if *slot == UNFILLED {
            *slot = geometry.seek_time(cylinders);
        }
        *slot
    }

    /// Memoized [`DiskGeometry::transfer_time`].
    pub fn transfer_time(&mut self, geometry: &DiskGeometry, pages: u32) -> Duration {
        let Some(slot) = self.transfer.get_mut(pages as usize) else {
            return geometry.transfer_time(pages);
        };
        if *slot == UNFILLED {
            *slot = geometry.transfer_time(pages);
        }
        *slot
    }

    /// Memoized [`DiskGeometry::access_time`]: identical sum of identical
    /// components.
    pub fn access_time(
        &mut self,
        geometry: &DiskGeometry,
        cyl_distance: u32,
        pages: u32,
    ) -> Duration {
        self.seek_time(geometry, cyl_distance)
            + self.rotation
            + self.transfer_time(geometry, pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cache_is_32_pages() {
        assert_eq!(DiskGeometry::default().cache_pages(), 32);
    }

    #[test]
    fn seek_zero_distance_is_free() {
        assert_eq!(DiskGeometry::default().seek_time(0), Duration::ZERO);
    }

    #[test]
    fn seek_follows_square_root() {
        let g = DiskGeometry::default();
        let s100 = g.seek_time(100).as_secs_f64();
        let s400 = g.seek_time(400).as_secs_f64();
        assert!((s400 / s100 - 2.0).abs() < 1e-3, "sqrt scaling violated");
        // 0.617 ms * 10 = 6.17 ms for 100 cylinders.
        assert!((s100 - 0.00617).abs() < 1e-5);
    }

    #[test]
    fn rotational_delay_is_half_rotation() {
        let g = DiskGeometry::default();
        assert!((g.rotational_delay().as_secs_f64() - 0.00835).abs() < 1e-6);
    }

    #[test]
    fn transfer_scales_linearly() {
        let g = DiskGeometry::default();
        let one = g.transfer_time(1).as_secs_f64();
        let six = g.transfer_time(6).as_secs_f64();
        // Times are rounded to microsecond ticks, so allow 1 µs per page.
        assert!((six - 6.0 * one).abs() < 6e-6);
        // 16.7/6 ms per page.
        assert!((one - 16.7e-3 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn block_access_time_magnitude() {
        // A 6-page blocked sequential access with a short seek should cost
        // roughly 0.617·√10 + 8.35 + 16.7 ≈ 27 ms.
        let g = DiskGeometry::default();
        let t = g.access_time(10, 6).as_secs_f64();
        assert!((0.024..0.030).contains(&t), "t = {t}");
    }

    #[test]
    fn service_table_matches_direct_computation() {
        // The memoized service math must return the exact `Duration` bits
        // of the direct computation for every reachable cylinder distance
        // and the transfer lengths block-sized I/O produces — including
        // past the memoized transfer range (fallback path) and on repeated
        // (now cached) lookups.
        let g = DiskGeometry::default();
        let mut table = ServiceTable::new(&g);
        for dist in 0..g.num_cylinders {
            assert_eq!(
                table.seek_time(&g, dist),
                g.seek_time(dist),
                "seek mismatch at distance {dist}"
            );
            assert_eq!(
                table.seek_time(&g, dist),
                g.seek_time(dist),
                "cached seek mismatch at distance {dist}"
            );
        }
        for pages in 1..=(2 * ServiceTable::MAX_TRANSFER_PAGES as u32) {
            assert_eq!(
                table.transfer_time(&g, pages),
                g.transfer_time(pages),
                "transfer mismatch at {pages} pages"
            );
        }
        for dist in [0, 1, 7, 99, 1499] {
            for pages in [1, 2, 6, 12] {
                assert_eq!(
                    table.access_time(&g, dist, pages),
                    g.access_time(dist, pages),
                    "access mismatch at ({dist}, {pages})"
                );
            }
        }
        // Distances beyond the table (not produced by a real disk, but the
        // API accepts them) fall back to the direct math.
        assert_eq!(
            table.seek_time(&g, g.num_cylinders + 5),
            g.seek_time(g.num_cylinders + 5)
        );
    }

    #[test]
    fn cylinder_mapping() {
        let g = DiskGeometry::default();
        assert_eq!(g.cylinder_of(700, 0), 700);
        assert_eq!(g.cylinder_of(700, 89), 700);
        assert_eq!(g.cylinder_of(700, 90), 701);
        assert_eq!(g.cylinders_for(1), 1);
        assert_eq!(g.cylinders_for(90), 1);
        assert_eq!(g.cylinders_for(91), 2);
        assert_eq!(g.cylinders_for(0), 1);
    }
}
