//! Per-disk request queue: Earliest Deadline across priorities, elevator
//! (SCAN) within a priority level.
//!
//! Section 4.2: "Every disk manages its own queue by the ED policy; any disk
//! requests that ED assigns the same priority to are serviced according to
//! the elevator algorithm."
//!
//! The seed implementation nested `BTreeMap<SimTime, BTreeMap<u32, Vec<_>>>`
//! — three allocation sites per push in the worst case, and an O(n)
//! `Vec::remove(0)` per same-cylinder FIFO dequeue. Disk queues are short
//! (bounded by the live-query population: each live query has at most one
//! outstanding I/O), so this version is a flat parallel-array structure
//! scanned on pop:
//!
//! * **push** appends to two `Vec`s — amortized O(1), zero allocations in
//!   steady state once capacity is warm.
//! * **pop** selects by `(deadline, elevator cylinder, seq)` in one scan
//!   over the dense 24-byte key array (payloads are never touched) and
//!   removes with `swap_remove` — O(n) scan with a cache-line-friendly
//!   constant, O(1) removal. FIFO among equal `(deadline, cylinder)`
//!   requests rides on the monotone `seq` stamp, so selection is
//!   independent of element order and `swap_remove`'s shuffling is
//!   invisible. (At engine-realistic depths the scan beats the seed's tree
//!   walk plus node churn; a tree wins again only at depths the simulator
//!   never reaches — the `disk_queue/push_pop_1k` stress bench records
//!   that asymptote honestly.)
//! * **drain** never allocates per bucket; [`DiskQueue::discard_where`]
//!   (the abort path) allocates nothing at all.

use simkit::SimTime;

/// A queued disk request. `T` is the caller's tag (the simulator uses it to
/// route the completion back to the owning query).
#[derive(Clone, Debug, PartialEq)]
pub struct QueuedRequest<T> {
    /// ED priority: the owning query's deadline (earlier = more urgent).
    pub deadline: SimTime,
    /// Target cylinder of the access.
    pub cylinder: u32,
    /// Caller tag.
    pub tag: T,
}

/// Selection key of one stored request: everything `pop` scans, packed
/// densely so the scan never strides over payloads.
#[derive(Clone, Copy, Debug)]
struct Key {
    deadline: SimTime,
    cylinder: u32,
    seq: u64,
}

/// Total selection order of one request under a fixed head position and
/// sweep direction: `(deadline, off-preferred-side, distance, seq)`. The
/// argmin of this rank over all queued keys is exactly the request the
/// [`DiskQueue::pop`] scan chooses — ED level first, then the preferred
/// sweep side, then nearest cylinder, then FIFO — and an argmin with the
/// penalty bit set means the preferred side was empty, i.e. the sweep
/// reverses.
type Rank = (SimTime, u8, u32, u64);

fn rank_of(key: &Key, head: u32, ascending: bool) -> Rank {
    let (penalty, dist) = match key.cylinder.cmp(&head) {
        // On the head's cylinder: reachable without a seek in either
        // direction, so it is never off-side.
        std::cmp::Ordering::Equal => (0, 0),
        std::cmp::Ordering::Greater => (u8::from(!ascending), key.cylinder - head),
        std::cmp::Ordering::Less => (u8::from(ascending), head - key.cylinder),
    };
    (key.deadline, penalty, dist, key.seq)
}

/// The incrementally maintained winner of the next [`DiskQueue::pop`],
/// valid only for the exact `(head, ascending)` it was computed under.
#[derive(Clone, Copy, Debug)]
struct Cached {
    head: u32,
    ascending: bool,
    idx: usize,
    rank: Rank,
}

/// ED + elevator queue for one disk. `keys[i]` and `reqs[i]` describe the
/// same request; both sides `swap_remove` together.
///
/// When the caller can name the disk-head position at enqueue time
/// ([`DiskQueue::push_at`]), the queue folds each new request into a cached
/// winner in O(1); a later `pop` from the same head position takes the
/// winner without rescanning. The head only moves when a media access
/// starts, so the common busy-disk pattern — requests arriving during a
/// service, then one pop at its completion — never rescans at all. Any
/// removal or head movement falls back to the scan (and the scan is what
/// the cache is checked against in debug builds).
#[derive(Debug)]
pub struct DiskQueue<T> {
    keys: Vec<Key>,
    reqs: Vec<QueuedRequest<T>>,
    next_seq: u64,
    /// Elevator sweep direction: true = ascending cylinder numbers.
    ascending: bool,
    cached: Option<Cached>,
}

impl<T> Default for DiskQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DiskQueue<T> {
    /// An empty queue sweeping upward.
    pub fn new() -> Self {
        DiskQueue {
            keys: Vec::new(),
            reqs: Vec::new(),
            next_seq: 0,
            ascending: true,
            cached: None,
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// True when no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// Enqueue a request without a head hint. The cached winner (if any)
    /// cannot be maintained and is dropped; the next pop rescans.
    pub fn push(&mut self, request: QueuedRequest<T>) {
        self.cached = None;
        self.append(request);
    }

    /// Enqueue a request, folding it into the cached pop winner for the
    /// given head position. O(1); a subsequent [`DiskQueue::pop`] from the
    /// same head with the same sweep direction skips its scan.
    pub fn push_at(&mut self, head: u32, request: QueuedRequest<T>) {
        let idx = self.keys.len();
        let key = Key {
            deadline: request.deadline,
            cylinder: request.cylinder,
            seq: self.next_seq,
        };
        match &mut self.cached {
            _ if idx == 0 => {
                self.cached = Some(Cached {
                    head,
                    ascending: self.ascending,
                    idx,
                    rank: rank_of(&key, head, self.ascending),
                });
            }
            Some(c) if c.head == head && c.ascending == self.ascending => {
                let rank = rank_of(&key, head, self.ascending);
                if rank < c.rank {
                    c.idx = idx;
                    c.rank = rank;
                }
            }
            // Either no winner survives from before, or the head moved
            // between pushes: fall back to the scan at the next pop.
            _ => self.cached = None,
        }
        self.append(request);
    }

    fn append(&mut self, request: QueuedRequest<T>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.keys.push(Key {
            deadline: request.deadline,
            cylinder: request.cylinder,
            seq,
        });
        self.reqs.push(request);
    }

    /// Dequeue the next request to service given the current head position.
    ///
    /// The most urgent deadline level is selected first (ED); within that
    /// level the elevator picks the nearest cylinder in the current sweep
    /// direction, reversing direction at the end of a sweep. One scan finds
    /// the deadline level and both sweep candidates simultaneously.
    pub fn pop(&mut self, head: u32) -> Option<QueuedRequest<T>> {
        if self.keys.is_empty() {
            self.cached = None;
            return None;
        }
        let (chosen, reverse) = match self.cached.take() {
            Some(c) if c.head == head && c.ascending == self.ascending => {
                debug_assert_eq!(
                    self.keys[c.idx].seq,
                    self.keys[self.scan_pick(head).0].seq,
                    "cached winner diverged from the scan"
                );
                // A winner off the preferred side means that side is empty
                // at the most urgent level: the sweep reverses, exactly as
                // the scan would have.
                (c.idx, c.rank.1 == 1)
            }
            _ => self.scan_pick(head),
        };
        if reverse {
            self.ascending = !self.ascending;
        }
        self.keys.swap_remove(chosen);
        Some(self.reqs.swap_remove(chosen))
    }

    /// One scan over the dense key array selecting the next request:
    /// returns its index and whether the sweep direction must reverse.
    ///
    /// # Panics
    /// Panics if the queue is empty.
    fn scan_pick(&self, head: u32) -> (usize, bool) {
        // Per sweep direction: (distance from head, seq, index) — minimized.
        let mut up: Option<(u32, u64, usize)> = None;
        let mut down: Option<(u32, u64, usize)> = None;
        let mut deadline = SimTime::MAX;
        for (i, key) in self.keys.iter().enumerate() {
            if key.deadline > deadline {
                continue;
            }
            if key.deadline < deadline {
                // Strictly more urgent level: restart the selection.
                deadline = key.deadline;
                up = None;
                down = None;
            }
            let cyl = key.cylinder;
            if cyl >= head {
                let cand = (cyl - head, key.seq, i);
                if up.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    up = Some(cand);
                }
            }
            if cyl <= head {
                let cand = (head - cyl, key.seq, i);
                if down.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    down = Some(cand);
                }
            }
        }
        let (first, second) = if self.ascending {
            (up, down)
        } else {
            (down, up)
        };
        match first {
            Some((_, _, i)) => (i, false),
            // Sweep exhausted within the level: reverse direction.
            None => (
                second
                    .expect("non-empty level has a cylinder on one side")
                    .2,
                true,
            ),
        }
    }

    /// Remove every request whose tag matches `remove` (e.g. requests of an
    /// aborted query). Returns the removed requests.
    pub fn drain_where<F: Fn(&T) -> bool>(&mut self, remove: F) -> Vec<QueuedRequest<T>> {
        self.cached = None;
        let mut removed = Vec::new();
        let mut i = 0;
        while i < self.reqs.len() {
            if remove(&self.reqs[i].tag) {
                self.keys.swap_remove(i);
                removed.push(self.reqs.swap_remove(i));
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Like [`DiskQueue::drain_where`], but only counts the removals —
    /// allocation-free, for the firm-abort path that never inspects them.
    pub fn discard_where<F: Fn(&T) -> bool>(&mut self, remove: F) -> usize {
        self.cached = None;
        let before = self.reqs.len();
        let mut i = 0;
        while i < self.reqs.len() {
            if remove(&self.reqs[i].tag) {
                self.keys.swap_remove(i);
                self.reqs.swap_remove(i);
            } else {
                i += 1;
            }
        }
        before - self.reqs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(deadline: u64, cylinder: u32, tag: u32) -> QueuedRequest<u32> {
        QueuedRequest {
            deadline: SimTime(deadline),
            cylinder,
            tag,
        }
    }

    #[test]
    fn earliest_deadline_first() {
        let mut q = DiskQueue::new();
        q.push(req(300, 10, 1));
        q.push(req(100, 900, 2));
        q.push(req(200, 20, 3));
        assert_eq!(q.pop(0).unwrap().tag, 2);
        assert_eq!(q.pop(0).unwrap().tag, 3);
        assert_eq!(q.pop(0).unwrap().tag, 1);
        assert!(q.pop(0).is_none());
    }

    #[test]
    fn elevator_within_same_deadline() {
        let mut q = DiskQueue::new();
        // All same deadline; head at 500 sweeping up: expect 600, 900, then
        // reverse to 400, 100.
        for (cyl, tag) in [(900, 1), (400, 2), (600, 3), (100, 4)] {
            q.push(req(50, cyl, tag));
        }
        let mut head = 500;
        let mut tags = Vec::new();
        while let Some(r) = q.pop(head) {
            head = r.cylinder;
            tags.push(r.tag);
        }
        assert_eq!(tags, vec![3, 1, 2, 4]);
    }

    #[test]
    fn elevator_reverses_and_recovers() {
        let mut q = DiskQueue::new();
        q.push(req(50, 100, 1));
        let mut head = 500;
        // Nothing above 500: the elevator reverses and picks 100.
        let r = q.pop(head).unwrap();
        assert_eq!(r.tag, 1);
        head = r.cylinder;
        // Now descending; a request above the head flips it back.
        q.push(req(50, 800, 2));
        assert_eq!(q.pop(head).unwrap().tag, 2);
    }

    #[test]
    fn same_cylinder_fifo() {
        let mut q = DiskQueue::new();
        q.push(req(50, 42, 1));
        q.push(req(50, 42, 2));
        q.push(req(50, 42, 3));
        assert_eq!(q.pop(0).unwrap().tag, 1);
        assert_eq!(q.pop(42).unwrap().tag, 2);
        assert_eq!(q.pop(42).unwrap().tag, 3);
    }

    #[test]
    fn fifo_survives_interleaved_pushes_and_removals() {
        // swap_remove shuffles storage order; the seq stamp must keep
        // same-cylinder FIFO intact regardless.
        let mut q = DiskQueue::new();
        q.push(req(50, 42, 1));
        q.push(req(10, 7, 99)); // more urgent, elsewhere
        q.push(req(50, 42, 2));
        assert_eq!(q.pop(42).unwrap().tag, 99);
        q.push(req(50, 42, 3));
        assert_eq!(q.pop(42).unwrap().tag, 1);
        assert_eq!(q.pop(42).unwrap().tag, 2);
        assert_eq!(q.pop(42).unwrap().tag, 3);
    }

    #[test]
    fn drain_removes_aborted_query() {
        let mut q = DiskQueue::new();
        q.push(req(10, 1, 7));
        q.push(req(20, 2, 8));
        q.push(req(30, 3, 7));
        let removed = q.drain_where(|&tag| tag == 7);
        assert_eq!(removed.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(0).unwrap().tag, 8);
    }

    #[test]
    fn discard_counts_without_allocating() {
        let mut q = DiskQueue::new();
        q.push(req(10, 1, 7));
        q.push(req(20, 2, 8));
        q.push(req(30, 3, 7));
        assert_eq!(q.discard_where(|&tag| tag == 7), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(0).unwrap().tag, 8);
        assert_eq!(q.discard_where(|_| true), 0);
    }

    #[test]
    fn push_at_cached_winner_reverses_sweep() {
        let mut q = DiskQueue::new();
        q.push_at(500, req(50, 400, 1)); // below an up-sweeping head
        assert_eq!(q.pop(500).unwrap().tag, 1);
        // The cached-winner pop must have reversed the sweep, exactly like
        // the scan: a later same-deadline pair prefers the downward side.
        q.push_at(400, req(50, 450, 2));
        q.push_at(400, req(50, 350, 3));
        assert_eq!(q.pop(400).unwrap().tag, 3, "descending after reversal");
        assert_eq!(q.pop(350).unwrap().tag, 2);
    }

    #[test]
    fn push_at_agrees_with_push_under_random_mix() {
        // One queue fed through push_at (incremental winner), a twin through
        // plain push (always scans); identical operation tapes must produce
        // identical pop sequences. In debug builds the cache-hit path also
        // self-checks against the scan.
        let mut fast = DiskQueue::new();
        let mut slow = DiskQueue::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut head = 300u32;
        for tag in 0..2_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let deadline = 10 + x % 8; // few levels: big elevator groups
            let cyl = (x >> 16) as u32 % 1_000;
            fast.push_at(head, req(deadline, cyl, tag));
            slow.push(req(deadline, cyl, tag));
            if x.is_multiple_of(3) {
                let a = fast.pop(head);
                let b = slow.pop(head);
                assert_eq!(a, b, "divergence at tag {tag}");
                if let Some(r) = a {
                    head = r.cylinder;
                }
            }
        }
        loop {
            let a = fast.pop(head);
            let b = slow.pop(head);
            assert_eq!(a, b);
            match a {
                Some(r) => head = r.cylinder,
                None => break,
            }
        }
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut q = DiskQueue::new();
        assert!(q.is_empty());
        q.push(req(1, 1, 1));
        q.push(req(2, 2, 2));
        assert_eq!(q.len(), 2);
        q.pop(0);
        assert_eq!(q.len(), 1);
    }
}
