//! Per-disk request queue: Earliest Deadline across priorities, elevator
//! (SCAN) within a priority level.
//!
//! Section 4.2: "Every disk manages its own queue by the ED policy; any disk
//! requests that ED assigns the same priority to are serviced according to
//! the elevator algorithm."

use simkit::SimTime;
use std::collections::BTreeMap;

/// A queued disk request. `T` is the caller's tag (the simulator uses it to
/// route the completion back to the owning query).
#[derive(Clone, Debug, PartialEq)]
pub struct QueuedRequest<T> {
    /// ED priority: the owning query's deadline (earlier = more urgent).
    pub deadline: SimTime,
    /// Target cylinder of the access.
    pub cylinder: u32,
    /// Caller tag.
    pub tag: T,
}

/// ED + elevator queue for one disk.
#[derive(Debug)]
pub struct DiskQueue<T> {
    /// deadline → (cylinder → FIFO of requests at that cylinder).
    levels: BTreeMap<SimTime, BTreeMap<u32, Vec<QueuedRequest<T>>>>,
    len: usize,
    /// Elevator sweep direction: true = ascending cylinder numbers.
    ascending: bool,
}

impl<T> Default for DiskQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DiskQueue<T> {
    /// An empty queue sweeping upward.
    pub fn new() -> Self {
        DiskQueue {
            levels: BTreeMap::new(),
            len: 0,
            ascending: true,
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueue a request.
    pub fn push(&mut self, request: QueuedRequest<T>) {
        self.levels
            .entry(request.deadline)
            .or_default()
            .entry(request.cylinder)
            .or_default()
            .push(request);
        self.len += 1;
    }

    /// Dequeue the next request to service given the current head position.
    ///
    /// The most urgent deadline level is selected first (ED); within that
    /// level the elevator picks the nearest cylinder in the current sweep
    /// direction, reversing direction at the end of a sweep.
    pub fn pop(&mut self, head: u32) -> Option<QueuedRequest<T>> {
        let (&deadline, level) = self.levels.iter_mut().next()?;
        // Elevator within the level: nearest cylinder ≥ head when ascending,
        // ≤ head when descending; reverse if the sweep is exhausted.
        let chosen_cyl = if self.ascending {
            level.range(head..).next().map(|(&c, _)| c).or_else(|| {
                self.ascending = false;
                level.range(..=head).next_back().map(|(&c, _)| c)
            })
        } else {
            level
                .range(..=head)
                .next_back()
                .map(|(&c, _)| c)
                .or_else(|| {
                    self.ascending = true;
                    level.range(head..).next().map(|(&c, _)| c)
                })
        };
        let cyl = chosen_cyl.expect("non-empty level has a cylinder");
        let bucket = level.get_mut(&cyl).expect("bucket exists");
        let request = bucket.remove(0);
        if bucket.is_empty() {
            level.remove(&cyl);
        }
        if level.is_empty() {
            self.levels.remove(&deadline);
        }
        self.len -= 1;
        Some(request)
    }

    /// Remove every request whose tag fails `keep` (e.g. requests of an
    /// aborted query). Returns the removed requests.
    pub fn drain_where<F: Fn(&T) -> bool>(&mut self, remove: F) -> Vec<QueuedRequest<T>> {
        let mut removed = Vec::new();
        self.levels.retain(|_, level| {
            level.retain(|_, bucket| {
                let mut kept = Vec::with_capacity(bucket.len());
                for req in bucket.drain(..) {
                    if remove(&req.tag) {
                        removed.push(req);
                    } else {
                        kept.push(req);
                    }
                }
                *bucket = kept;
                !bucket.is_empty()
            });
            !level.is_empty()
        });
        self.len -= removed.len();
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(deadline: u64, cylinder: u32, tag: u32) -> QueuedRequest<u32> {
        QueuedRequest {
            deadline: SimTime(deadline),
            cylinder,
            tag,
        }
    }

    #[test]
    fn earliest_deadline_first() {
        let mut q = DiskQueue::new();
        q.push(req(300, 10, 1));
        q.push(req(100, 900, 2));
        q.push(req(200, 20, 3));
        assert_eq!(q.pop(0).unwrap().tag, 2);
        assert_eq!(q.pop(0).unwrap().tag, 3);
        assert_eq!(q.pop(0).unwrap().tag, 1);
        assert!(q.pop(0).is_none());
    }

    #[test]
    fn elevator_within_same_deadline() {
        let mut q = DiskQueue::new();
        // All same deadline; head at 500 sweeping up: expect 600, 900, then
        // reverse to 400, 100.
        for (cyl, tag) in [(900, 1), (400, 2), (600, 3), (100, 4)] {
            q.push(req(50, cyl, tag));
        }
        let order: Vec<u32> = std::iter::from_fn(|| {
            // In a real disk the head moves to each serviced cylinder; emulate.
            None::<u32>
        })
        .collect();
        drop(order);
        let mut head = 500;
        let mut tags = Vec::new();
        while let Some(r) = q.pop(head) {
            head = r.cylinder;
            tags.push(r.tag);
        }
        assert_eq!(tags, vec![3, 1, 2, 4]);
    }

    #[test]
    fn elevator_reverses_and_recovers() {
        let mut q = DiskQueue::new();
        q.push(req(50, 100, 1));
        let mut head = 500;
        // Nothing above 500: the elevator reverses and picks 100.
        let r = q.pop(head).unwrap();
        assert_eq!(r.tag, 1);
        head = r.cylinder;
        // Now descending; a request above the head flips it back.
        q.push(req(50, 800, 2));
        assert_eq!(q.pop(head).unwrap().tag, 2);
    }

    #[test]
    fn same_cylinder_fifo() {
        let mut q = DiskQueue::new();
        q.push(req(50, 42, 1));
        q.push(req(50, 42, 2));
        q.push(req(50, 42, 3));
        assert_eq!(q.pop(0).unwrap().tag, 1);
        assert_eq!(q.pop(42).unwrap().tag, 2);
        assert_eq!(q.pop(42).unwrap().tag, 3);
    }

    #[test]
    fn drain_removes_aborted_query() {
        let mut q = DiskQueue::new();
        q.push(req(10, 1, 7));
        q.push(req(20, 2, 8));
        q.push(req(30, 3, 7));
        let removed = q.drain_where(|&tag| tag == 7);
        assert_eq!(removed.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(0).unwrap().tag, 8);
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut q = DiskQueue::new();
        assert!(q.is_empty());
        q.push(req(1, 1, 1));
        q.push(req(2, 2, 2));
        assert_eq!(q.len(), 2);
        q.pop(0);
        assert_eq!(q.len(), 1);
    }
}
