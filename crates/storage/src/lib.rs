//! `storage` — the disk subsystem of the RTDBS simulator (Section 4.2).
//!
//! This crate models the physical storage substrate the paper's simulator
//! relies on:
//!
//! * [`geometry::DiskGeometry`] — seek/rotation/transfer service times with
//!   `Seek(n) = SeekFactor·√n` \[Bitt88\] and Table 3 defaults.
//! * [`queue::DiskQueue`] — per-disk Earliest-Deadline queues with elevator
//!   (SCAN) ordering among requests of equal priority.
//! * [`disk::Disk`] / [`disk::DiskFarm`] — the disks themselves, each with a
//!   256 KB prefetch cache that fetches `BlockSize` pages on sequential read
//!   misses.
//! * [`layout::Layout`] — database layout: relation groups placed on middle
//!   cylinders, temporary files on the inner/outer cylinders, exactly as in
//!   Section 4.1.

pub mod disk;
pub mod geometry;
pub mod layout;
pub mod queue;

pub use disk::{
    Access, Disk, DiskFarm, FastHasher, FastMap, IoKind, PrefetchCache, Service,
};
pub use geometry::{DiskGeometry, ServiceTable};
pub use layout::{DiskId, FileId, FileMeta, Layout, RelationGroupSpec, RelationMeta};
pub use queue::{DiskQueue, QueuedRequest};
