//! `storage` — the disk subsystem of the RTDBS simulator (Section 4.2).
//!
//! This crate models the physical storage substrate the paper's simulator
//! relies on:
//!
//! * [`service::ServiceModel`] — pluggable device service models:
//!   [`service::CylinderModel`] (seek/rotation/transfer with
//!   `Seek(n) = SeekFactor·√n` \[Bitt88\] and Table 3 defaults) and
//!   [`service::SsdModel`] (latency + bandwidth with queue-depth
//!   parallelism and read/write asymmetry), selected by
//!   [`service::DeviceSpec`].
//! * [`geometry::DiskGeometry`] — the cylinder device's physical
//!   parameters, also used by every device for file layout addressing.
//! * [`pool::BufferPool`] — the per-disk prefetch cache, generalized over
//!   a pluggable [`pool::EvictionPolicy`] (LRU and LRU-K), selected by
//!   [`pool::EvictionSpec`].
//! * [`queue::DiskQueue`] — per-disk Earliest-Deadline queues with elevator
//!   (SCAN) ordering among requests of equal priority.
//! * [`disk::Disk`] / [`disk::DiskFarm`] — the disks themselves, each with a
//!   256 KB prefetch cache that fetches `BlockSize` pages on sequential read
//!   misses.
//! * [`layout::Layout`] — database layout: relation groups placed on middle
//!   cylinders, temporary files on the inner/outer cylinders, exactly as in
//!   Section 4.1.

pub mod disk;
pub mod geometry;
pub mod layout;
pub mod pool;
pub mod queue;
pub mod service;

pub use disk::{Access, Disk, DiskFarm, IoKind, RetrySpec, Service};
pub use geometry::{DiskGeometry, ServiceTable};
pub use layout::{DiskId, FileId, FileMeta, Layout, RelationGroupSpec, RelationMeta};
pub use pool::{
    BufferPool, CacheKey, EvictionPolicy, EvictionSpec, FastHasher, FastMap, IndexedLru,
    LruKPolicy, PrefetchCache,
};
pub use queue::{DiskQueue, QueuedRequest};
pub use service::{CylinderModel, DeviceSpec, ServiceModel, SsdModel, SsdSpec};
