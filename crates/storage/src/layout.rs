//! On-disk layout: relations, temporary files, and their placement.
//!
//! Section 4.1: "all relations assigned to the same disk are randomly placed
//! on its middle cylinders; temporary files are allotted either the inner or
//! the outer cylinders." We reproduce that policy: the middle third of each
//! disk holds relations, and temp files alternate between the inner and
//! outer thirds.

use crate::geometry::DiskGeometry;
use crate::pool::FastMap;
use simkit::Rng;

/// Identifies one disk in the farm.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DiskId(pub u32);

/// Identifies a database relation or a temporary file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum FileId {
    /// A base relation, permanently resident.
    Relation(u32),
    /// A temporary (spool / run) file owned by one query.
    Temp(u64),
}

/// Placement and size of one file.
#[derive(Clone, Copy, Debug)]
pub struct FileMeta {
    /// Disk holding the file (files never span disks in this model).
    pub disk: DiskId,
    /// First cylinder of the (contiguous, cylinder-aligned) extent.
    pub start_cylinder: u32,
    /// Length in pages.
    pub pages: u32,
}

/// Metadata of one base relation.
#[derive(Clone, Copy, Debug)]
pub struct RelationMeta {
    /// The relation's file id.
    pub file: FileId,
    /// Which relation group (Section 4.1) it belongs to.
    pub group: u32,
    /// Size in pages.
    pub pages: u32,
    /// Disk it lives on.
    pub disk: DiskId,
}

/// One relation group from the database model (Table 2).
#[derive(Clone, Copy, Debug)]
pub struct RelationGroupSpec {
    /// `RelPerDisk_i` — number of relations per disk in this group.
    pub relations_per_disk: u32,
    /// `SizeRange_i` — inclusive size range in pages; the
    /// `relations_per_disk` relations take sizes at equal intervals across
    /// this range.
    pub size_range: (u32, u32),
}

impl RelationGroupSpec {
    /// The sizes of the relations in this group on each disk, spaced at
    /// equal intervals across `size_range` (e.g. `[100, 200]` with 5
    /// relations gives 100, 125, 150, 175, 200 — the paper's own example).
    pub fn sizes(&self) -> Vec<u32> {
        let n = self.relations_per_disk;
        let (lo, hi) = self.size_range;
        assert!(lo <= hi, "size range is inverted");
        assert!(n > 0, "a group must have at least one relation per disk");
        if n == 1 {
            return vec![lo];
        }
        (0..n)
            .map(|i| {
                let frac = i as f64 / (n - 1) as f64;
                (lo as f64 + frac * (hi - lo) as f64).round() as u32
            })
            .collect()
    }
}

/// The complete database layout plus a temp-file allocator.
pub struct Layout {
    geometry: DiskGeometry,
    num_disks: u32,
    files: FastMap<FileId, FileMeta>,
    relations: Vec<RelationMeta>,
    by_group: FastMap<u32, Vec<usize>>,
    next_temp: u64,
    temp_toggle: bool,
    next_temp_disk: u32,
}

impl Layout {
    /// Build the database described by `groups` across `num_disks` disks.
    ///
    /// Relations of each group are created on **every** disk with sizes at
    /// equal intervals across the group's range, then placed at random
    /// cylinders within the middle third of their disk (`rng` drives the
    /// placement only; sizes are deterministic).
    pub fn build(
        geometry: DiskGeometry,
        num_disks: u32,
        groups: &[RelationGroupSpec],
        rng: &mut Rng,
    ) -> Self {
        assert!(num_disks > 0, "need at least one disk");
        let mut layout = Layout {
            geometry,
            num_disks,
            files: FastMap::default(),
            relations: Vec::new(),
            by_group: FastMap::default(),
            next_temp: 0,
            temp_toggle: false,
            next_temp_disk: 0,
        };
        let middle_lo = geometry.num_cylinders / 3;
        let middle_hi = 2 * geometry.num_cylinders / 3;
        let mut next_rel_id = 0u32;
        for (gi, group) in groups.iter().enumerate() {
            for disk in 0..num_disks {
                for pages in group.sizes() {
                    let span = geometry.cylinders_for(pages);
                    let max_start = middle_hi.saturating_sub(span).max(middle_lo);
                    let start = if max_start > middle_lo {
                        middle_lo + rng.below((max_start - middle_lo) as u64) as u32
                    } else {
                        middle_lo
                    };
                    let file = FileId::Relation(next_rel_id);
                    next_rel_id += 1;
                    layout.files.insert(
                        file,
                        FileMeta {
                            disk: DiskId(disk),
                            start_cylinder: start,
                            pages,
                        },
                    );
                    let idx = layout.relations.len();
                    layout.relations.push(RelationMeta {
                        file,
                        group: gi as u32,
                        pages,
                        disk: DiskId(disk),
                    });
                    layout.by_group.entry(gi as u32).or_default().push(idx);
                }
            }
        }
        layout
    }

    /// The geometry this layout was built for.
    pub fn geometry(&self) -> DiskGeometry {
        self.geometry
    }

    /// Number of disks in the farm.
    pub fn num_disks(&self) -> u32 {
        self.num_disks
    }

    /// All relations, in creation order.
    pub fn relations(&self) -> &[RelationMeta] {
        &self.relations
    }

    /// The relations belonging to `group`.
    pub fn relations_in_group(&self, group: u32) -> &[usize] {
        self.by_group.get(&group).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Pick a uniformly random relation from `group`.
    ///
    /// # Panics
    /// Panics if the group is empty or unknown.
    pub fn random_relation(&self, group: u32, rng: &mut Rng) -> RelationMeta {
        let members = self.relations_in_group(group);
        assert!(!members.is_empty(), "relation group {group} is empty");
        self.relations[members[rng.index(members.len())]]
    }

    /// Placement of `file`.
    ///
    /// # Panics
    /// Panics if the file does not exist (use after `drop_temp`).
    pub fn meta(&self, file: FileId) -> FileMeta {
        *self
            .files
            .get(&file)
            .unwrap_or_else(|| panic!("unknown file {file:?}"))
    }

    /// Allocate a temporary file of `pages` pages.
    ///
    /// Temp files round-robin across disks and alternate between the inner
    /// and the outer cylinder regions, per Section 4.1.
    pub fn create_temp(&mut self, pages: u32) -> FileId {
        let disk = DiskId(self.next_temp_disk);
        self.next_temp_disk = (self.next_temp_disk + 1) % self.num_disks;
        let inner = self.temp_toggle;
        self.temp_toggle = !self.temp_toggle;
        let start = if inner {
            // Inner third, near cylinder 0.
            self.geometry.num_cylinders / 6
        } else {
            // Outer third.
            5 * self.geometry.num_cylinders / 6
        };
        let id = FileId::Temp(self.next_temp);
        self.next_temp += 1;
        self.files.insert(
            id,
            FileMeta {
                disk,
                start_cylinder: start,
                pages,
            },
        );
        id
    }

    /// Allocate a temp file on a specific disk (used to co-locate a query's
    /// spool files with its operand relation when desired).
    pub fn create_temp_on(&mut self, disk: DiskId, pages: u32) -> FileId {
        let inner = self.temp_toggle;
        self.temp_toggle = !self.temp_toggle;
        let start = if inner {
            self.geometry.num_cylinders / 6
        } else {
            5 * self.geometry.num_cylinders / 6
        };
        let id = FileId::Temp(self.next_temp);
        self.next_temp += 1;
        self.files.insert(
            id,
            FileMeta {
                disk,
                start_cylinder: start,
                pages,
            },
        );
        id
    }

    /// Release a temporary file. Dropping an already-dropped temp is an
    /// error; dropping a base relation is forbidden.
    pub fn drop_temp(&mut self, file: FileId) {
        match file {
            FileId::Temp(_) => {
                let removed = self.files.remove(&file);
                assert!(removed.is_some(), "double drop of {file:?}");
            }
            FileId::Relation(_) => panic!("cannot drop a base relation"),
        }
    }

    /// Number of live files (relations + outstanding temps).
    pub fn live_files(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_layout(num_disks: u32) -> (Layout, Rng) {
        let mut rng = Rng::new(42);
        let layout = Layout::build(
            DiskGeometry::default(),
            num_disks,
            &[
                RelationGroupSpec {
                    relations_per_disk: 3,
                    size_range: (600, 1800),
                },
                RelationGroupSpec {
                    relations_per_disk: 5,
                    size_range: (100, 200),
                },
            ],
            &mut rng,
        );
        (layout, rng)
    }

    #[test]
    fn group_sizes_at_equal_intervals() {
        // Paper example: RelPerDisk = 5, SizeRange = [100, 200]
        let g = RelationGroupSpec {
            relations_per_disk: 5,
            size_range: (100, 200),
        };
        assert_eq!(g.sizes(), vec![100, 125, 150, 175, 200]);
        let single = RelationGroupSpec {
            relations_per_disk: 1,
            size_range: (50, 150),
        };
        assert_eq!(single.sizes(), vec![50]);
    }

    #[test]
    fn builds_relations_per_disk_per_group() {
        let (layout, _) = test_layout(10);
        // (3 + 5) relations per disk × 10 disks.
        assert_eq!(layout.relations().len(), 80);
        assert_eq!(layout.relations_in_group(0).len(), 30);
        assert_eq!(layout.relations_in_group(1).len(), 50);
    }

    #[test]
    fn relations_placed_on_middle_cylinders() {
        let (layout, _) = test_layout(4);
        let g = layout.geometry();
        for rel in layout.relations() {
            let meta = layout.meta(rel.file);
            let end = meta.start_cylinder + g.cylinders_for(meta.pages);
            assert!(meta.start_cylinder >= g.num_cylinders / 3, "start too low");
            assert!(end <= 2 * g.num_cylinders / 3 + g.cylinders_for(meta.pages));
        }
    }

    #[test]
    fn temp_files_alternate_inner_outer() {
        let (mut layout, _) = test_layout(2);
        let t1 = layout.create_temp(100);
        let t2 = layout.create_temp(100);
        let c1 = layout.meta(t1).start_cylinder;
        let c2 = layout.meta(t2).start_cylinder;
        let mid_lo = layout.geometry().num_cylinders / 3;
        let mid_hi = 2 * layout.geometry().num_cylinders / 3;
        assert!(c1 < mid_lo || c1 >= mid_hi, "temp on middle cylinders");
        assert!(c2 < mid_lo || c2 >= mid_hi, "temp on middle cylinders");
        assert_ne!(c1, c2, "temps should alternate regions");
    }

    #[test]
    fn temp_files_round_robin_disks() {
        let (mut layout, _) = test_layout(3);
        let disks: Vec<u32> = (0..6)
            .map(|_| {
                let t = layout.create_temp(10);
                layout.meta(t).disk.0
            })
            .collect();
        assert_eq!(disks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn drop_temp_releases() {
        let (mut layout, _) = test_layout(1);
        let before = layout.live_files();
        let t = layout.create_temp(10);
        assert_eq!(layout.live_files(), before + 1);
        layout.drop_temp(t);
        assert_eq!(layout.live_files(), before);
    }

    #[test]
    #[should_panic(expected = "double drop")]
    fn double_drop_panics() {
        let (mut layout, _) = test_layout(1);
        let t = layout.create_temp(10);
        layout.drop_temp(t);
        layout.drop_temp(t);
    }

    #[test]
    #[should_panic(expected = "cannot drop a base relation")]
    fn dropping_relation_panics() {
        let (mut layout, _) = test_layout(1);
        let file = layout.relations()[0].file;
        layout.drop_temp(file);
    }

    #[test]
    fn random_relation_comes_from_group() {
        let (layout, mut rng) = test_layout(2);
        for _ in 0..100 {
            let rel = layout.random_relation(1, &mut rng);
            assert_eq!(rel.group, 1);
            assert!((100..=200).contains(&rel.pages));
        }
    }

    #[test]
    fn placement_is_seed_deterministic() {
        let build = |seed| {
            let mut rng = Rng::new(seed);
            let l = Layout::build(
                DiskGeometry::default(),
                4,
                &[RelationGroupSpec {
                    relations_per_disk: 3,
                    size_range: (600, 1800),
                }],
                &mut rng,
            );
            l.relations()
                .iter()
                .map(|r| (r.file, l.meta(r.file).start_cylinder))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }
}
