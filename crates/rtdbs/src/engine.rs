//! The integrated RTDBS simulator (Section 4, Figure 2): Source, Query
//! Manager, Buffer Manager, CPU Manager and Disk Manager wired together
//! around one event calendar.
//!
//! The flow of one query: the **Source** draws its operand relation(s),
//! slack ratio and arrival time — from the class's pluggable
//! [`workload::ArrivalProcess`] (Poisson by default, MMPP/deterministic/
//! trace for wider scenarios) — prices its stand-alone execution
//! (for the deadline `Deadline = Arrival + StandAlone × SlackRatio`) and
//! submits it. The **Buffer Manager** consults the configured
//! [`MemoryPolicy`] for admission and memory allocation; granted queries are
//! driven as operator state machines whose CPU bursts go to the preemptive
//! ED **CPU Manager** and whose page I/Os go to the per-disk ED+elevator
//! **Disk Manager** queues. Firm deadlines are enforced by an abort event:
//! at its deadline an unfinished query is killed, its resources reclaimed,
//! and it counts as missed (Section 3: in a firm RTDBS late queries are
//! worthless).
//!
//! Every `SampleSize` served queries the engine assembles a
//! [`pmm::BatchStats`] and feeds it to the policy — this is the feedback
//! loop PMM's adaptation lives on. Multi-tenant configs additionally keep
//! one *independent* batch window per tenant partition: when a policy opts
//! in ([`MemoryPolicy::wants_tenant_feedback`]), each tenant's window
//! closes on its own schedule and is routed to
//! [`MemoryPolicy::on_tenant_batch`] — the feedback path PMM v2's
//! per-tenant controllers (`pmm::TenantPmm`) adapt on. The engine also
//! aggregates per-tenant quota utilization and borrow volume into
//! [`RunReport::tenants`] for any policy.

use crate::config::{QueryType, SimConfig};
use crate::cpu::CpuManager;
use crate::faults::{DegradationMode, FaultSpec};
use crate::metrics::{
    ClassOutcome, RunReport, TenantOutcome, TimingTallies, WindowPoint,
};
use exec::{Action, ActionRun, ExternalSort, FileRef, HashJoin, Operator};
use obs::{
    CounterFamilyId, CounterId, DegradedAction, FaultClass, GaugeFamilyId, GaugeId,
    HistId, MetricsRegistry, Profiler, Section, TraceEvent, TraceKind, TraceMode, Tracer,
};
use pmm::{
    AllocScratch, BatchStats, DirtySet, Grants, MemoryPolicy, QueryDemand, QueryId,
    SystemSnapshot,
};
use simkit::calendar::EventHandle;
use simkit::metrics::{BatchMeans, Tally, TimeWeighted, Utilization};
use simkit::{Calendar, Duration, Rng, SeedSequence, SimTime};
use stats::SampleSummary;
use std::collections::VecDeque;
use storage::{
    Access, DiskFarm, FileId, FileMeta, IoKind, Layout, RelationMeta, Service,
};
use workload::ArrivalProcess;

/// Calendar event payloads.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// Next arrival of a workload class.
    Arrival {
        /// Class index.
        class: usize,
    },
    /// The running CPU burst finished.
    CpuDone {
        /// Owning query.
        query: QueryId,
    },
    /// A disk completed its in-flight access.
    DiskDone {
        /// Disk index.
        disk: usize,
    },
    /// Firm-deadline expiry.
    Deadline {
        /// The query whose deadline passed.
        query: QueryId,
    },
    /// A scheduled fault-plan transition fires (degrade/outage/shock edge).
    Fault {
        /// Index into the simulator's precomputed transition list.
        index: usize,
    },
    /// A disk's retry backoff elapsed; the device tries the access again.
    IoRetry {
        /// Disk index.
        disk: usize,
    },
    /// End of the simulation.
    EndOfRun,
}

/// One edge of a [`FaultSpec`] window, precomputed at construction so the
/// event handler is a plain table lookup. The list is sorted by time with
/// plan order as the tie-break, so identical plans always fire identically.
#[derive(Clone, Copy, Debug)]
enum FaultTransition {
    Degrade { disk: u32, factor: f64 },
    DegradeEnd { disk: u32 },
    Outage { disk: u32 },
    OutageEnd { disk: u32 },
    Shock { fraction: f64 },
    ShockEnd,
}

/// What a live query is currently waiting on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Waiting {
    /// Nothing scheduled: parked or not yet admitted.
    Nothing,
    /// A CPU burst is in flight.
    Cpu,
    /// A disk access is queued or in flight.
    Disk,
}

/// Cached physical placement of one file a query touches: everything the
/// per-I/O hot path needs, resolved *once* — at arrival for the base
/// relations, at `CreateTemp` for temps — instead of through the layout's
/// hash map on every disk access.
#[derive(Clone, Copy, Debug)]
struct PlacedFile {
    file: FileId,
    disk: u32,
    start_cylinder: u32,
    pages: u32,
}

impl PlacedFile {
    fn new(file: FileId, meta: FileMeta) -> Self {
        PlacedFile {
            file,
            disk: meta.disk.0,
            start_cylinder: meta.start_cylinder,
            pages: meta.pages,
        }
    }
}

struct LiveQuery {
    id: QueryId,
    class: usize,
    tenant: u32,
    op: Box<dyn Operator>,
    /// The operator's current planned run; drained by `drive`, reconciled
    /// via `Operator::sync_run` before any mid-run `set_allocation`.
    run: ActionRun,
    arrival: SimTime,
    deadline: SimTime,
    granted: u32,
    first_admit: Option<SimTime>,
    waiting: Waiting,
    /// Placement of the operand relation(s) (R, and S for joins).
    r_place: PlacedFile,
    s_place: Option<PlacedFile>,
    /// Live temp files by operator slot (operators use one slot today, so a
    /// linear scan beats any map).
    temps: Vec<(u32, PlacedFile)>,
    operand_ios: u32,
    /// The query's firm-deadline abort event, cancelled on completion so
    /// long runs do not carry dead deadline events in the calendar.
    deadline_handle: Option<EventHandle>,
}

impl LiveQuery {
    fn demand(&self) -> QueryDemand {
        QueryDemand {
            id: self.id,
            deadline: self.deadline,
            max_mem: self.op.max_memory(),
            min_mem: self.op.min_memory(),
            tenant: self.tenant,
        }
    }

    fn resolve(&self, file: FileRef) -> &PlacedFile {
        match file {
            FileRef::Base(f) => {
                if self.r_place.file == f {
                    &self.r_place
                } else {
                    match &self.s_place {
                        Some(s) if s.file == f => s,
                        _ => panic!("query accesses unknown base file {f:?}"),
                    }
                }
            }
            FileRef::Temp(slot) => self
                .temps
                .iter()
                .find(|(s, _)| *s == slot)
                .map(|(_, p)| p)
                .unwrap_or_else(|| panic!("unbound temp slot {slot}")),
        }
    }
}

/// Per-tenant tracking: run-level aggregates (quota utilization, borrow
/// volume, outcomes) plus — when the policy asks for per-tenant feedback —
/// an independent `SampleSize` batch window whose closure feeds
/// [`MemoryPolicy::on_tenant_batch`]. Pure bookkeeping: nothing here
/// consumes randomness or moves an event, so single-tenant runs (where the
/// vector is empty) are bit-identical to the pre-v2 engine.
struct TenantState {
    name: String,
    quota: u32,
    soft: bool,
    // Run-level outcomes and time-weighted usage.
    served: u64,
    missed: u64,
    mpl: TimeWeighted,
    used: TimeWeighted,
    borrowed: TimeWeighted,
    // Exact holder/page counts, maintained incrementally on every grant
    // diff (`apply_grant`) and departure instead of the seed's per-event
    // scan over the whole live table — `update_mpl` reads these. Integer
    // arithmetic keeps the values bit-identical to the scan.
    cur_holders: u32,
    cur_pages: u64,
    // Per-tenant feedback batch window (maintained only when the policy
    // wants tenant feedback).
    b_served: u64,
    b_missed: u64,
    b_mpl: TimeWeighted,
    b_wait: Tally,
    b_slack: Tally,
    b_char_mem: Tally,
    b_char_ios: Tally,
    b_char_norm: Tally,
    /// The current feedback window overlapped a memory shock: close it
    /// without feeding the policy (shock-era samples would poison the
    /// learned batches), mirroring the global taint flag.
    b_tainted: bool,
}

impl TenantState {
    fn new(name: String, quota: u32, soft: bool, start: SimTime) -> Self {
        TenantState {
            name,
            quota,
            soft,
            served: 0,
            missed: 0,
            mpl: TimeWeighted::new(start, 0.0),
            used: TimeWeighted::new(start, 0.0),
            borrowed: TimeWeighted::new(start, 0.0),
            cur_holders: 0,
            cur_pages: 0,
            b_served: 0,
            b_missed: 0,
            b_mpl: TimeWeighted::new(start, 0.0),
            b_wait: Tally::new(),
            b_slack: Tally::new(),
            b_char_mem: Tally::new(),
            b_char_ios: Tally::new(),
            b_char_norm: Tally::new(),
            b_tainted: false,
        }
    }
}

/// Sentinel in the id window marking a departed query.
const DEAD_SLOT: u32 = u32::MAX;

/// The live-query table: a slab of reusable slots plus a sliding dense
/// index from `QueryId` to slot.
///
/// The seed engine kept `BTreeMap<QueryId, LiveQuery>` and did a full
/// remove + insert round-trip (moving the boxed operator through the tree)
/// every time `drive()` advanced a query — on *every* CPU and disk
/// completion. Here queries stay put in their slot for their whole life;
/// events resolve `id → slot` through `slot_of`, a `VecDeque<u32>` window
/// over the contiguous id space (ids are assigned sequentially, so the
/// window is dense: index `id - base`, front advanced past departed ids).
/// Lookups are two array probes — no tree walk, no hashing — and the slab
/// index doubles as the key of the dense grant map in `reallocate`.
///
/// The table also maintains `ed`: the live queries in Earliest-Deadline
/// order (`(deadline, id)`, the policies' exact sort key), updated
/// incrementally on insert/remove only — deadlines are fixed at arrival, so
/// nothing else can reorder it. `reallocate` feeds the policy snapshot in
/// this order, which turns the per-event ED re-sort inside the allocators
/// into an `is_sorted` verification pass (see `AllocScratch::ed_order`).
struct QueryTable {
    slots: Vec<Option<LiveQuery>>,
    free: Vec<u32>,
    slot_of: VecDeque<u32>,
    base: u64,
    /// Live queries in `(deadline, id)` order, with their slab slot.
    ed: Vec<(SimTime, QueryId, u32)>,
}

impl QueryTable {
    fn new() -> Self {
        QueryTable {
            slots: Vec::new(),
            free: Vec::new(),
            slot_of: VecDeque::new(),
            base: 0,
            ed: Vec::new(),
        }
    }

    /// Insert the next arrival. Ids must arrive in sequence — the engine
    /// allocates them from a counter, which keeps the index dense.
    fn insert(&mut self, q: LiveQuery) -> u32 {
        debug_assert_eq!(
            q.id.0,
            self.base + self.slot_of.len() as u64,
            "query ids must be sequential"
        );
        let ed_key = (q.deadline, q.id);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(q);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("slot count fits u32");
                self.slots.push(Some(q));
                s
            }
        };
        self.slot_of.push_back(slot);
        let at = self.ed.partition_point(|&(d, id, _)| (d, id) < ed_key);
        self.ed.insert(at, (ed_key.0, ed_key.1, slot));
        slot
    }

    /// Slot of a live query, or `None` if it departed (or never existed).
    fn slot_of(&self, id: QueryId) -> Option<u32> {
        let idx = id.0.checked_sub(self.base)?;
        match self.slot_of.get(idx as usize) {
            Some(&s) if s != DEAD_SLOT => Some(s),
            _ => None,
        }
    }

    fn get_mut(&mut self, id: QueryId) -> Option<&mut LiveQuery> {
        let slot = self.slot_of(id)?;
        self.slots[slot as usize].as_mut()
    }

    /// Direct slab access for a slot known to be occupied.
    fn slot_mut(&mut self, slot: u32) -> &mut LiveQuery {
        self.slots[slot as usize]
            .as_mut()
            .expect("slot holds a live query")
    }

    fn remove(&mut self, id: QueryId) -> Option<LiveQuery> {
        let slot = self.slot_of(id)?;
        let idx = (id.0 - self.base) as usize;
        self.slot_of[idx] = DEAD_SLOT;
        // Slide the window past departed ids at the front.
        while self.slot_of.front() == Some(&DEAD_SLOT) {
            self.slot_of.pop_front();
            self.base += 1;
        }
        let q = self.slots[slot as usize].take();
        self.free.push(slot);
        if let Some(q) = &q {
            let key = (q.deadline, q.id);
            let at = self.ed.partition_point(|&(d, i, _)| (d, i) < key);
            debug_assert!(self.ed[at].1 == id, "ED index out of sync");
            self.ed.remove(at);
        }
        q
    }

    /// Upper bound on slot indices ever handed out (the dense grant map is
    /// sized to this).
    fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Live queries with their slots, in slot order. Callers needing a
    /// deterministic order sort by an id-bearing key themselves.
    fn iter_with_slots(&self) -> impl Iterator<Item = (u32, &LiveQuery)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|q| (i as u32, q)))
    }

    /// Live queries in `(deadline, id)` order with their slab slots.
    fn ed_order(&self) -> &[(SimTime, QueryId, u32)] {
        &self.ed
    }

    /// Shared slab access for a slot known to be occupied.
    fn slot_ref(&self, slot: u32) -> &LiveQuery {
        self.slots[slot as usize]
            .as_ref()
            .expect("slot holds a live query")
    }
}

/// Response-time histogram buckets (seconds): fixed so every replication
/// of every cell produces mergeable, byte-identical bucket layouts.
const RESPONSE_BUCKETS: &[f64] =
    &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0];

/// The engine's metrics instruments, pre-registered so every update on the
/// hot path is a plain array index. Counter registration order fixes the
/// windowed-delta column order in `MetricsReport` (naming convention:
/// `<subsystem>.<noun>`, see the README "Observability" section).
struct ObsMetrics {
    reg: MetricsRegistry,
    arrivals: CounterId,
    served: CounterId,
    missed: CounterId,
    reallocations: CounterId,
    batches: CounterId,
    cpu_bursts: CounterId,
    io_requests: CounterId,
    cache_hits: CounterId,
    faults_injected: CounterId,
    faults_io_retries: CounterId,
    faults_aborts: CounterId,
    faults_requeues: CounterId,
    faults_shock_victims: CounterId,
    faults_batches_segmented: CounterId,
    mpl: GaugeId,
    response: HistId,
    // Per-tenant label families (multi-tenant configs only). Families
    // live outside the windowed-delta columns, so registering them never
    // perturbs the established window layout of single-tenant runs.
    tenant_served: Option<CounterFamilyId>,
    tenant_missed: Option<CounterFamilyId>,
    tenant_mpl: Option<GaugeFamilyId>,
}

impl ObsMetrics {
    fn new(tenant_count: usize) -> Self {
        let mut reg = MetricsRegistry::new();
        let arrivals = reg.counter("engine.arrivals");
        let served = reg.counter("engine.served");
        let missed = reg.counter("engine.missed");
        let reallocations = reg.counter("pmm.reallocations");
        let batches = reg.counter("pmm.batches");
        let cpu_bursts = reg.counter("cpu.bursts");
        let io_requests = reg.counter("disk.requests");
        let cache_hits = reg.counter("disk.cache_hits");
        // Fault instrumentation registers after the seed counters so the
        // established windowed-delta column order is preserved.
        let faults_injected = reg.counter("faults.injected");
        let faults_io_retries = reg.counter("faults.io_retries");
        let faults_aborts = reg.counter("faults.aborts");
        let faults_requeues = reg.counter("faults.requeues");
        let faults_shock_victims = reg.counter("faults.shock_victims");
        let faults_batches_segmented = reg.counter("faults.batches_segmented");
        let mpl = reg.gauge("engine.mpl");
        let response = reg.histogram("engine.response_secs", RESPONSE_BUCKETS);
        // Registered last: single-tenant registries stay exactly as before.
        let multi = tenant_count > 0;
        let tenant_served =
            multi.then(|| reg.counter_family("engine.tenant.served", tenant_count));
        let tenant_missed =
            multi.then(|| reg.counter_family("engine.tenant.missed", tenant_count));
        let tenant_mpl =
            multi.then(|| reg.gauge_family("engine.tenant.mpl", tenant_count));
        ObsMetrics {
            reg,
            arrivals,
            served,
            missed,
            reallocations,
            batches,
            cpu_bursts,
            io_requests,
            cache_hits,
            faults_injected,
            faults_io_retries,
            faults_aborts,
            faults_requeues,
            faults_shock_victims,
            faults_batches_segmented,
            mpl,
            response,
            tenant_served,
            tenant_missed,
            tenant_mpl,
        }
    }
}

/// The simulator. Construct with [`Simulator::new`], execute with
/// [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
    cal: Calendar<Event>,
    layout: Layout,
    disks: DiskFarm,
    disk_inflight: Vec<Option<QueryId>>,
    disk_util_run: Vec<Utilization>,
    disk_util_batch: Vec<Utilization>,
    cpu: CpuManager,
    policy: Box<dyn MemoryPolicy>,
    live: QueryTable,
    next_id: u64,
    // Steady-state-allocation-free reallocation: the snapshot demand vec,
    // the policy's sort scratch, the grant list, the dense grant map keyed
    // by slab slot, and the diff list are all reused across calls.
    snapshot: SystemSnapshot,
    alloc_scratch: AllocScratch,
    policy_grants: Grants,
    grant_by_slot: Vec<u32>,
    diffs: Vec<(QueryId, u32, u32)>,
    // Incremental dirty-set allocation (policies opting in via
    // `supports_dirty_allocation`, multi-tenant configs only): live demands
    // bucketed per partition, each slot's index inside its bucket (for O(1)
    // swap-removal), and the set of partitions whose demand changed since
    // the last allocation event. Reallocation cost then scales with churn,
    // not population.
    use_dirty: bool,
    demand_groups: Vec<Vec<QueryDemand>>,
    group_pos: Vec<u32>,
    dirty: DirtySet,
    /// Live queries holding memory (granted > 0), maintained on grant
    /// diffs; the single-tenant `update_mpl` reading.
    holders: u32,
    arrivals: Vec<Box<dyn ArrivalProcess>>,
    rng_arrival: Vec<Rng>,
    rng_pick: Vec<Rng>,
    rng_slack: Vec<Rng>,
    standalone_cache: storage::FastMap<(FileId, Option<FileId>), Duration>,
    // Run-level metrics.
    served: u64,
    missed: u64,
    class_outcomes: Vec<ClassOutcome>,
    timings: TimingTallies,
    mpl_run: TimeWeighted,
    miss_series: BatchMeans,
    windows: Vec<WindowPoint>,
    window_start: SimTime,
    window_served: u64,
    window_missed: u64,
    // Batch (SampleSize) accumulators for policy feedback.
    batch_served: u64,
    batch_missed: u64,
    mpl_batch: TimeWeighted,
    batch_wait: Tally,
    batch_slack: Tally,
    batch_char_mem: Tally,
    batch_char_ios: Tally,
    batch_char_norm: Tally,
    // Per-tenant tracking (empty for single-tenant configs) and whether
    // per-tenant feedback batches are routed to the policy.
    tenants: Vec<TenantState>,
    tenant_feedback: bool,
    // Observability: the single recording path (arrival gaps, the query
    // lifecycle, policy decisions all flow through this sink), the
    // pre-registered metrics instruments, and the wall-clock profiler.
    tracer: Tracer,
    obs_metrics: Option<Box<ObsMetrics>>,
    profiler: Profiler,
    /// Policy trace points already forwarded into the obs trace.
    policy_trace_seen: usize,
    // Re-entrancy guard for reallocation.
    reallocating: bool,
    realloc_pending: bool,
    // Fault plan: precomputed window edges (empty plans schedule nothing —
    // the dark path cannot move an event), the memory ceiling the policy
    // sees (shrunk by an active shock), and the batch taint flags that keep
    // shock-era samples out of the policy's learned batches.
    fault_events: Vec<(SimTime, FaultTransition)>,
    effective_memory: u32,
    shock_active: bool,
    batch_tainted: bool,
    end: SimTime,
}

impl Simulator {
    /// Build a simulator for `cfg` driven by `policy`.
    pub fn new(cfg: SimConfig, policy: Box<dyn MemoryPolicy>) -> Self {
        let seeds = SeedSequence::new(cfg.seed);
        let mut layout_rng = seeds.stream("layout");
        let layout = Layout::build(
            cfg.resources.geometry,
            cfg.resources.num_disks,
            &cfg.database,
            &mut layout_rng,
        );
        let start = SimTime::ZERO;
        let device = cfg.resources.device;
        let geometry = cfg.resources.geometry;
        let mut disks = DiskFarm::new(
            cfg.resources.num_disks,
            || device.build(&geometry),
            cfg.resources.eviction,
            cfg.resources.exec.block_pages,
            start,
        );
        let n_disks = cfg.resources.num_disks as usize;
        for d in 0..n_disks {
            disks.disk_mut(d).set_retry_spec(cfg.faults.retry);
        }
        // Expand the fault plan into window edges up front. Stable sort by
        // time keeps plan order as the tie-break, so the firing sequence is
        // a pure function of the plan.
        let mut fault_events: Vec<(SimTime, FaultTransition)> = Vec::new();
        for ev in &cfg.faults.events {
            let (s, e) = ev.window();
            let (w_start, w_end) = (SimTime::from_secs_f64(s), SimTime::from_secs_f64(e));
            match *ev {
                FaultSpec::DiskDegrade { disk, factor, .. } => {
                    fault_events
                        .push((w_start, FaultTransition::Degrade { disk, factor }));
                    fault_events.push((w_end, FaultTransition::DegradeEnd { disk }));
                }
                FaultSpec::DiskOutage { disk, .. } => {
                    fault_events.push((w_start, FaultTransition::Outage { disk }));
                    fault_events.push((w_end, FaultTransition::OutageEnd { disk }));
                }
                FaultSpec::MemoryShock { fraction, .. } => {
                    fault_events.push((w_start, FaultTransition::Shock { fraction }));
                    fault_events.push((w_end, FaultTransition::ShockEnd));
                }
            }
        }
        fault_events.sort_by_key(|&(t, _)| t);
        let n_classes = cfg.classes.len();
        let end = SimTime::from_secs_f64(cfg.duration_secs);
        let tenants: Vec<TenantState> = cfg
            .tenants
            .iter()
            .map(|t| TenantState::new(t.name.clone(), t.quota_pages, t.soft, start))
            .collect();
        let tenant_feedback = !tenants.is_empty() && policy.wants_tenant_feedback();
        let use_dirty = !tenants.is_empty() && policy.supports_dirty_allocation();
        // One recording path: `--record-arrivals` routes through the obs
        // sink too. It needs every gap, so it forces a full (non-evicting)
        // sink and enables (at least) the arrival-gap event kind.
        let tracer = {
            let mode = if cfg.record_arrivals {
                TraceMode::Full
            } else {
                cfg.obs.trace
            };
            let mut mask = match cfg.obs.trace {
                TraceMode::Off => 0,
                _ => TraceKind::ALL,
            };
            if cfg.record_arrivals {
                mask |= TraceKind::ArrivalGap.bit();
            }
            // A trace path streams records to disk instead of buffering the
            // run; arrival recording needs the in-memory records back, so
            // it keeps the buffered sink.
            match &cfg.obs.trace_path {
                Some(path) if !cfg.record_arrivals && cfg.obs.trace != TraceMode::Off => {
                    Tracer::streaming(path, mask).unwrap_or_else(|e| {
                        panic!("cannot open trace stream {}: {e}", path.display())
                    })
                }
                _ => Tracer::with_mask(mode, cfg.obs.ring_capacity, mask),
            }
        };
        let obs_metrics = cfg
            .obs
            .metrics
            .then(|| Box::new(ObsMetrics::new(tenants.len())));
        let profiler = Profiler::new(cfg.obs.profile);
        Simulator {
            cal: Calendar::new(),
            layout,
            disks,
            disk_inflight: vec![None; n_disks],
            disk_util_run: vec![Utilization::new(start); n_disks],
            disk_util_batch: vec![Utilization::new(start); n_disks],
            cpu: CpuManager::new(cfg.resources.cpu_mips, start),
            policy,
            live: QueryTable::new(),
            next_id: 0,
            snapshot: SystemSnapshot {
                now: start,
                total_memory: cfg.resources.memory_pages,
                queries: Vec::new(),
            },
            alloc_scratch: AllocScratch::default(),
            policy_grants: Grants::new(),
            grant_by_slot: Vec::new(),
            diffs: Vec::new(),
            use_dirty,
            demand_groups: if use_dirty {
                vec![Vec::new(); tenants.len()]
            } else {
                Vec::new()
            },
            group_pos: Vec::new(),
            dirty: DirtySet::new(tenants.len()),
            holders: 0,
            arrivals: cfg.classes.iter().map(|c| c.arrival.build()).collect(),
            rng_arrival: (0..n_classes)
                .map(|i| seeds.substream("arrival", i as u64))
                .collect(),
            rng_pick: (0..n_classes)
                .map(|i| seeds.substream("pick", i as u64))
                .collect(),
            rng_slack: (0..n_classes)
                .map(|i| seeds.substream("slack", i as u64))
                .collect(),
            standalone_cache: storage::FastMap::default(),
            served: 0,
            missed: 0,
            class_outcomes: cfg
                .classes
                .iter()
                .map(|c| ClassOutcome {
                    name: c.name.clone(),
                    served: 0,
                    missed: 0,
                })
                .collect(),
            timings: TimingTallies::default(),
            mpl_run: TimeWeighted::new(start, 0.0),
            miss_series: BatchMeans::new(100),
            windows: Vec::new(),
            window_start: start,
            window_served: 0,
            window_missed: 0,
            batch_served: 0,
            batch_missed: 0,
            mpl_batch: TimeWeighted::new(start, 0.0),
            batch_wait: Tally::new(),
            batch_slack: Tally::new(),
            batch_char_mem: Tally::new(),
            batch_char_ios: Tally::new(),
            batch_char_norm: Tally::new(),
            tenants,
            tenant_feedback,
            tracer,
            obs_metrics,
            profiler,
            policy_trace_seen: 0,
            reallocating: false,
            realloc_pending: false,
            fault_events,
            effective_memory: cfg.resources.memory_pages,
            shock_active: false,
            batch_tainted: false,
            end,
            cfg,
        }
    }

    /// Execute the run to completion and report.
    pub fn run(mut self) -> RunReport {
        for class in 0..self.cfg.classes.len() {
            self.schedule_next_arrival(class, SimTime::ZERO);
        }
        // Fault windows are fixed points of the plan, scheduled once here.
        // An empty plan schedules nothing: the calendar, the RNG streams and
        // every report byte stay identical to a fault-free engine.
        for i in 0..self.fault_events.len() {
            let at = self.fault_events[i].0;
            if at < self.end {
                self.cal.schedule(at, Event::Fault { index: i });
            }
        }
        self.cal.schedule(self.end, Event::EndOfRun);
        loop {
            let t0 = self.profiler.begin();
            let popped = self.cal.pop();
            self.profiler.end(Section::CalendarPop, t0);
            let Some((t, event)) = popped else { break };
            if matches!(event, Event::EndOfRun) {
                break;
            }
            let t0 = self.profiler.begin();
            match event {
                Event::EndOfRun => {}
                Event::Arrival { class } => self.on_arrival(t, class),
                Event::CpuDone { query } => self.on_cpu_done(t, query),
                Event::DiskDone { disk } => self.on_disk_done(t, disk),
                Event::Deadline { query } => self.on_deadline(t, query),
                Event::Fault { index } => self.on_fault(t, index),
                Event::IoRetry { disk } => self.on_io_retry(t, disk),
            }
            self.profiler.end(Section::Dispatch, t0);
        }
        self.finish_report()
    }

    // ----- Source -------------------------------------------------------

    fn schedule_next_arrival(&mut self, class: usize, now: SimTime) {
        // The arrival process draws from this class's independent RNG
        // stream; a dead process (zero rate, exhausted trace) ends the
        // class's arrival sequence.
        let Some(gap) =
            self.arrivals[class].next_interarrival(&mut self.rng_arrival[class])
        else {
            return;
        };
        // Microsecond ticks round-trip exactly through f64 at any realistic
        // horizon, so a recorded trace replays bit-for-bit. Emitted before
        // the horizon check (like the pre-obs recorder): replay consumes
        // the final past-horizon gap too.
        if !self.tracer.is_off() {
            self.tracer.emit(
                now,
                TraceEvent::ArrivalGap {
                    class: class as u32,
                    gap_secs: gap.as_secs_f64(),
                },
            );
        }
        let at = now + gap;
        if at < self.end {
            self.cal.schedule(at, Event::Arrival { class });
        }
    }

    fn on_arrival(&mut self, now: SimTime, class: usize) {
        self.schedule_next_arrival(class, now);
        let active =
            self.cfg
                .schedule
                .is_active(now.as_secs_f64(), class, self.cfg.classes.len());
        if !active {
            return;
        }
        // Copy out the three small fields the arrival path needs; the spec
        // itself (name string, arrival process) stays put — the seed engine
        // cloned the whole `WorkloadClass` per arrival.
        let spec = &self.cfg.classes[class];
        let query_type = spec.query_type;
        let slack_range = spec.slack_range;
        let tenant = spec.tenant as u32;
        let exec_cfg = self.cfg.resources.exec;
        let (op, r_meta, s_meta): (
            Box<dyn Operator>,
            RelationMeta,
            Option<RelationMeta>,
        ) = match query_type {
            QueryType::HashJoin { groups } => {
                let a = self
                    .layout
                    .random_relation(groups.0, &mut self.rng_pick[class]);
                let b = self
                    .layout
                    .random_relation(groups.1, &mut self.rng_pick[class]);
                // The smaller relation builds (inner R), the larger probes.
                let (r, s) = if a.pages <= b.pages { (a, b) } else { (b, a) };
                (
                    Box::new(HashJoin::new(exec_cfg, r.file, r.pages, s.file, s.pages)),
                    r,
                    Some(s),
                )
            }
            QueryType::ExternalSort { group } => {
                let r = self
                    .layout
                    .random_relation(group, &mut self.rng_pick[class]);
                (
                    Box::new(ExternalSort::new(exec_cfg, r.file, r.pages)),
                    r,
                    None,
                )
            }
        };
        let standalone = self.standalone_of(&query_type, r_meta, s_meta);
        let slack = self.rng_slack[class].uniform(slack_range.0, slack_range.1);
        let deadline = now + standalone.scale(slack);
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let operand_ios = {
            let block = exec_cfg.block_pages;
            let s_pages = s_meta.map_or(0, |m| m.pages);
            r_meta.pages.div_ceil(block) + s_pages.div_ceil(block)
        };
        let query = LiveQuery {
            id,
            class,
            tenant,
            op,
            run: ActionRun::new(),
            arrival: now,
            deadline,
            granted: 0,
            first_admit: None,
            waiting: Waiting::Nothing,
            r_place: PlacedFile::new(r_meta.file, self.layout.meta(r_meta.file)),
            s_place: s_meta.map(|m| PlacedFile::new(m.file, self.layout.meta(m.file))),
            temps: Vec::new(),
            operand_ios: operand_ios.max(1),
            deadline_handle: None,
        };
        let slot = self.live.insert(query);
        if self.use_dirty {
            self.group_insert(slot);
        }
        if self.cfg.firm_deadlines {
            let handle = self.cal.schedule(deadline, Event::Deadline { query: id });
            self.live.slot_mut(slot).deadline_handle = Some(handle);
        }
        self.tracer.emit(
            now,
            TraceEvent::Arrival {
                query: id.0,
                class: class as u32,
            },
        );
        if let Some(m) = &mut self.obs_metrics {
            m.reg.inc(m.arrivals, 1);
        }
        self.reallocate(now);
    }

    /// Stand-alone execution time for deadline assignment, cached per
    /// operand pair (the database has finitely many relations, so this
    /// cache converges quickly).
    fn standalone_of(
        &mut self,
        qt: &QueryType,
        r: RelationMeta,
        s: Option<RelationMeta>,
    ) -> Duration {
        let key = (r.file, s.map(|m| m.file));
        if let Some(&d) = self.standalone_cache.get(&key) {
            return d;
        }
        let exec_cfg = self.cfg.resources.exec;
        let mut op: Box<dyn Operator> = match qt {
            QueryType::HashJoin { .. } => {
                let s = s.expect("join has an outer relation");
                Box::new(HashJoin::new(exec_cfg, r.file, r.pages, s.file, s.pages))
            }
            QueryType::ExternalSort { .. } => {
                Box::new(ExternalSort::new(exec_cfg, r.file, r.pages))
            }
        };
        op.set_allocation(op.max_memory());
        let layout = &self.layout;
        let geometry = self.cfg.resources.geometry;
        let mut placement = |file: FileRef| match file {
            FileRef::Base(f) => {
                let meta = layout.meta(f);
                (meta.disk, meta.start_cylinder)
            }
            // Max-memory execution performs no temp I/O; this arm only
            // matters for hypothetical constrained estimates.
            FileRef::Temp(_) => (r.disk, geometry.num_cylinders / 6),
        };
        // Priced on the configured device: a faster device shrinks both
        // execution times and the deadlines derived from them, keeping the
        // paper's slack *ratios*.
        let d = exec::standalone_time_on(
            op.as_mut(),
            &self.cfg.resources.device,
            &geometry,
            &mut placement,
            self.cfg.resources.cpu_mips,
        );
        self.standalone_cache.insert(key, d);
        d
    }

    // ----- Buffer manager / policy glue ----------------------------------

    /// Recompute allocations through the policy and apply the differences.
    /// Allocation-free in steady state: every buffer involved — the
    /// snapshot's demand vec, the policy's sort scratch, the grant list,
    /// the dense slot-keyed grant map, and the diff list — is reused.
    fn reallocate(&mut self, now: SimTime) {
        if self.reallocating {
            self.realloc_pending = true;
            return;
        }
        self.reallocating = true;
        let t0 = self.profiler.begin();
        loop {
            self.realloc_pending = false;
            if let Some(m) = &mut self.obs_metrics {
                m.reg.inc(m.reallocations, 1);
            }
            if self.use_dirty {
                // Incremental path: the policy sees only the partitions
                // whose demand (or strategy) changed and re-emits grants for
                // those; everything else carries over bit-for-bit, so the
                // diff list is proportional to churn, not population.
                self.policy.allocate_dirty_into(
                    self.effective_memory,
                    &self.demand_groups,
                    &mut self.dirty,
                    &mut self.policy_grants,
                );
                // Clear *before* applying: departures triggered by a grant
                // change (a completion cascading into `kill_query`) must
                // re-mark their partitions for the pending re-run.
                self.dirty.clear();
                self.diffs.clear();
                for &(id, new) in &self.policy_grants {
                    let slot = self.live.slot_of(id).expect("granted query is live");
                    let old = self.live.slot_ref(slot).granted;
                    if new != old {
                        self.diffs.push((id, old, new));
                    }
                }
                self.diffs
                    .sort_unstable_by_key(|&(id, old, new)| (new > old, new, id));
                for i in 0..self.diffs.len() {
                    let (id, _, new) = self.diffs[i];
                    self.apply_grant(now, id, new);
                }
                self.update_mpl(now);
                if !self.realloc_pending {
                    break;
                }
                continue;
            }
            self.snapshot.now = now;
            // The policy budgets against the *effective* memory: an active
            // memory shock shrinks the ceiling without touching the config.
            self.snapshot.total_memory = self.effective_memory;
            self.snapshot.queries.clear();
            // The incrementally-maintained ED order stands in for the
            // policies' per-event re-sort: the snapshot arrives pre-sorted
            // by their exact `(deadline, id)` key, so `ed_order` inside the
            // allocators verifies instead of sorting. (The allocators still
            // sort arbitrary input — standalone policy users are
            // unaffected.)
            for &(_, _, slot) in self.live.ed_order() {
                self.snapshot
                    .queries
                    .push(self.live.slot_ref(slot).demand());
            }
            self.policy.allocate_into(
                &self.snapshot,
                &mut self.alloc_scratch,
                &mut self.policy_grants,
            );
            // Dense grant map keyed by slab slot (absent = 0 pages).
            self.grant_by_slot.clear();
            self.grant_by_slot.resize(self.live.slot_capacity(), 0);
            for &(id, pages) in &self.policy_grants {
                let slot = self.live.slot_of(id).expect("granted query is live");
                self.grant_by_slot[slot as usize] = pages;
            }
            // Apply shrinking grants before growing ones so the growth is
            // backed by freed pages. The id tie-break reproduces the seed
            // behavior exactly: a stable sort over id-ordered input.
            self.diffs.clear();
            for (slot, q) in self.live.iter_with_slots() {
                let new = self.grant_by_slot[slot as usize];
                if new != q.granted {
                    self.diffs.push((q.id, q.granted, new));
                }
            }
            self.diffs
                .sort_unstable_by_key(|&(id, old, new)| (new > old, new, id));
            for i in 0..self.diffs.len() {
                let (id, _, new) = self.diffs[i];
                self.apply_grant(now, id, new);
            }
            self.update_mpl(now);
            if !self.realloc_pending {
                break;
            }
        }
        self.profiler.end(Section::Reallocate, t0);
        self.reallocating = false;
    }

    fn apply_grant(&mut self, now: SimTime, id: QueryId, new: u32) {
        let Some(q) = self.live.get_mut(id) else {
            return;
        };
        // A mid-run allocation change abandons the rest of the planned run:
        // roll the operator back to the consumption point first so the
        // change observes exactly the single-step-protocol state.
        if q.run.has_pending() {
            q.op.sync_run(&q.run);
            q.run.clear();
        }
        q.op.set_allocation(new);
        let old = q.granted;
        q.granted = new;
        // Holder/page counters ride the diff (see `update_mpl`): exact
        // integer deltas, so the readings match the seed's full scan
        // bit-for-bit.
        if !self.tenants.is_empty() {
            let last = self.tenants.len() - 1;
            let t = &mut self.tenants[(q.tenant as usize).min(last)];
            t.cur_pages = t.cur_pages + u64::from(new) - u64::from(old);
            if old == 0 && new > 0 {
                t.cur_holders += 1;
            } else if old > 0 && new == 0 {
                t.cur_holders -= 1;
            }
        }
        if old == 0 && new > 0 {
            self.holders += 1;
        } else if old > 0 && new == 0 {
            self.holders -= 1;
        }
        let mut admitted_wait = None;
        if new > 0 && q.first_admit.is_none() {
            q.first_admit = Some(now);
            admitted_wait = Some(now.since(q.arrival));
        }
        let should_drive =
            q.waiting == Waiting::Nothing && (new > 0 || q.first_admit.is_some());
        if !self.tracer.is_off() {
            self.tracer.emit(
                now,
                TraceEvent::GrantChanged {
                    query: id.0,
                    pages: new,
                },
            );
            if let Some(wait) = admitted_wait {
                self.tracer
                    .emit(now, TraceEvent::Admitted { query: id.0, wait });
            }
        }
        if should_drive {
            self.drive(now, id);
        }
    }

    /// Bucket a fresh arrival's demand into its partition's group and mark
    /// the partition dirty (incremental allocation path only).
    fn group_insert(&mut self, slot: u32) {
        let d = self.live.slot_ref(slot).demand();
        let g = (d.tenant as usize).min(self.demand_groups.len() - 1);
        if self.group_pos.len() <= slot as usize {
            self.group_pos.resize(slot as usize + 1, 0);
        }
        self.group_pos[slot as usize] = self.demand_groups[g].len() as u32;
        self.demand_groups[g].push(d);
        self.dirty.mark(g);
    }

    /// Bookkeeping when a query leaves the live table (completion or kill):
    /// release its holder/page counts and — on the incremental allocation
    /// path — swap its demand out of the partition bucket, marking the
    /// partition dirty for the next allocation event.
    fn on_departed(&mut self, slot: u32, q: &LiveQuery) {
        if q.granted > 0 {
            self.holders -= 1;
            if !self.tenants.is_empty() {
                let last = self.tenants.len() - 1;
                let t = &mut self.tenants[(q.tenant as usize).min(last)];
                t.cur_pages -= u64::from(q.granted);
                t.cur_holders -= 1;
            }
        }
        if self.use_dirty {
            let g = (q.tenant as usize).min(self.demand_groups.len() - 1);
            let pos = self.group_pos[slot as usize] as usize;
            self.demand_groups[g].swap_remove(pos);
            if let Some(moved) = self.demand_groups[g].get(pos) {
                let ms = self.live.slot_of(moved.id).expect("moved demand is live");
                self.group_pos[ms as usize] = pos as u32;
            }
            self.dirty.mark(g);
        }
    }

    fn update_mpl(&mut self, now: SimTime) {
        // The holder/page counters are maintained incrementally on every
        // grant diff and departure (`apply_grant`, `retire_counters`), so
        // this costs O(tenants) instead of the seed's scan over every live
        // query; multi-tenant runs fold the per-tenant usage readings
        // (MPL, pages in use, pages borrowed beyond quota) out of the same
        // counters — every holder bills a tenant (out-of-range indices
        // clamp), so the global MPL is the sum of the per-tenant counts.
        // All-integer deltas keep the readings bit-identical to the scan.
        let holders = if self.tenants.is_empty() {
            f64::from(self.holders)
        } else {
            let mut holders = 0u32;
            for (ti, t) in self.tenants.iter_mut().enumerate() {
                holders += t.cur_holders;
                t.mpl.set(now, f64::from(t.cur_holders));
                if self.tenant_feedback {
                    t.b_mpl.set(now, f64::from(t.cur_holders));
                }
                t.used.set(now, t.cur_pages as f64);
                t.borrowed
                    .set(now, (t.cur_pages as f64 - f64::from(t.quota)).max(0.0));
                if let Some(m) = &mut self.obs_metrics {
                    if let Some(id) = m.tenant_mpl {
                        m.reg.set_gauge_cell(id, ti, f64::from(t.cur_holders));
                    }
                }
            }
            f64::from(holders)
        };
        self.mpl_run.set(now, holders);
        self.mpl_batch.set(now, holders);
        if let Some(m) = &mut self.obs_metrics {
            m.reg.set_gauge(m.mpl, holders);
        }
    }

    // ----- Query manager --------------------------------------------------

    /// Advance a query until it blocks on a resource, parks, or finishes —
    /// by draining its operator's planned [`ActionRun`]. The operator state
    /// machine is re-entered only at run boundaries (`plan_run` refills the
    /// buffer, `RUN_BATCH` actions at a time); per-completion stepping is a
    /// buffer pop plus the dispatch below. A reallocation landing mid-run
    /// abandons the rest of the buffer (`apply_grant` syncs the operator
    /// back to the consumption point first), so the action stream is
    /// identical to single-stepping — `tests/golden_report.rs` pins that
    /// end to end.
    fn drive(&mut self, now: SimTime, id: QueryId) {
        let Some(slot) = self.live.slot_of(id) else {
            return;
        };
        let fastforward = self.cfg.fastforward;
        for _ in 0..10_000_000u64 {
            let q = self.live.slot_mut(slot);
            let action = if fastforward {
                match q.run.pop() {
                    Some(a) => a,
                    None => {
                        let LiveQuery { op, run, .. } = q;
                        op.plan_run(run);
                        run.pop().expect("planned run is never empty")
                    }
                }
            } else {
                // Per-event reference path: one state-machine step per
                // action, no run buffer (so `apply_grant` never needs a
                // sync). The differential harness drives both paths and
                // asserts bit-identical traces.
                q.op.step()
            };
            match action {
                Action::Cpu(instr) => {
                    q.waiting = Waiting::Cpu;
                    let deadline = q.deadline;
                    self.tracer.emit(
                        now,
                        TraceEvent::CpuBurst {
                            query: id.0,
                            instructions: instr,
                        },
                    );
                    if let Some(m) = &mut self.obs_metrics {
                        m.reg.inc(m.cpu_bursts, 1);
                    }
                    self.cpu.submit(now, id, deadline, instr, &mut self.cal);
                    return;
                }
                Action::Io(req) => {
                    q.waiting = Waiting::Disk;
                    let deadline = q.deadline;
                    let place = *q.resolve(req.file);
                    let cylinder = self.cfg.resources.geometry.cylinder_of(
                        place.start_cylinder,
                        req.first_page % place.pages.max(1),
                    );
                    let access = Access {
                        owner: id.0,
                        file: place.file,
                        first_page: req.first_page,
                        pages: req.pages,
                        kind: req.kind,
                        prefetch: req.prefetch,
                        cylinder,
                    };
                    let d = place.disk as usize;
                    self.disks.disk_mut(d).enqueue(deadline, access);
                    self.pump_disk(now, d);
                    return;
                }
                Action::CreateTemp { slot: temp, pages } => {
                    let file = self.layout.create_temp(pages);
                    let place = PlacedFile::new(file, self.layout.meta(file));
                    let temps = &mut self.live.slot_mut(slot).temps;
                    match temps.iter_mut().find(|(s, _)| *s == temp) {
                        Some(entry) => entry.1 = place,
                        None => temps.push((temp, place)),
                    }
                }
                Action::DropTemp { slot: temp } => {
                    let temps = &mut self.live.slot_mut(slot).temps;
                    if let Some(at) = temps.iter().position(|(s, _)| *s == temp) {
                        let (_, place) = temps.swap_remove(at);
                        self.disks
                            .disk_mut(place.disk as usize)
                            .invalidate(place.file);
                        self.layout.drop_temp(place.file);
                    }
                }
                Action::Parked => {
                    q.waiting = Waiting::Nothing;
                    q.run.clear();
                    return;
                }
                Action::Finished => {
                    let q = self.live.remove(id).expect("finished query is live");
                    self.on_departed(slot, &q);
                    self.complete(now, q);
                    return;
                }
            }
        }
        panic!("query {id:?} did not block or finish — runaway operator");
    }

    fn on_cpu_done(&mut self, now: SimTime, query: QueryId) {
        self.cpu.on_done(now, query, &mut self.cal);
        if let Some(q) = self.live.get_mut(query) {
            debug_assert_eq!(q.waiting, Waiting::Cpu);
            q.waiting = Waiting::Nothing;
            self.drive(now, query);
        }
    }

    fn on_disk_done(&mut self, now: SimTime, disk: usize) {
        self.disks.disk_mut(disk).finish(now);
        self.disk_util_run[disk].end_busy(now);
        self.disk_util_batch[disk].end_busy(now);
        let owner = self.disk_inflight[disk].take();
        self.pump_disk(now, disk);
        if let Some(id) = owner {
            if let Some(q) = self.live.get_mut(id) {
                q.waiting = Waiting::Nothing;
                self.drive(now, id);
            }
        }
    }

    fn pump_disk(&mut self, now: SimTime, disk: usize) {
        // A loop rather than a single start: exhausted retries resolve their
        // owner (abort or requeue) and then the *next* queued access gets
        // its chance immediately — the disk must not sit idle behind a dead
        // request.
        loop {
            let t0 = self.profiler.begin();
            let started = self.disks.disk_mut(disk).start(now);
            self.profiler.end(Section::DiskStart, t0);
            let Some((access, service)) = started else {
                return;
            };
            match service {
                Service::Faulted { attempt, backoff } => {
                    // Outage: the device holds the request and retries after
                    // a capped exponential backoff priced in sim time. The
                    // disk blocks (no new starts) but accrues no busy time.
                    self.tracer.emit(
                        now,
                        TraceEvent::IoRetry {
                            query: access.owner,
                            disk: disk as u32,
                            attempt,
                            backoff,
                        },
                    );
                    if let Some(m) = &mut self.obs_metrics {
                        m.reg.inc(m.faults_io_retries, 1);
                    }
                    self.cal.schedule(now + backoff, Event::IoRetry { disk });
                    return;
                }
                Service::FaultExhausted => {
                    // Retry budget spent: the I/O surfaces as a hard error
                    // and the owner's class degradation policy decides.
                    let owner = QueryId(access.owner);
                    let Some(q) = self.live.get_mut(owner) else {
                        continue; // owner already departed; drop the access
                    };
                    let class = q.class;
                    let deadline = q.deadline;
                    match self.cfg.faults.mode_of(class) {
                        DegradationMode::Abort => {
                            self.emit_degraded(
                                now,
                                owner,
                                class,
                                DegradedAction::Aborted,
                            );
                            if let Some(m) = &mut self.obs_metrics {
                                m.reg.inc(m.faults_aborts, 1);
                            }
                            self.kill_query(now, owner);
                        }
                        DegradationMode::Requeue => {
                            self.emit_degraded(
                                now,
                                owner,
                                class,
                                DegradedAction::Requeued,
                            );
                            if let Some(m) = &mut self.obs_metrics {
                                m.reg.inc(m.faults_requeues, 1);
                            }
                            self.disks.disk_mut(disk).enqueue(deadline, access);
                        }
                    }
                    continue;
                }
                Service::CacheHit | Service::Media { .. } => {}
            }
            self.disk_inflight[disk] = Some(QueryId(access.owner));
            if !self.tracer.is_off() || self.obs_metrics.is_some() {
                let (cache_hit, svc) = match service {
                    Service::CacheHit => (true, Duration::ZERO),
                    Service::Media { time, .. } => (false, time),
                    _ => unreachable!("fault services handled above"),
                };
                self.tracer.emit(
                    now,
                    TraceEvent::Io {
                        query: access.owner,
                        disk: disk as u32,
                        pages: access.pages,
                        write: access.kind == IoKind::Write,
                        cache_hit,
                        service: svc,
                    },
                );
                if let Some(m) = &mut self.obs_metrics {
                    m.reg.inc(m.io_requests, 1);
                    if cache_hit {
                        m.reg.inc(m.cache_hits, 1);
                    }
                }
            }
            match service {
                Service::CacheHit => {
                    // Satisfied from the prefetch cache: completes now.
                    self.cal.schedule(now, Event::DiskDone { disk });
                }
                Service::Media { time, .. } => {
                    self.disk_util_run[disk].begin_busy(now);
                    self.disk_util_batch[disk].begin_busy(now);
                    self.cal.schedule(now + time, Event::DiskDone { disk });
                }
                _ => unreachable!("fault services handled above"),
            }
            return;
        }
    }

    fn on_deadline(&mut self, now: SimTime, query: QueryId) {
        // This deadline event is the one firing — forget its handle so the
        // shared kill path does not cancel an already-popped event.
        if let Some(q) = self.live.get_mut(query) {
            q.deadline_handle = None;
        }
        self.kill_query(now, query);
    }

    /// Abort one live query and reclaim everything it holds. Shared between
    /// the firm-deadline path and fault degradation (exhausted I/O retries,
    /// memory-shock victims under the abort mode); either way the query
    /// departs counted as missed.
    fn kill_query(&mut self, now: SimTime, query: QueryId) {
        let Some(slot) = self.live.slot_of(query) else {
            return; // completed (or already killed) first
        };
        let q = self.live.remove(query).expect("slot implies a live query");
        self.on_departed(slot, &q);
        if let Some(handle) = q.deadline_handle {
            self.cal.cancel(handle);
        }
        self.cpu.cancel(now, query, &mut self.cal);
        for d in 0..self.disks.len() {
            self.disks.disk_mut(d).cancel_queued(|a| a.owner == query.0);
        }
        // In-flight disk access (if any) completes harmlessly: its owner is
        // gone and `on_disk_done` routes nowhere.
        for &(_, place) in q.temps.iter() {
            self.disks
                .disk_mut(place.disk as usize)
                .invalidate(place.file);
            self.layout.drop_temp(place.file);
        }
        self.record_served(now, &q, true);
        self.reallocate(now);
    }

    // ----- Fault plan ----------------------------------------------------

    fn on_fault(&mut self, now: SimTime, index: usize) {
        let transition = self.fault_events[index].1;
        if let Some(m) = &mut self.obs_metrics {
            m.reg.inc(m.faults_injected, 1);
        }
        match transition {
            FaultTransition::Degrade { disk, factor } => {
                self.disks.disk_mut(disk as usize).set_degrade(factor);
                self.emit_fault(now, FaultClass::DiskDegrade, Some(disk), true, factor);
            }
            FaultTransition::DegradeEnd { disk } => {
                self.disks.disk_mut(disk as usize).set_degrade(1.0);
                self.emit_fault(now, FaultClass::DiskDegrade, Some(disk), false, 1.0);
            }
            FaultTransition::Outage { disk } => {
                self.disks.disk_mut(disk as usize).set_outage(true);
                self.emit_fault(now, FaultClass::DiskOutage, Some(disk), true, 0.0);
            }
            FaultTransition::OutageEnd { disk } => {
                self.disks.disk_mut(disk as usize).set_outage(false);
                self.emit_fault(now, FaultClass::DiskOutage, Some(disk), false, 0.0);
                // Defensive restart; normally a pending backoff drains the
                // queue when its retry event fires.
                self.pump_disk(now, disk as usize);
            }
            FaultTransition::Shock { fraction } => {
                let total = self.cfg.resources.memory_pages;
                self.effective_memory =
                    ((f64::from(total) * fraction).floor() as u32).max(1);
                self.shock_active = true;
                self.taint_batches();
                self.emit_fault(now, FaultClass::MemoryShock, None, true, fraction);
                self.reallocate(now);
                self.shock_victims(now);
            }
            FaultTransition::ShockEnd => {
                self.effective_memory = self.cfg.resources.memory_pages;
                self.shock_active = false;
                self.taint_batches();
                self.emit_fault(now, FaultClass::MemoryShock, None, false, 1.0);
                self.reallocate(now);
            }
        }
    }

    fn on_io_retry(&mut self, now: SimTime, disk: usize) {
        // The backoff elapsed: unblock the device and try again (the held
        // access goes first; a deadline abort may have dropped it, in which
        // case the queue head is next).
        self.disks.disk_mut(disk).retry_elapsed(now);
        self.pump_disk(now, disk);
    }

    /// Deadline-aware degradation after a shock shrank memory: queries that
    /// had been admitted but lost their whole grant are victims. The abort
    /// mode kills them (counted missed, resources reclaimed) so survivors
    /// keep their deadlines; the requeue mode suspends them in place to
    /// resume when memory returns.
    fn shock_victims(&mut self, now: SimTime) {
        let mut victims: Vec<(QueryId, usize)> = self
            .live
            .iter_with_slots()
            .filter(|(_, q)| q.first_admit.is_some() && q.granted == 0)
            .map(|(_, q)| (q.id, q.class))
            .collect();
        victims.sort_unstable_by_key(|&(id, _)| id);
        for (id, class) in victims {
            if let Some(m) = &mut self.obs_metrics {
                m.reg.inc(m.faults_shock_victims, 1);
            }
            match self.cfg.faults.mode_of(class) {
                DegradationMode::Abort => {
                    self.emit_degraded(now, id, class, DegradedAction::Aborted);
                    if let Some(m) = &mut self.obs_metrics {
                        m.reg.inc(m.faults_aborts, 1);
                    }
                    self.kill_query(now, id);
                }
                DegradationMode::Requeue => {
                    self.emit_degraded(now, id, class, DegradedAction::Suspended);
                }
            }
        }
    }

    /// Mark every open feedback window as overlapping a shock. Called on
    /// both shock edges: a window straddling either edge mixes regimes and
    /// must not reach the policy.
    fn taint_batches(&mut self) {
        self.batch_tainted = true;
        for t in &mut self.tenants {
            t.b_tainted = true;
        }
    }

    fn emit_fault(
        &mut self,
        now: SimTime,
        fault: FaultClass,
        disk: Option<u32>,
        active: bool,
        factor: f64,
    ) {
        self.tracer.emit(
            now,
            TraceEvent::FaultInjected {
                fault,
                disk,
                active,
                factor,
            },
        );
    }

    fn emit_degraded(
        &mut self,
        now: SimTime,
        id: QueryId,
        class: usize,
        action: DegradedAction,
    ) {
        self.tracer.emit(
            now,
            TraceEvent::Degraded {
                query: id.0,
                class: class as u32,
                action,
            },
        );
    }

    fn complete(&mut self, now: SimTime, q: LiveQuery) {
        // The deadline abort is moot now; drop it from the calendar instead
        // of letting it fire as a dead event.
        if let Some(handle) = q.deadline_handle {
            self.cal.cancel(handle);
        }
        // Operators drop their temps themselves; clean any leftovers.
        for &(_, place) in q.temps.iter() {
            self.disks
                .disk_mut(place.disk as usize)
                .invalidate(place.file);
            self.layout.drop_temp(place.file);
        }
        let missed_soft = !self.cfg.firm_deadlines && now > q.deadline;
        self.record_served(now, &q, missed_soft);
        self.reallocate(now);
    }

    /// Common bookkeeping when a query leaves the system (completion or
    /// firm miss).
    fn record_served(&mut self, now: SimTime, q: &LiveQuery, missed: bool) {
        self.tracer.emit(
            now,
            TraceEvent::Completed {
                query: q.id.0,
                class: q.class as u32,
                missed,
            },
        );
        if let Some(m) = &mut self.obs_metrics {
            m.reg.inc(m.served, 1);
            if missed {
                m.reg.inc(m.missed, 1);
            }
            m.reg
                .observe(m.response, now.since(q.arrival).as_secs_f64());
        }
        self.served += 1;
        self.window_served += 1;
        self.batch_served += 1;
        self.class_outcomes[q.class].served += 1;
        if missed {
            self.missed += 1;
            self.window_missed += 1;
            self.batch_missed += 1;
            self.class_outcomes[q.class].missed += 1;
        }
        self.miss_series.record(if missed { 1.0 } else { 0.0 });

        let wait = q
            .first_admit
            .map_or(now.since(q.arrival), |t| t.since(q.arrival))
            .as_secs_f64();
        self.batch_wait.record(wait);
        let constraint = q.deadline.since(q.arrival).as_secs_f64();
        if let Some(admit) = q.first_admit {
            let exec = now.since(admit).as_secs_f64();
            if !missed {
                // Table 7 reports completed queries.
                self.timings.waiting.record(wait);
                self.timings.execution.record(exec);
                self.timings.response.record(wait + exec);
                // Condition-4 evidence only from completed queries: aborted
                // executions are truncated and would bias the surplus.
                self.batch_slack.record(constraint - exec);
            }
        }
        self.timings.fluctuations.record(q.op.fluctuations() as f64);
        self.batch_char_mem.record(q.op.max_memory() as f64);
        self.batch_char_ios.record(q.operand_ios as f64);
        self.batch_char_norm
            .record(constraint / q.operand_ios as f64);

        // Per-tenant bookkeeping, mirroring the global accumulators.
        let tenant_batch_full = if self.tenants.is_empty() {
            false
        } else {
            let ti = (q.tenant as usize).min(self.tenants.len() - 1);
            if let Some(m) = &mut self.obs_metrics {
                if let Some(id) = m.tenant_served {
                    m.reg.inc_cell(id, ti, 1);
                }
                if missed {
                    if let Some(id) = m.tenant_missed {
                        m.reg.inc_cell(id, ti, 1);
                    }
                }
            }
            let t = &mut self.tenants[ti];
            t.served += 1;
            if missed {
                t.missed += 1;
            }
            if self.tenant_feedback {
                t.b_served += 1;
                if missed {
                    t.b_missed += 1;
                }
                t.b_wait.record(wait);
                if let Some(admit) = q.first_admit {
                    if !missed {
                        t.b_slack
                            .record(constraint - now.since(admit).as_secs_f64());
                    }
                }
                t.b_char_mem.record(q.op.max_memory() as f64);
                t.b_char_ios.record(q.operand_ios as f64);
                t.b_char_norm.record(constraint / q.operand_ios as f64);
            }
            self.tenant_feedback && t.b_served >= u64::from(self.cfg.sample_size)
        };

        self.roll_windows(now);
        // Tenant batches close BEFORE the global batch: `finish_batch`
        // resets the shared CPU/disk utilization windows, and when both
        // windows fill on the same departure (certain whenever one tenant
        // carries all the traffic) the tenant's stats must read the
        // utilization accumulated over the sample — not a just-reset
        // zero-span window.
        if tenant_batch_full {
            let ti = (q.tenant as usize).min(self.tenants.len() - 1);
            self.finish_tenant_batch(now, ti);
        }
        if self.batch_served >= self.cfg.sample_size as u64 {
            self.finish_batch(now);
        }
    }

    fn roll_windows(&mut self, now: SimTime) {
        let window = Duration::from_secs_f64(self.cfg.window_secs);
        while now >= self.window_start + window {
            let t_secs = (self.window_start + window).as_secs_f64();
            self.windows.push(WindowPoint {
                t_secs,
                served: self.window_served,
                missed: self.window_missed,
            });
            // Metrics snapshots roll on exactly the fig12 boundaries.
            if let Some(m) = &mut self.obs_metrics {
                m.reg.roll(t_secs);
            }
            self.window_start += window;
            self.window_served = 0;
            self.window_missed = 0;
        }
    }

    fn finish_batch(&mut self, now: SimTime) {
        let to_summary =
            |t: &Tally| SampleSummary::new(t.mean(), t.variance(), t.count());
        let disk_util = self
            .disk_util_batch
            .iter()
            .map(|u| u.fraction(now))
            .sum::<f64>()
            / self.disk_util_batch.len() as f64;
        let stats = BatchStats {
            now,
            served: self.batch_served,
            missed: self.batch_missed,
            realized_mpl: self.mpl_batch.mean(now),
            cpu_util: self.cpu.util_batch.fraction(now),
            disk_util,
            wait_time: to_summary(&self.batch_wait),
            slack_surplus: to_summary(&self.batch_slack),
            char_max_mem: to_summary(&self.batch_char_mem),
            char_operand_ios: to_summary(&self.batch_char_ios),
            char_norm_constraint: to_summary(&self.batch_char_norm),
        };
        // A window that overlapped a memory shock is segmented out — closed
        // and reset without feeding the policy, exactly like the regime
        // detector segments its history — so shock-era samples never poison
        // the learned batches.
        if self.batch_tainted {
            if let Some(m) = &mut self.obs_metrics {
                m.reg.inc(m.faults_batches_segmented, 1);
            }
        } else {
            self.policy.on_batch(&stats);
            self.tracer.emit(
                now,
                TraceEvent::BatchClosed {
                    served: stats.served,
                    missed: stats.missed,
                },
            );
            self.emit_policy_decisions();
            if let Some(m) = &mut self.obs_metrics {
                m.reg.inc(m.batches, 1);
            }
        }
        // The next window starts tainted while a shock is still active.
        self.batch_tainted = self.shock_active;
        // Reset the batch windows.
        self.batch_served = 0;
        self.batch_missed = 0;
        self.mpl_batch.reset_window(now);
        self.cpu.util_batch.reset_window(now);
        for u in &mut self.disk_util_batch {
            u.reset_window(now);
        }
        self.batch_wait.reset();
        self.batch_slack.reset();
        self.batch_char_mem.reset();
        self.batch_char_ios.reset();
        self.batch_char_norm.reset();
        // The policy may have changed its mind — re-run allocation.
        self.reallocate(now);
    }

    /// Close one tenant's feedback batch: assemble its `BatchStats` (the
    /// shared CPU/disk readings come from the current global sample window
    /// — shared resources have no per-tenant utilization) and hand it to
    /// the policy's per-tenant controller.
    fn finish_tenant_batch(&mut self, now: SimTime, ti: usize) {
        let to_summary =
            |t: &Tally| SampleSummary::new(t.mean(), t.variance(), t.count());
        let disk_util = self
            .disk_util_batch
            .iter()
            .map(|u| u.fraction(now))
            .sum::<f64>()
            / self.disk_util_batch.len() as f64;
        let cpu_util = self.cpu.util_batch.fraction(now);
        let t = &mut self.tenants[ti];
        let stats = BatchStats {
            now,
            served: t.b_served,
            missed: t.b_missed,
            realized_mpl: t.b_mpl.mean(now),
            cpu_util,
            disk_util,
            wait_time: to_summary(&t.b_wait),
            slack_surplus: to_summary(&t.b_slack),
            char_max_mem: to_summary(&t.b_char_mem),
            char_operand_ios: to_summary(&t.b_char_ios),
            char_norm_constraint: to_summary(&t.b_char_norm),
        };
        let tainted = t.b_tainted;
        t.b_served = 0;
        t.b_missed = 0;
        t.b_mpl.reset_window(now);
        t.b_wait.reset();
        t.b_slack.reset();
        t.b_char_mem.reset();
        t.b_char_ios.reset();
        t.b_char_norm.reset();
        t.b_tainted = self.shock_active;
        if tainted {
            // Shock-era tenant windows are segmented out like the global
            // batch: reset but never fed to the per-tenant controller.
            if let Some(m) = &mut self.obs_metrics {
                m.reg.inc(m.faults_batches_segmented, 1);
            }
            return;
        }
        self.policy.on_tenant_batch(ti as u32, &stats);
        self.emit_policy_decisions();
        // The tenant's controller may have changed its strategy.
        self.reallocate(now);
    }

    /// Forward policy trace points recorded since the last check into the
    /// obs trace, each stamped with its own decision time (regime-aware
    /// policies may record segmentation points that predate the batch
    /// boundary that surfaced them).
    fn emit_policy_decisions(&mut self) {
        if !self.tracer.wants(TraceKind::PolicyDecision) {
            return;
        }
        let points = self.policy.trace();
        for p in &points[self.policy_trace_seen.min(points.len())..] {
            self.tracer.emit(
                p.at,
                TraceEvent::PolicyDecision {
                    mode: p.mode.into(),
                    target_mpl: p.target_mpl,
                },
            );
        }
        self.policy_trace_seen = points.len();
    }

    fn finish_report(mut self) -> RunReport {
        let now = self.end;
        self.roll_windows(now);
        if self.window_served > 0 {
            self.windows.push(WindowPoint {
                t_secs: now.as_secs_f64(),
                served: self.window_served,
                missed: self.window_missed,
            });
            if let Some(m) = &mut self.obs_metrics {
                m.reg.roll(now.as_secs_f64());
            }
        }
        // Catch policy decisions recorded since the last batch boundary,
        // then drain the sink once for both consumers: the structured
        // trace and the per-class arrival-gap sequences.
        self.emit_policy_decisions();
        let obs_records = self.tracer.take_records();
        let arrival_gaps = if self.cfg.record_arrivals {
            let mut gaps = vec![Vec::new(); self.cfg.classes.len()];
            for r in &obs_records {
                if let TraceEvent::ArrivalGap { class, gap_secs } = r.event {
                    gaps[class as usize].push(gap_secs);
                }
            }
            gaps
        } else {
            Vec::new()
        };
        // The structured trace is surfaced only when obs tracing was asked
        // for; a bare `record_arrivals` run keeps the report lean.
        let obs_trace = if self.cfg.obs.trace != TraceMode::Off {
            obs_records
        } else {
            Vec::new()
        };
        let metrics = self.obs_metrics.as_ref().map(|m| m.reg.report());
        let profile = self.profiler.report();
        let disk_util = self
            .disk_util_run
            .iter()
            .map(|u| u.fraction(now))
            .sum::<f64>()
            / self.disk_util_run.len().max(1) as f64;
        let tenant_outcomes: Vec<TenantOutcome> = self
            .tenants
            .iter_mut()
            .map(|t| TenantOutcome {
                name: t.name.clone(),
                quota_pages: t.quota,
                soft: t.soft,
                served: t.served,
                missed: t.missed,
                avg_mpl: t.mpl.mean(now),
                quota_utilization: if t.quota > 0 {
                    t.used.mean(now) / f64::from(t.quota)
                } else {
                    0.0
                },
                borrowed_pages: t.borrowed.mean(now),
            })
            .collect();
        RunReport {
            policy: self.policy.name(),
            served: self.served,
            missed: self.missed,
            classes: self.class_outcomes,
            tenants: tenant_outcomes,
            avg_mpl: self.mpl_run.mean(now),
            cpu_util: self.cpu.util_run.fraction(now),
            disk_util,
            timings: self.timings.summarize(),
            avg_fluctuations: self.timings.fluctuations.mean(),
            windows: self.windows,
            trace: self.policy.trace().to_vec(),
            miss_ci_half_width: self.miss_series.half_width(1.645),
            sim_secs: now.as_secs_f64(),
            events: self.cal.events_dispatched(),
            arrival_gaps,
            obs_trace,
            metrics,
            profile,
        }
    }
}

/// Convenience: build and run in one call.
pub fn run_simulation(cfg: SimConfig, policy: Box<dyn MemoryPolicy>) -> RunReport {
    Simulator::new(cfg, policy).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmm::{MaxPolicy, MinMaxPolicy, Pmm};

    /// A short, light-load baseline: enough queries to exercise every code
    /// path but quick enough for unit tests.
    fn quick_cfg(rate: f64, secs: f64) -> SimConfig {
        let mut cfg = SimConfig::baseline(rate);
        cfg.duration_secs = secs;
        cfg.window_secs = secs / 4.0;
        cfg
    }

    #[test]
    fn light_load_completes_queries_with_low_misses() {
        let report = run_simulation(
            quick_cfg(0.02, 3_000.0),
            Box::new(MinMaxPolicy::unlimited()),
        );
        assert!(report.served >= 30, "served {}", report.served);
        assert!(
            report.miss_pct() < 15.0,
            "light load should rarely miss: {}%",
            report.miss_pct()
        );
        assert!(report.timings.execution > 0.0);
        assert!(report.cpu_util > 0.0 && report.cpu_util < 1.0);
        assert!(report.disk_util > 0.0 && report.disk_util < 1.0);
    }

    #[test]
    fn max_policy_realizes_tiny_mpl() {
        let report = run_simulation(quick_cfg(0.05, 3_000.0), Box::new(MaxPolicy));
        assert!(
            report.avg_mpl < 2.5,
            "Max admits at most ~2 baseline queries, got MPL {}",
            report.avg_mpl
        );
    }

    #[test]
    fn minmax_mpl_exceeds_max_under_load() {
        let max = run_simulation(quick_cfg(0.06, 3_000.0), Box::new(MaxPolicy));
        let minmax = run_simulation(
            quick_cfg(0.06, 3_000.0),
            Box::new(MinMaxPolicy::unlimited()),
        );
        assert!(
            minmax.avg_mpl > max.avg_mpl,
            "MinMax {} vs Max {}",
            minmax.avg_mpl,
            max.avg_mpl
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_simulation(
            quick_cfg(0.05, 2_000.0),
            Box::new(MinMaxPolicy::unlimited()),
        );
        let b = run_simulation(
            quick_cfg(0.05, 2_000.0),
            Box::new(MinMaxPolicy::unlimited()),
        );
        assert_eq!(a.served, b.served);
        assert_eq!(a.missed, b.missed);
        assert_eq!(a.avg_mpl, b.avg_mpl);
        assert_eq!(a.cpu_util, b.cpu_util);
    }

    #[test]
    fn different_seed_changes_the_run() {
        let a = run_simulation(
            quick_cfg(0.05, 2_000.0),
            Box::new(MinMaxPolicy::unlimited()),
        );
        let mut cfg = quick_cfg(0.05, 2_000.0);
        cfg.seed = 777;
        let b = run_simulation(cfg, Box::new(MinMaxPolicy::unlimited()));
        assert_ne!(
            (a.served, a.cpu_util),
            (b.served, b.cpu_util),
            "different seeds should differ"
        );
    }

    #[test]
    fn pmm_runs_and_traces() {
        let report =
            run_simulation(quick_cfg(0.06, 4_000.0), Box::new(Pmm::with_defaults()));
        assert_eq!(report.policy, "PMM");
        assert!(report.served > 50);
    }

    #[test]
    fn sorts_workload_runs() {
        let mut cfg = SimConfig::sorts(0.05);
        cfg.duration_secs = 2_000.0;
        let report = run_simulation(cfg, Box::new(MinMaxPolicy::unlimited()));
        assert!(report.served > 20, "served {}", report.served);
    }

    #[test]
    fn firm_aborts_bound_response_times() {
        // Overload: with firm deadlines every query leaves by its deadline,
        // so response ≤ constraint ≤ 7.5 × standalone.
        let report = run_simulation(quick_cfg(0.10, 2_000.0), Box::new(MaxPolicy));
        assert!(report.missed > 0, "overload must miss deadlines");
        assert!(report.served > 0);
    }

    #[test]
    fn soft_deadline_ablation_still_counts_misses() {
        let mut cfg = quick_cfg(0.08, 2_000.0);
        cfg.firm_deadlines = false;
        let report = run_simulation(cfg, Box::new(MaxPolicy));
        assert!(report.missed > 0, "late completions count as missed");
    }

    #[test]
    fn windows_cover_the_run() {
        let report = run_simulation(
            quick_cfg(0.05, 2_000.0),
            Box::new(MinMaxPolicy::unlimited()),
        );
        assert!(report.windows.len() >= 4);
        let total: u64 = report.windows.iter().map(|w| w.served).sum();
        assert_eq!(total, report.served);
    }

    #[test]
    fn poisson_workload_path_matches_seed_arrival_stream() {
        // The pre-`workload` engine drew `exponential(rate)` straight from
        // `substream("arrival", class)`. The config → ArrivalSpec →
        // ArrivalProcess path must reproduce that sequence bit-for-bit for
        // the same master seed, so the refactor cannot move a single event.
        let cfg = SimConfig::baseline(0.06);
        let seeds = SeedSequence::new(cfg.seed);
        let mut raw = seeds.substream("arrival", 0);
        let mut rng = seeds.substream("arrival", 0);
        let mut process = cfg.classes[0].arrival.build();
        let mut t_raw = SimTime::ZERO;
        let mut t_proc = SimTime::ZERO;
        for _ in 0..50_000 {
            t_raw += Duration::from_secs_f64(raw.exponential(0.06));
            t_proc += process.next_interarrival(&mut rng).expect("live");
            assert_eq!(t_proc, t_raw, "arrival instants must be identical");
        }
    }

    #[test]
    fn bursty_workload_runs_and_misses_more_than_poisson() {
        let mut smooth = SimConfig::bursty(1.0);
        smooth.duration_secs = 4_000.0;
        let mut burst = SimConfig::bursty(16.0);
        burst.duration_secs = 4_000.0;
        let a = run_simulation(smooth, Box::new(MinMaxPolicy::unlimited()));
        let b = run_simulation(burst, Box::new(MinMaxPolicy::unlimited()));
        assert!(a.served > 50 && b.served > 50);
        // Same mean rate, but the clustered arrivals overload transiently.
        assert!(
            b.miss_pct() >= a.miss_pct(),
            "bursty {}% vs poisson {}%",
            b.miss_pct(),
            a.miss_pct()
        );
    }

    #[test]
    fn multi_tenant_partitions_serve_both_tenants() {
        use pmm::{PartitionSpec, PartitionedPolicy};
        let mut cfg = SimConfig::multi_tenant(0.5);
        cfg.duration_secs = 3_000.0;
        let parts = cfg
            .tenants
            .iter()
            .map(|t| PartitionSpec {
                quota: t.quota_pages,
                soft: t.soft,
            })
            .collect();
        let report = run_simulation(cfg, Box::new(PartitionedPolicy::new(parts)));
        assert_eq!(report.policy, "Partitioned");
        assert_eq!(report.classes.len(), 2);
        assert!(
            report.classes.iter().all(|c| c.served > 10),
            "both tenants make progress: {:?}",
            report.classes
        );
    }

    #[test]
    fn multi_tenant_report_carries_quota_and_borrow_aggregates() {
        use pmm::{PartitionSpec, PartitionedPolicy};
        let mut cfg = SimConfig::multi_tenant(0.5);
        cfg.duration_secs = 3_000.0;
        let parts: Vec<PartitionSpec> = cfg
            .tenants
            .iter()
            .map(|t| PartitionSpec {
                quota: t.quota_pages,
                soft: t.soft,
            })
            .collect();
        let report = run_simulation(cfg.clone(), Box::new(PartitionedPolicy::new(parts)));
        assert_eq!(report.tenants.len(), 2);
        let total_served: u64 = report.tenants.iter().map(|t| t.served).sum();
        assert_eq!(total_served, report.served, "every query bills a tenant");
        for t in &report.tenants {
            assert!(t.quota_pages > 0);
            assert!(
                t.quota_utilization > 0.0 && t.quota_utilization <= 1.0,
                "hard quota utilization in (0,1]: {}",
                t.quota_utilization
            );
            assert_eq!(
                t.borrowed_pages, 0.0,
                "hard quotas never borrow: {}",
                t.borrowed_pages
            );
            assert!(t.avg_mpl > 0.0);
        }
        // Single-tenant runs keep the vector empty.
        let single = run_simulation(quick_cfg(0.05, 1_000.0), Box::new(MaxPolicy));
        assert!(single.tenants.is_empty());
    }

    #[test]
    fn tenant_pmm_adapts_per_partition() {
        use pmm::{PartitionSpec, TenantPmm};
        let mut cfg = SimConfig::multi_tenant(0.5);
        cfg.duration_secs = 6_000.0;
        let parts: Vec<PartitionSpec> = cfg
            .tenants
            .iter()
            .map(|t| PartitionSpec {
                quota: t.quota_pages,
                soft: t.soft,
            })
            .collect();
        let report = run_simulation(cfg, Box::new(TenantPmm::new(parts)));
        assert_eq!(report.policy, "PMM-tenant");
        assert_eq!(report.tenants.len(), 2);
        assert!(
            report.tenants.iter().all(|t| t.served > 10),
            "both tenants make progress under per-tenant PMM: {:?}",
            report.tenants
        );
        // The memory-bound analytics partition must have produced at least
        // one per-tenant controller decision (switch or projection).
        assert!(
            !report.trace.is_empty(),
            "per-tenant feedback reached the controllers"
        );
    }

    #[test]
    fn tenant_batch_closes_before_the_global_window_resets() {
        use pmm::{StrategyMode, TracePoint};
        use std::cell::RefCell;
        use std::rc::Rc;

        // Records the utilization readings each per-tenant batch carries.
        struct UtilProbe {
            inner: MinMaxPolicy,
            disk_utils: Rc<RefCell<Vec<f64>>>,
        }
        impl MemoryPolicy for UtilProbe {
            fn name(&self) -> String {
                "UtilProbe".into()
            }
            fn allocate_into(
                &mut self,
                snapshot: &pmm::SystemSnapshot,
                scratch: &mut pmm::AllocScratch,
                out: &mut pmm::Grants,
            ) {
                self.inner.allocate_into(snapshot, scratch, out);
            }
            fn wants_tenant_feedback(&self) -> bool {
                true
            }
            fn on_tenant_batch(&mut self, _tenant: u32, stats: &BatchStats) {
                self.disk_utils.borrow_mut().push(stats.disk_util);
            }
            fn mode(&self) -> StrategyMode {
                StrategyMode::MinMax
            }
            fn trace(&self) -> &[TracePoint] {
                &[]
            }
        }

        // All traffic on tenant 0: its batch window fills in lockstep with
        // the global one, so every tenant batch closes on the same
        // departure as a global batch — the worst case for the shared
        // utilization windows.
        let mut cfg = SimConfig::multi_tenant(0.5);
        cfg.classes[1].arrival = workload::ArrivalSpec::poisson(0.0);
        cfg.duration_secs = 6_000.0;
        let readings = Rc::new(RefCell::new(Vec::new()));
        let probe = UtilProbe {
            inner: MinMaxPolicy::unlimited(),
            disk_utils: Rc::clone(&readings),
        };
        run_simulation(cfg, Box::new(probe));
        let readings = readings.borrow();
        assert!(readings.len() >= 3, "several tenant batches: {readings:?}");
        assert!(
            readings.iter().all(|&u| u > 0.0),
            "tenant batches must carry the sample's utilization, not a \
             just-reset window: {readings:?}"
        );
    }

    #[test]
    fn recorded_arrivals_replay_bit_for_bit() {
        let mut cfg = quick_cfg(0.05, 2_000.0);
        cfg.record_arrivals = true;
        let recorded = run_simulation(cfg.clone(), Box::new(MinMaxPolicy::unlimited()));
        assert_eq!(recorded.arrival_gaps.len(), 1, "one class recorded");
        let gaps = recorded.arrival_gaps[0].clone();
        assert!(!gaps.is_empty());
        // Recording must not change the simulation itself.
        let mut plain = cfg.clone();
        plain.record_arrivals = false;
        let baseline = run_simulation(plain, Box::new(MinMaxPolicy::unlimited()));
        assert_eq!(baseline.served, recorded.served);
        assert_eq!(baseline.avg_mpl, recorded.avg_mpl);
        assert!(baseline.arrival_gaps.is_empty());
        // Replaying the recorded gaps as a trace reproduces the run.
        let mut replay_cfg = cfg;
        replay_cfg.record_arrivals = false;
        replay_cfg.classes[0].arrival = workload::ArrivalSpec::Trace {
            gaps,
            repeat: false,
        };
        let replay = run_simulation(replay_cfg, Box::new(MinMaxPolicy::unlimited()));
        assert_eq!(replay.served, recorded.served);
        assert_eq!(replay.missed, recorded.missed);
        assert_eq!(replay.avg_mpl, recorded.avg_mpl);
        assert_eq!(replay.cpu_util, recorded.cpu_util);
    }

    #[test]
    fn trace_arrivals_replay_exactly() {
        let mut cfg = SimConfig::baseline(0.05);
        cfg.classes[0].arrival = workload::ArrivalSpec::Trace {
            gaps: vec![100.0; 12],
            repeat: false,
        };
        cfg.duration_secs = 10_000.0;
        let report = run_simulation(cfg, Box::new(MinMaxPolicy::unlimited()));
        // 12 gaps of 100 s land at t = 100..=1200 — every one served, then
        // the class goes quiet for the rest of the run.
        assert_eq!(report.served, 12);
    }

    #[test]
    fn empty_fault_plan_leaves_the_run_untouched() {
        use crate::faults::FaultPlan;
        let base = run_simulation(
            quick_cfg(0.05, 2_000.0),
            Box::new(MinMaxPolicy::unlimited()),
        );
        let mut cfg = quick_cfg(0.05, 2_000.0);
        cfg.faults = FaultPlan::default();
        let dark = run_simulation(cfg, Box::new(MinMaxPolicy::unlimited()));
        assert_eq!(base.served, dark.served);
        assert_eq!(base.missed, dark.missed);
        assert_eq!(base.avg_mpl, dark.avg_mpl);
        assert_eq!(base.cpu_util, dark.cpu_util);
        assert_eq!(base.events, dark.events, "not one event moves");
    }

    #[test]
    fn fault_storm_is_deterministic_and_perturbs_the_run() {
        let mk = || {
            let mut cfg = SimConfig::faulty(1.0);
            cfg.duration_secs = 2_000.0;
            cfg
        };
        let a = run_simulation(mk(), Box::new(MinMaxPolicy::unlimited()));
        let b = run_simulation(mk(), Box::new(MinMaxPolicy::unlimited()));
        assert_eq!(a.served, b.served);
        assert_eq!(a.missed, b.missed);
        assert_eq!(a.avg_mpl, b.avg_mpl);
        assert_eq!(a.cpu_util, b.cpu_util);
        let mut clean_cfg = SimConfig::baseline(0.06);
        clean_cfg.duration_secs = 2_000.0;
        let clean = run_simulation(clean_cfg, Box::new(MinMaxPolicy::unlimited()));
        assert!(a.served > 0);
        assert_ne!(
            (a.missed, a.cpu_util),
            (clean.missed, clean.cpu_util),
            "the storm must perturb the run"
        );
    }

    #[test]
    fn fault_transitions_reach_the_trace() {
        let mut cfg = SimConfig::faulty(1.0);
        cfg.duration_secs = 400.0;
        cfg.obs.trace = TraceMode::Full;
        let report = run_simulation(cfg, Box::new(MinMaxPolicy::unlimited()));
        let faults = report
            .obs_trace
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::FaultInjected { .. }))
            .count();
        // Four scheduled faults, two window edges each.
        assert_eq!(faults, 8, "every transition traces exactly once");
    }

    #[test]
    fn outage_across_all_disks_forces_retries() {
        use crate::faults::{FaultPlan, FaultSpec};
        let mut cfg = quick_cfg(0.08, 800.0);
        cfg.obs.trace = TraceMode::Full;
        let mut plan = FaultPlan::default();
        for d in 0..cfg.resources.num_disks {
            plan.events.push(FaultSpec::DiskOutage {
                disk: d,
                start_secs: 100.0,
                end_secs: 200.0,
            });
        }
        cfg.faults = plan;
        let report = run_simulation(cfg, Box::new(MinMaxPolicy::unlimited()));
        let retries = report
            .obs_trace
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::IoRetry { .. }))
            .count();
        assert!(retries > 0, "a 100 s total outage must force backoffs");
        assert!(report.served > 0, "the system recovers after the window");
    }

    #[test]
    fn shock_victims_follow_the_class_degradation_mode() {
        use crate::faults::{DegradationMode, FaultPlan, FaultSpec};
        use obs::DegradedAction;
        let run = |mode| {
            let mut cfg = quick_cfg(0.10, 800.0);
            cfg.obs.trace = TraceMode::Full;
            cfg.faults = FaultPlan {
                events: vec![FaultSpec::MemoryShock {
                    start_secs: 100.0,
                    end_secs: 500.0,
                    fraction: 0.02,
                }],
                default_mode: mode,
                ..FaultPlan::default()
            };
            run_simulation(cfg, Box::new(MinMaxPolicy::unlimited()))
        };
        let count = |report: &RunReport, want: DegradedAction| {
            report
                .obs_trace
                .iter()
                .filter(
                    |r| matches!(r.event, TraceEvent::Degraded { action, .. } if action == want),
                )
                .count()
        };
        let abort = run(DegradationMode::Abort);
        assert!(
            count(&abort, DegradedAction::Aborted) > 0,
            "a severe shock under abort mode kills admitted victims"
        );
        let requeue = run(DegradationMode::Requeue);
        assert!(
            count(&requeue, DegradedAction::Suspended) > 0,
            "a severe shock under requeue mode suspends victims"
        );
        assert_eq!(
            count(&requeue, DegradedAction::Aborted),
            0,
            "requeue mode never fault-aborts"
        );
    }

    #[test]
    fn streaming_trace_matches_the_buffered_rendering() {
        let dir = std::env::temp_dir().join("rtdbs_stream_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.txt");
        let _ = std::fs::remove_file(&path);
        let mut cfg = quick_cfg(0.05, 600.0);
        cfg.obs.trace = TraceMode::Full;
        let buffered = run_simulation(cfg.clone(), Box::new(MinMaxPolicy::unlimited()));
        let rendered = obs::render_text(&buffered.obs_trace);
        cfg.obs.trace_path = Some(path.clone());
        let streamed = run_simulation(cfg, Box::new(MinMaxPolicy::unlimited()));
        assert!(
            streamed.obs_trace.is_empty(),
            "streamed runs keep no in-memory trace"
        );
        assert_eq!(
            streamed.served, buffered.served,
            "streaming must not perturb the run"
        );
        let on_disk = std::fs::read_to_string(&path).expect("streamed trace file");
        assert_eq!(on_disk, rendered, "streamed bytes == buffered rendering");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multiclass_reports_both_classes() {
        let mut cfg = SimConfig::multiclass(0.3);
        cfg.duration_secs = 1_500.0;
        let report = run_simulation(cfg, Box::new(MinMaxPolicy::unlimited()));
        assert_eq!(report.classes.len(), 2);
        assert!(report.classes.iter().all(|c| c.served > 0));
    }
}
