//! Deterministic fault injection: scheduled device faults and memory
//! shocks, plus the engine's degradation policy for their victims.
//!
//! A [`FaultPlan`] lives on `SimConfig` and schedules fault events at fixed
//! instants of **virtual time** — no randomness is consumed, so a plan
//! perturbs a run only through the faults themselves and the empty plan is
//! byte-for-byte the unfaulted simulation. Three fault shapes:
//!
//! * [`FaultSpec::DiskDegrade`] — a brown-out window during which one
//!   disk's media service times are multiplied by `factor` (the cache is
//!   unaffected: the media is slow, not the controller).
//! * [`FaultSpec::DiskOutage`] — a window during which every access to one
//!   disk fails, even would-be cache hits. The storage layer retries with
//!   capped exponential backoff priced in sim time ([`RetrySpec`]); when
//!   the budget is spent the engine applies the owning query's
//!   [`DegradationMode`].
//! * [`FaultSpec::MemoryShock`] — total buffer memory shrinks to
//!   `fraction` of its configured size, then restores. The engine
//!   reallocates under the shrunken pool and applies each de-scheduled
//!   victim's [`DegradationMode`]; policy feedback batches that overlap the
//!   shock are segmented out (like the regime detector's segmentation) so
//!   learned estimates are not poisoned by shock-era samples.

pub use storage::RetrySpec;

/// One scheduled fault: a window `[start_secs, end_secs)` of virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpec {
    /// Disk `disk`'s media service times are multiplied by `factor`
    /// (> 1 = slower) for the window.
    DiskDegrade {
        /// Target disk index.
        disk: u32,
        /// Window start (seconds of virtual time).
        start_secs: f64,
        /// Window end (seconds of virtual time).
        end_secs: f64,
        /// Media service-time multiplier while degraded.
        factor: f64,
    },
    /// Disk `disk` is unreachable for the window: every access fails and
    /// enters the retry/backoff ladder.
    DiskOutage {
        /// Target disk index.
        disk: u32,
        /// Window start (seconds of virtual time).
        start_secs: f64,
        /// Window end (seconds of virtual time).
        end_secs: f64,
    },
    /// Total buffer memory shrinks to `fraction` of its configured size
    /// for the window, then restores.
    MemoryShock {
        /// Window start (seconds of virtual time).
        start_secs: f64,
        /// Window end (seconds of virtual time).
        end_secs: f64,
        /// Fraction of `resources.memory_pages` available during the
        /// shock, in (0, 1]; at least one page survives.
        fraction: f64,
    },
}

impl FaultSpec {
    /// The fault's window as `(start_secs, end_secs)`.
    pub fn window(&self) -> (f64, f64) {
        match *self {
            FaultSpec::DiskDegrade {
                start_secs,
                end_secs,
                ..
            }
            | FaultSpec::DiskOutage {
                start_secs,
                end_secs,
                ..
            }
            | FaultSpec::MemoryShock {
                start_secs,
                end_secs,
                ..
            } => (start_secs, end_secs),
        }
    }
}

/// What the engine does with a query a fault de-schedules: one whose I/O
/// hard-failed, or one a memory shock left without buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DegradationMode {
    /// Abort it and count it missed — the firm-deadline reflex; frees its
    /// resources immediately for the survivors.
    #[default]
    Abort,
    /// Keep it: a hard-failed I/O is re-queued (it backs off again if the
    /// outage persists) and a shock victim stays suspended at zero grant
    /// until memory returns. Its deadline still applies — requeue trades
    /// throughput for a chance to finish.
    Requeue,
}

impl std::fmt::Display for DegradationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradationMode::Abort => "abort",
            DegradationMode::Requeue => "requeue",
        })
    }
}

/// A deterministic schedule of faults plus the degradation policy for
/// their victims. The default plan is empty: no faults, no behavior
/// change, not one event or random draw different from the unfaulted run.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled faults, applied at their window boundaries.
    pub events: Vec<FaultSpec>,
    /// Retry/backoff parameters every disk uses during outages.
    pub retry: RetrySpec,
    /// Degradation mode for classes without an explicit entry in
    /// `class_modes`.
    pub default_mode: DegradationMode,
    /// Per-class overrides, indexed by workload-class position.
    pub class_modes: Vec<DegradationMode>,
}

impl FaultPlan {
    /// True when the plan schedules nothing — the dark path.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The degradation mode for workload class `class`.
    pub fn mode_of(&self, class: usize) -> DegradationMode {
        self.class_modes
            .get(class)
            .copied()
            .unwrap_or(self.default_mode)
    }

    /// The canonical fault storm at `intensity` ∈ [0, 1], sized to land
    /// inside even a smoke run's 300-second horizon: a two-disk brown-out,
    /// an outage on a third disk, and a memory shock, all overlapping.
    /// `intensity ≤ 0` is the empty plan (the sweep's control cell).
    pub fn scaled(intensity: f64) -> FaultPlan {
        if intensity <= 0.0 {
            return FaultPlan::default();
        }
        FaultPlan {
            events: vec![
                FaultSpec::DiskDegrade {
                    disk: 0,
                    start_secs: 60.0,
                    end_secs: 240.0,
                    factor: 1.0 + 2.0 * intensity,
                },
                FaultSpec::DiskDegrade {
                    disk: 1,
                    start_secs: 60.0,
                    end_secs: 240.0,
                    factor: 1.0 + 2.0 * intensity,
                },
                FaultSpec::DiskOutage {
                    disk: 2,
                    start_secs: 120.0,
                    end_secs: 120.0 + 90.0 * intensity,
                },
                FaultSpec::MemoryShock {
                    start_secs: 150.0,
                    end_secs: 270.0,
                    fraction: 1.0 - 0.5 * intensity,
                },
            ],
            retry: RetrySpec::default(),
            default_mode: DegradationMode::Abort,
            class_modes: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.default_mode, DegradationMode::Abort);
        assert_eq!(plan.mode_of(3), DegradationMode::Abort);
    }

    #[test]
    fn class_modes_override_the_default() {
        let plan = FaultPlan {
            class_modes: vec![DegradationMode::Requeue],
            ..FaultPlan::default()
        };
        assert_eq!(plan.mode_of(0), DegradationMode::Requeue);
        assert_eq!(plan.mode_of(1), DegradationMode::Abort, "fallback");
    }

    #[test]
    fn scaled_zero_is_the_control_cell() {
        assert!(FaultPlan::scaled(0.0).is_empty());
        assert!(FaultPlan::scaled(-1.0).is_empty());
        let storm = FaultPlan::scaled(1.0);
        assert_eq!(storm.events.len(), 4);
        for e in &storm.events {
            let (s, t) = e.window();
            assert!(s < t, "window {s}..{t} must be non-empty");
            assert!(t <= 300.0, "fits the smoke horizon");
        }
    }

    #[test]
    fn modes_render_as_cell_name_prefixes() {
        assert_eq!(DegradationMode::Abort.to_string(), "abort");
        assert_eq!(DegradationMode::Requeue.to_string(), "requeue");
    }
}
