//! Simulation configuration: the database, workload, and physical resource
//! models of Section 4 (Tables 2 and 3), plus the paper's experiment
//! presets.

use exec::ExecConfig;
use storage::{DiskGeometry, RelationGroupSpec};

/// Physical resources (Table 3).
#[derive(Clone, Copy, Debug)]
pub struct ResourceConfig {
    /// `CPUSpeed` in MIPS (default 40).
    pub cpu_mips: f64,
    /// `NumDisks` (default 10).
    pub num_disks: u32,
    /// `M` — total buffer pool size in pages (default 2560 = 20 MB).
    pub memory_pages: u32,
    /// Disk geometry (seek factor, rotation, cylinders, cache).
    pub geometry: DiskGeometry,
    /// Operator cost-model parameters (tuples/page, block size, fudge).
    pub exec: ExecConfig,
}

impl Default for ResourceConfig {
    fn default() -> Self {
        ResourceConfig {
            cpu_mips: 40.0,
            num_disks: 10,
            memory_pages: 2560,
            geometry: DiskGeometry::default(),
            exec: ExecConfig::default(),
        }
    }
}

/// What kind of queries a workload class issues (Table 2, `QueryType_j`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryType {
    /// Hash joins: one relation drawn from each listed group; the smaller
    /// becomes the inner (build) relation R.
    HashJoin {
        /// The two operand relation groups (`RelGroup_j`).
        groups: (u32, u32),
    },
    /// External sorts over one relation from `group`.
    ExternalSort {
        /// The operand relation group.
        group: u32,
    },
}

/// One workload class (Table 2).
#[derive(Clone, Debug)]
pub struct WorkloadClass {
    /// Label for reports ("Medium", "Small", ...).
    pub name: String,
    /// Join or sort, and over which relation groups.
    pub query_type: QueryType,
    /// Poisson arrival rate λ in queries/second.
    pub arrival_rate: f64,
    /// `SRInterval_j` — slack ratios drawn uniformly from this range.
    pub slack_range: (f64, f64),
}

/// Alternating-workload schedule for the Section 5.3 experiment: phase `i`
/// lasts `phases[i].0` seconds with only the listed classes active; the
/// schedule repeats cyclically.
#[derive(Clone, Debug, Default)]
pub struct PhaseSchedule {
    /// `(duration_secs, active class indices)` per phase.
    pub phases: Vec<(f64, Vec<usize>)>,
}

impl PhaseSchedule {
    /// Which classes are active at simulated second `t`. With no phases,
    /// every class is always active.
    pub fn active_at(&self, t: f64, num_classes: usize) -> Vec<usize> {
        if self.phases.is_empty() {
            return (0..num_classes).collect();
        }
        let cycle: f64 = self.phases.iter().map(|p| p.0).sum();
        let mut offset = t % cycle;
        for (len, classes) in &self.phases {
            if offset < *len {
                return classes.clone();
            }
            offset -= len;
        }
        self.phases.last().expect("non-empty").1.clone()
    }

    /// True if `class` is active at `t`.
    pub fn is_active(&self, t: f64, class: usize, num_classes: usize) -> bool {
        self.active_at(t, num_classes).contains(&class)
    }
}

/// A complete simulation setup.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Physical resources.
    pub resources: ResourceConfig,
    /// Relation groups (Table 2's database model).
    pub database: Vec<RelationGroupSpec>,
    /// Workload classes.
    pub classes: Vec<WorkloadClass>,
    /// Optional class-alternation schedule (Section 5.3).
    pub schedule: PhaseSchedule,
    /// Simulated run length in seconds (the paper runs 10 hours).
    pub duration_secs: f64,
    /// RNG master seed.
    pub seed: u64,
    /// `SampleSize` — completions per policy feedback batch.
    pub sample_size: u32,
    /// Window length for the miss-ratio time series (Figures 12–14).
    pub window_secs: f64,
    /// Firm deadlines: abort queries at their deadline (the paper's model).
    /// Setting this false is the run-to-completion ablation.
    pub firm_deadlines: bool,
}

impl SimConfig {
    /// The Section 5.1 baseline: one Medium hash-join class, ‖R‖ drawn from
    /// [600, 1800] (13 sizes per disk), ‖S‖ from [3000, 9000], slack
    /// [2.5, 7.5], 10 disks, 2560 buffer pages.
    pub fn baseline(arrival_rate: f64) -> Self {
        SimConfig {
            resources: ResourceConfig::default(),
            database: vec![
                RelationGroupSpec {
                    relations_per_disk: 3,
                    size_range: (600, 1800),
                },
                RelationGroupSpec {
                    relations_per_disk: 3,
                    size_range: (3000, 9000),
                },
            ],
            classes: vec![WorkloadClass {
                name: "Medium".into(),
                query_type: QueryType::HashJoin { groups: (0, 1) },
                arrival_rate,
                slack_range: (2.5, 7.5),
            }],
            schedule: PhaseSchedule::default(),
            duration_secs: 36_000.0,
            seed: 1994,
            sample_size: 30,
            window_secs: 1_200.0,
            firm_deadlines: true,
        }
    }

    /// Section 5.2: the baseline with disk contention — 6 disks.
    pub fn disk_contention(arrival_rate: f64) -> Self {
        let mut cfg = Self::baseline(arrival_rate);
        cfg.resources.num_disks = 6;
        cfg
    }

    /// The Small hash-join class of Table 8 (‖R‖ ∈ [50, 150],
    /// ‖S‖ ∈ [250, 750]); group indices are relative to
    /// [`SimConfig::workload_changes`]' database.
    fn small_class(arrival_rate: f64) -> WorkloadClass {
        WorkloadClass {
            name: "Small".into(),
            query_type: QueryType::HashJoin { groups: (2, 3) },
            arrival_rate,
            slack_range: (2.5, 7.5),
        }
    }

    /// Section 5.3: alternating Small / Medium classes every 2–5 simulated
    /// hours on 6 disks (Table 8: Medium λ = 0.07, Small λ = 2.8).
    pub fn workload_changes() -> Self {
        let mut cfg = Self::baseline(0.07);
        cfg.resources.num_disks = 6;
        cfg.database = vec![
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (600, 1800),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (3000, 9000),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (50, 150),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (250, 750),
            },
        ];
        cfg.classes.push(Self::small_class(2.8));
        // Alternate Medium / Small with phase lengths in the paper's
        // 2–5-hour range (deterministic so runs are reproducible).
        cfg.schedule = PhaseSchedule {
            phases: vec![
                (9_000.0, vec![0]),  // Medium, 2.5 h
                (14_400.0, vec![1]), // Small, 4 h
                (10_800.0, vec![0]), // Medium, 3 h
                (7_200.0, vec![1]),  // Small, 2 h
                (12_600.0, vec![0]), // Medium, 3.5 h
            ],
        };
        cfg.duration_secs = 79_200.0; // cover all five phases (22 h)
        cfg
    }

    /// Section 5.6: Small and Medium active together; Medium fixed at
    /// λ = 0.065, Small swept; 12 disks.
    pub fn multiclass(small_rate: f64) -> Self {
        let mut cfg = Self::baseline(0.065);
        cfg.resources.num_disks = 12;
        cfg.database = vec![
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (600, 1800),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (3000, 9000),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (50, 150),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (250, 750),
            },
        ];
        if small_rate > 0.0 {
            cfg.classes.push(Self::small_class(small_rate));
        }
        cfg
    }

    /// Section 5.5: the baseline workload with external sorts instead of
    /// joins (‖R‖ ∈ [600, 1800]).
    pub fn sorts(arrival_rate: f64) -> Self {
        let mut cfg = Self::baseline(arrival_rate);
        cfg.classes = vec![WorkloadClass {
            name: "Sort".into(),
            query_type: QueryType::ExternalSort { group: 0 },
            arrival_rate,
            slack_range: (2.5, 7.5),
        }];
        cfg
    }

    /// Section 5.7: the disk-contention setup scaled down ×10 (relations
    /// and memory ÷10, arrival rate ×10) — used to check scale invariance.
    pub fn scaled_down(arrival_rate: f64) -> Self {
        let mut cfg = Self::disk_contention(arrival_rate * 10.0);
        cfg.resources.memory_pages = 256;
        cfg.database = vec![
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (60, 180),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (300, 900),
            },
        ];
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_tables() {
        let cfg = SimConfig::baseline(0.06);
        assert_eq!(cfg.resources.cpu_mips, 40.0);
        assert_eq!(cfg.resources.num_disks, 10);
        assert_eq!(cfg.resources.memory_pages, 2560);
        assert_eq!(cfg.classes.len(), 1);
        assert_eq!(cfg.sample_size, 30);
        assert!(cfg.firm_deadlines);
    }

    #[test]
    fn empty_schedule_means_always_active() {
        let s = PhaseSchedule::default();
        assert_eq!(s.active_at(12_345.0, 3), vec![0, 1, 2]);
        assert!(s.is_active(0.0, 2, 3));
    }

    #[test]
    fn schedule_cycles() {
        let s = PhaseSchedule {
            phases: vec![(100.0, vec![0]), (50.0, vec![1])],
        };
        assert_eq!(s.active_at(10.0, 2), vec![0]);
        assert_eq!(s.active_at(120.0, 2), vec![1]);
        // Wraps: 160 ≡ 10 (mod 150).
        assert_eq!(s.active_at(160.0, 2), vec![0]);
        assert!(!s.is_active(120.0, 0, 2));
    }

    #[test]
    fn workload_changes_phases_cover_range() {
        let cfg = SimConfig::workload_changes();
        for (len, classes) in &cfg.schedule.phases {
            assert!(
                (7_200.0..=18_000.0).contains(len),
                "phase {len}s outside 2–5 h"
            );
            assert_eq!(classes.len(), 1, "one class at a time");
        }
        assert_eq!(cfg.resources.num_disks, 6);
    }

    #[test]
    fn multiclass_includes_small_only_when_positive() {
        assert_eq!(SimConfig::multiclass(0.0).classes.len(), 1);
        assert_eq!(SimConfig::multiclass(0.4).classes.len(), 2);
    }

    #[test]
    fn scaled_down_divides_sizes() {
        let cfg = SimConfig::scaled_down(0.06);
        assert_eq!(cfg.resources.memory_pages, 256);
        assert_eq!(cfg.database[0].size_range, (60, 180));
        assert!((cfg.classes[0].arrival_rate - 0.6).abs() < 1e-12);
    }
}
