//! Simulation configuration: the database, workload, and physical resource
//! models of Section 4 (Tables 2 and 3), plus the paper's experiment
//! presets and the wider-workload scenarios built on the `workload` crate.
//!
//! Workload description types ([`WorkloadClass`], [`QueryType`],
//! [`AlternationSchedule`], [`ArrivalSpec`], [`TenantSpec`], [`Scenario`])
//! live in `workload` — scenario generation is its own subsystem — and are
//! re-exported here for convenience.

use crate::faults::{FaultPlan, FaultSpec};
use exec::ExecConfig;
pub use obs::{ObsConfig, TraceMode};
pub use storage::{DeviceSpec, EvictionSpec, SsdSpec};
use storage::{DiskGeometry, RelationGroupSpec};
pub use workload::{
    AlternationSchedule, ArrivalSpec, QueryType, Scenario, TenantSpec, WorkloadClass,
};

/// Backward-compatible alias: the Section 5.3 schedule under its seed name.
pub type PhaseSchedule = AlternationSchedule;

/// Physical resources (Table 3).
#[derive(Clone, Copy, Debug)]
pub struct ResourceConfig {
    /// `CPUSpeed` in MIPS (default 40).
    pub cpu_mips: f64,
    /// `NumDisks` (default 10).
    pub num_disks: u32,
    /// `M` — total buffer pool size in pages (default 2560 = 20 MB).
    pub memory_pages: u32,
    /// Disk geometry: file-layout addressing for every device, plus the
    /// cylinder device's service parameters (seek factor, rotation, cache).
    pub geometry: DiskGeometry,
    /// Storage service model each disk runs (default: the paper's cylinder
    /// disk). Select via [`SimConfig::with_device`].
    pub device: DeviceSpec,
    /// Eviction policy of each disk's prefetch pool (default: LRU, the
    /// paper's behavior). Select via [`SimConfig::with_eviction`].
    pub eviction: EvictionSpec,
    /// Operator cost-model parameters (tuples/page, block size, fudge).
    pub exec: ExecConfig,
}

impl Default for ResourceConfig {
    fn default() -> Self {
        ResourceConfig {
            cpu_mips: 40.0,
            num_disks: 10,
            memory_pages: 2560,
            geometry: DiskGeometry::default(),
            device: DeviceSpec::default(),
            eviction: EvictionSpec::default(),
            exec: ExecConfig::default(),
        }
    }
}

/// Why a [`SimConfig`] is degenerate — returned by [`SimConfig::validate`]
/// so misconfigurations fail at the driver boundary instead of as implicit
/// panics (or division-by-zero) deep inside the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `exec.block_pages` is 0: block-granular I/O and the prefetch pool
    /// both divide by it.
    ZeroBlockPages,
    /// The device's prefetch cache holds zero pages (zero cache bytes or
    /// zero page bytes).
    ZeroCacheCapacity,
    /// No workload classes: nothing would ever arrive.
    NoClasses,
    /// An SSD device with queue depth 0 (its parallelism divisor).
    ZeroSsdQueueDepth,
    /// LRU-K eviction with K = 0 (no history to rank victims by).
    ZeroLruKHistory,
    /// No disks to place relations on.
    ZeroDisks,
    /// Zero buffer-pool pages: no query could ever be admitted.
    ZeroMemory,
    /// A non-positive or non-finite simulated duration.
    NonPositiveDuration,
    /// A non-positive or non-finite miss-ratio/metrics window length —
    /// the fig12 window machinery would never (or always) roll.
    NonPositiveWindow,
    /// Flight-recorder tracing requested with a zero-capacity ring.
    ZeroRingCapacity,
    /// A fault targets a disk index ≥ `resources.num_disks`.
    FaultDiskOutOfRange,
    /// A fault window is empty, negative, or non-finite.
    FaultWindowInvalid,
    /// A degradation factor or shock fraction outside its meaningful
    /// range (factor must be positive and finite; fraction in (0, 1]).
    FaultFactorInvalid,
    /// A zero base backoff or a cap below the base: the retry ladder
    /// would spin without advancing virtual time (or be non-monotone).
    FaultBackoffInvalid,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ConfigError::ZeroBlockPages => "exec.block_pages must be positive",
            ConfigError::ZeroCacheCapacity => "device prefetch cache holds zero pages",
            ConfigError::NoClasses => "workload has no classes",
            ConfigError::ZeroSsdQueueDepth => "SSD queue depth must be positive",
            ConfigError::ZeroLruKHistory => "LRU-K history depth must be positive",
            ConfigError::ZeroDisks => "resources.num_disks must be positive",
            ConfigError::ZeroMemory => "resources.memory_pages must be positive",
            ConfigError::NonPositiveDuration => {
                "duration_secs must be positive and finite"
            }
            ConfigError::NonPositiveWindow => "window_secs must be positive and finite",
            ConfigError::ZeroRingCapacity => {
                "obs.ring_capacity must be positive for ring tracing"
            }
            ConfigError::FaultDiskOutOfRange => {
                "fault plan targets a disk index beyond resources.num_disks"
            }
            ConfigError::FaultWindowInvalid => {
                "fault windows need finite 0 <= start < end"
            }
            ConfigError::FaultFactorInvalid => {
                "degrade factors must be positive and finite; \
                 shock fractions must lie in (0, 1]"
            }
            ConfigError::FaultBackoffInvalid => {
                "fault retry backoff needs base > 0 and cap >= base"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// A complete simulation setup.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Physical resources.
    pub resources: ResourceConfig,
    /// Relation groups (Table 2's database model).
    pub database: Vec<RelationGroupSpec>,
    /// Workload classes.
    pub classes: Vec<WorkloadClass>,
    /// Optional class-alternation schedule (Section 5.3).
    pub schedule: AlternationSchedule,
    /// Tenant memory partitions; empty = single-tenant. Enforced by
    /// `pmm::PartitionedPolicy` (classes map to partitions via
    /// [`WorkloadClass::tenant`]).
    pub tenants: Vec<TenantSpec>,
    /// Simulated run length in seconds (the paper runs 10 hours).
    pub duration_secs: f64,
    /// RNG master seed.
    pub seed: u64,
    /// `SampleSize` — completions per policy feedback batch.
    pub sample_size: u32,
    /// Window length for the miss-ratio time series (Figures 12–14).
    pub window_secs: f64,
    /// Firm deadlines: abort queries at their deadline (the paper's model).
    /// Setting this false is the run-to-completion ablation.
    pub firm_deadlines: bool,
    /// Record every class's inter-arrival gaps into
    /// `RunReport::arrival_gaps` so the run can be replayed through
    /// `workload::Trace` (`--record-arrivals` in the driver). Metric-only:
    /// recording never changes the simulation. Routed through the obs
    /// trace sink: setting it forces a full sink with (at least) the
    /// arrival-gap event kind enabled.
    pub record_arrivals: bool,
    /// Drive operators through the batched run protocol with closed-form
    /// descriptor planning (`true`, the default) or single-step them one
    /// action per event (`false`). The two paths are bit-identical —
    /// `tests/fastforward_differential.rs` pins event-for-event equality —
    /// so this switch exists for that harness and for debugging, not as a
    /// semantic knob.
    pub fastforward: bool,
    /// Observability switches (tracing, metrics, profiling). All off by
    /// default; never changes simulated behavior, only what is recorded.
    pub obs: ObsConfig,
    /// Deterministic fault schedule (device faults, memory shocks) plus
    /// the degradation policy for their victims. Empty by default: the
    /// dark path is byte-for-byte the unfaulted simulation.
    pub faults: FaultPlan,
}

impl SimConfig {
    /// The Section 5.1 baseline: one Medium hash-join class, ‖R‖ drawn from
    /// [600, 1800] (13 sizes per disk), ‖S‖ from [3000, 9000], slack
    /// [2.5, 7.5], 10 disks, 2560 buffer pages.
    pub fn baseline(arrival_rate: f64) -> Self {
        Self::baseline_core(arrival_rate)
            .with_device(DeviceSpec::default())
            .with_eviction(EvictionSpec::default())
    }

    /// The baseline preset before device/eviction routing (see
    /// [`SimConfig::baseline`], which routes it through the builders).
    fn baseline_core(arrival_rate: f64) -> Self {
        SimConfig {
            resources: ResourceConfig::default(),
            database: vec![
                RelationGroupSpec {
                    relations_per_disk: 3,
                    size_range: (600, 1800),
                },
                RelationGroupSpec {
                    relations_per_disk: 3,
                    size_range: (3000, 9000),
                },
            ],
            classes: vec![WorkloadClass::poisson(
                "Medium",
                QueryType::HashJoin { groups: (0, 1) },
                arrival_rate,
                (2.5, 7.5),
            )],
            schedule: AlternationSchedule::default(),
            tenants: Vec::new(),
            duration_secs: 36_000.0,
            seed: 1994,
            sample_size: 30,
            window_secs: 1_200.0,
            firm_deadlines: true,
            record_arrivals: false,
            fastforward: true,
            obs: ObsConfig::default(),
            faults: FaultPlan::default(),
        }
    }

    /// Replace the workload with `scenario` (classes, schedule, tenants).
    ///
    /// # Panics
    /// Panics when a class references an undeclared tenant — a scenario
    /// authoring bug worth failing loudly on.
    pub fn apply_scenario(&mut self, scenario: Scenario) {
        if let Err(e) = scenario.validate() {
            panic!("invalid scenario {:?}: {e}", scenario.name);
        }
        self.classes = scenario.classes;
        self.schedule = scenario.schedule;
        self.tenants = scenario.tenants;
    }

    /// Builder-style: run every disk on `device`
    /// (`SimConfig::baseline(0.06).with_device(DeviceSpec::Ssd(...))`).
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.resources.device = device;
        self
    }

    /// Builder-style: evict prefetch-pool lines per `eviction`.
    pub fn with_eviction(mut self, eviction: EvictionSpec) -> Self {
        self.resources.eviction = eviction;
        self
    }

    /// Builder-style: inject faults per `plan`
    /// (`SimConfig::baseline(0.06).with_faults(FaultPlan::scaled(1.0))`).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Reject degenerate configurations before they become implicit panics
    /// (or, worse, division-by-zero) deep inside the engine. The driver
    /// calls this on every cell before spawning replications.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let r = &self.resources;
        if r.exec.block_pages == 0 {
            return Err(ConfigError::ZeroBlockPages);
        }
        if r.device.cache_pages(&r.geometry) == 0 {
            return Err(ConfigError::ZeroCacheCapacity);
        }
        if self.classes.is_empty() {
            return Err(ConfigError::NoClasses);
        }
        if let DeviceSpec::Ssd(spec) = r.device {
            if spec.queue_depth == 0 {
                return Err(ConfigError::ZeroSsdQueueDepth);
            }
        }
        if let EvictionSpec::LruK { k: 0 } = r.eviction {
            return Err(ConfigError::ZeroLruKHistory);
        }
        if r.num_disks == 0 {
            return Err(ConfigError::ZeroDisks);
        }
        if r.memory_pages == 0 {
            return Err(ConfigError::ZeroMemory);
        }
        if !(self.duration_secs > 0.0 && self.duration_secs.is_finite()) {
            return Err(ConfigError::NonPositiveDuration);
        }
        if !(self.window_secs > 0.0 && self.window_secs.is_finite()) {
            return Err(ConfigError::NonPositiveWindow);
        }
        if self.obs.trace == TraceMode::Ring && self.obs.ring_capacity == 0 {
            return Err(ConfigError::ZeroRingCapacity);
        }
        for fault in &self.faults.events {
            let (start, end) = fault.window();
            if !(start.is_finite() && end.is_finite() && start >= 0.0 && start < end) {
                return Err(ConfigError::FaultWindowInvalid);
            }
            match *fault {
                FaultSpec::DiskDegrade { disk, factor, .. } => {
                    if disk >= r.num_disks {
                        return Err(ConfigError::FaultDiskOutOfRange);
                    }
                    if !(factor > 0.0 && factor.is_finite()) {
                        return Err(ConfigError::FaultFactorInvalid);
                    }
                }
                FaultSpec::DiskOutage { disk, .. } => {
                    if disk >= r.num_disks {
                        return Err(ConfigError::FaultDiskOutOfRange);
                    }
                }
                FaultSpec::MemoryShock { fraction, .. } => {
                    if !(fraction > 0.0 && fraction <= 1.0) {
                        return Err(ConfigError::FaultFactorInvalid);
                    }
                }
            }
        }
        let retry = &self.faults.retry;
        if retry.base.is_zero() || retry.cap < retry.base {
            return Err(ConfigError::FaultBackoffInvalid);
        }
        Ok(())
    }

    /// Section 5.2: the baseline with disk contention — 6 disks.
    pub fn disk_contention(arrival_rate: f64) -> Self {
        let mut cfg = Self::baseline(arrival_rate);
        cfg.resources.num_disks = 6;
        cfg
    }

    /// The Small hash-join class of Table 8 (‖R‖ ∈ [50, 150],
    /// ‖S‖ ∈ [250, 750]); group indices are relative to
    /// [`SimConfig::workload_changes`]' database.
    fn small_class(arrival_rate: f64) -> WorkloadClass {
        WorkloadClass::poisson(
            "Small",
            QueryType::HashJoin { groups: (2, 3) },
            arrival_rate,
            (2.5, 7.5),
        )
    }

    /// The four-group database shared by the workload-changes and
    /// multiclass experiments (Medium + Small operand groups).
    fn four_group_database() -> Vec<RelationGroupSpec> {
        vec![
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (600, 1800),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (3000, 9000),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (50, 150),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (250, 750),
            },
        ]
    }

    /// Section 5.3: alternating Small / Medium classes every 2–5 simulated
    /// hours on 6 disks (Table 8: Medium λ = 0.07, Small λ = 2.8).
    pub fn workload_changes() -> Self {
        let mut cfg = Self::baseline(0.07);
        cfg.resources.num_disks = 6;
        cfg.database = Self::four_group_database();
        cfg.classes.push(Self::small_class(2.8));
        // Alternate Medium / Small with phase lengths in the paper's
        // 2–5-hour range (deterministic so runs are reproducible).
        cfg.schedule = AlternationSchedule::cycle(vec![
            (9_000.0, vec![0]),  // Medium, 2.5 h
            (14_400.0, vec![1]), // Small, 4 h
            (10_800.0, vec![0]), // Medium, 3 h
            (7_200.0, vec![1]),  // Small, 2 h
            (12_600.0, vec![0]), // Medium, 3.5 h
        ]);
        cfg.duration_secs = 79_200.0; // cover all five phases (22 h)
        cfg
    }

    /// Section 5.6: Small and Medium active together; Medium fixed at
    /// λ = 0.065, Small swept; 12 disks.
    pub fn multiclass(small_rate: f64) -> Self {
        let mut cfg = Self::baseline(0.065);
        cfg.resources.num_disks = 12;
        cfg.database = Self::four_group_database();
        if small_rate > 0.0 {
            cfg.classes.push(Self::small_class(small_rate));
        }
        cfg
    }

    /// Section 5.5: the baseline workload with external sorts instead of
    /// joins (‖R‖ ∈ [600, 1800]).
    pub fn sorts(arrival_rate: f64) -> Self {
        let mut cfg = Self::baseline(arrival_rate);
        cfg.classes = vec![WorkloadClass::poisson(
            "Sort",
            QueryType::ExternalSort { group: 0 },
            arrival_rate,
            (2.5, 7.5),
        )];
        cfg
    }

    /// Section 5.7: the disk-contention setup scaled down ×10 (relations
    /// and memory ÷10, arrival rate ×10) — used to check scale invariance.
    pub fn scaled_down(arrival_rate: f64) -> Self {
        let mut cfg = Self::disk_contention(arrival_rate * 10.0);
        cfg.resources.memory_pages = 256;
        cfg.database = vec![
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (60, 180),
            },
            RelationGroupSpec {
                relations_per_disk: 3,
                size_range: (300, 900),
            },
        ];
        cfg
    }

    /// Bursty-arrivals scenario: the baseline Medium join class driven by a
    /// 2-state MMPP with the baseline's long-run rate (λ̄ = 0.06) but a
    /// `burst_ratio`-to-1 rate swing between states (10-minute mean
    /// sojourns). `burst_ratio ≤ 1` keeps plain Poisson arrivals — the
    /// control cell of the burst experiment.
    pub fn bursty(burst_ratio: f64) -> Self {
        let mut cfg = Self::baseline(0.06);
        if burst_ratio > 1.0 {
            cfg.apply_scenario(Scenario::join_heavy(
                (0, 1),
                ArrivalSpec::bursty(0.06, burst_ratio, 600.0),
            ));
        }
        cfg
    }

    /// Multi-tenant scenario: an "analytics" tenant running Medium joins and
    /// a "reporting" tenant running sorts, both Poisson λ = 0.05, with
    /// `analytics_frac` of the buffer pool reserved for analytics and the
    /// rest for reporting. Pair with `pmm::PartitionedPolicy` (hard or
    /// softened) or any shared policy as the no-isolation control.
    pub fn multi_tenant(analytics_frac: f64) -> Self {
        let mut cfg = Self::baseline(0.05);
        let m = cfg.resources.memory_pages;
        let quotas = workload::quota_split(m, &[analytics_frac, 1.0 - analytics_frac]);
        let mut scenario = Scenario::mixed(
            (0, 1),
            ArrivalSpec::poisson(0.05),
            0,
            ArrivalSpec::poisson(0.05),
        );
        // Sorts bill the reporting partition — assigned before
        // `apply_scenario` so its tenant-reference validation covers it.
        scenario.classes[1].tenant = 1;
        cfg.apply_scenario(
            scenario
                .tenant(TenantSpec::hard("analytics", quotas[0]))
                .tenant(TenantSpec::hard("reporting", quotas[1])),
        );
        cfg
    }

    /// Fault-storm scenario: the baseline workload under
    /// [`FaultPlan::scaled`] at `intensity` ∈ [0, 1]. Intensity 0 is the
    /// fault-free control cell of the `faults` figure.
    pub fn faulty(intensity: f64) -> Self {
        Self::baseline(0.06).with_faults(FaultPlan::scaled(intensity))
    }

    /// Scale-out tenancy preset: `n` identical soft-quota tenants generated
    /// by [`Scenario::tenant_grid`] (no 10³ literals), each running one
    /// small Poisson sort class billed to it, with the buffer pool sized at
    /// 256 pages per tenant so per-tenant conditions stay constant as `n`
    /// sweeps 10¹ → 10³. Relation sizes (‖R‖ ∈ [50, 150], group 2) keep a
    /// full sort inside one quota, so soft borrow-back — not starvation —
    /// is what the allocator arbitrates. The `scale` figure pairs this with
    /// `pmm::PartitionedPolicy` (incremental) and its `snapshot/`-pinned
    /// control arm.
    pub fn scale(n: usize) -> Self {
        let n = n.max(1);
        let mut cfg = Self::baseline(0.05);
        cfg.database.push(RelationGroupSpec {
            relations_per_disk: 3,
            size_range: (50, 150),
        });
        cfg.resources.memory_pages = 256 * n as u32;
        // One figure point is minutes of simulated time, not the paper's 10
        // hours: the figure measures reallocation cost, which needs churn
        // volume, not steady-state miss ratios.
        cfg.duration_secs = 1_200.0;
        cfg.window_secs = 300.0;
        cfg.apply_scenario(Scenario::tenant_grid(
            n,
            QueryType::ExternalSort { group: 2 },
            0.02,
            256,
        ));
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_tables() {
        let cfg = SimConfig::baseline(0.06);
        assert_eq!(cfg.resources.cpu_mips, 40.0);
        assert_eq!(cfg.resources.num_disks, 10);
        assert_eq!(cfg.resources.memory_pages, 2560);
        assert_eq!(cfg.classes.len(), 1);
        assert_eq!(cfg.classes[0].arrival, ArrivalSpec::poisson(0.06));
        assert_eq!(cfg.sample_size, 30);
        assert!(cfg.firm_deadlines);
        assert!(cfg.tenants.is_empty());
    }

    #[test]
    fn workload_changes_phases_cover_range() {
        let cfg = SimConfig::workload_changes();
        for (len, classes) in &cfg.schedule.phases {
            assert!(
                (7_200.0..=18_000.0).contains(len),
                "phase {len}s outside 2–5 h"
            );
            assert_eq!(classes.len(), 1, "one class at a time");
        }
        assert_eq!(cfg.resources.num_disks, 6);
    }

    #[test]
    fn multiclass_includes_small_only_when_positive() {
        assert_eq!(SimConfig::multiclass(0.0).classes.len(), 1);
        assert_eq!(SimConfig::multiclass(0.4).classes.len(), 2);
    }

    #[test]
    fn scaled_down_divides_sizes() {
        let cfg = SimConfig::scaled_down(0.06);
        assert_eq!(cfg.resources.memory_pages, 256);
        assert_eq!(cfg.database[0].size_range, (60, 180));
        assert!((cfg.classes[0].mean_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn bursty_preserves_the_mean_rate() {
        let poisson = SimConfig::bursty(1.0);
        assert_eq!(poisson.classes[0].arrival, ArrivalSpec::poisson(0.06));
        let bursty = SimConfig::bursty(8.0);
        assert!(matches!(
            bursty.classes[0].arrival,
            ArrivalSpec::Mmpp { .. }
        ));
        assert!((bursty.classes[0].mean_rate() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn multi_tenant_splits_the_pool() {
        let cfg = SimConfig::multi_tenant(0.75);
        assert_eq!(cfg.tenants.len(), 2);
        assert_eq!(cfg.tenants[0].quota_pages, 1920);
        assert_eq!(cfg.tenants[1].quota_pages, 640);
        assert_eq!(cfg.classes[0].tenant, 0);
        assert_eq!(cfg.classes[1].tenant, 1);
        assert!(matches!(
            cfg.classes[1].query_type,
            QueryType::ExternalSort { .. }
        ));
    }

    #[test]
    fn presets_default_to_cylinder_lru() {
        for cfg in [
            SimConfig::baseline(0.06),
            SimConfig::bursty(8.0),
            SimConfig::multi_tenant(0.75),
            SimConfig::sorts(0.1),
        ] {
            assert_eq!(cfg.resources.device, DeviceSpec::Cylinder);
            assert_eq!(cfg.resources.eviction, EvictionSpec::Lru);
        }
    }

    #[test]
    fn builders_set_device_and_eviction() {
        let cfg = SimConfig::baseline(0.06)
            .with_device(DeviceSpec::Ssd(SsdSpec::default()))
            .with_eviction(EvictionSpec::LruK { k: 2 });
        assert!(matches!(cfg.resources.device, DeviceSpec::Ssd(_)));
        assert_eq!(cfg.resources.eviction, EvictionSpec::LruK { k: 2 });
        // The builders touch nothing else.
        assert_eq!(cfg.resources.memory_pages, 2560);
        assert_eq!(cfg.classes.len(), 1);
    }

    #[test]
    fn validate_accepts_every_preset() {
        for cfg in [
            SimConfig::baseline(0.06),
            SimConfig::disk_contention(0.1),
            SimConfig::workload_changes(),
            SimConfig::multiclass(0.4),
            SimConfig::sorts(0.1),
            SimConfig::scaled_down(0.06),
            SimConfig::bursty(8.0),
            SimConfig::multi_tenant(0.75),
            SimConfig::scale(10),
            SimConfig::scale(1000),
            SimConfig::baseline(0.06)
                .with_device(DeviceSpec::Ssd(SsdSpec::default()))
                .with_eviction(EvictionSpec::LruK { k: 2 }),
        ] {
            assert_eq!(cfg.validate(), Ok(()));
        }
    }

    #[test]
    fn scale_preset_grows_with_tenant_count() {
        let cfg = SimConfig::scale(100);
        assert_eq!(cfg.tenants.len(), 100);
        assert_eq!(cfg.classes.len(), 100);
        assert_eq!(cfg.resources.memory_pages, 25_600);
        assert!(cfg.tenants.iter().all(|t| t.soft && t.quota_pages == 256));
        // Every class bills its own tenant.
        assert!(cfg.classes.iter().enumerate().all(|(i, c)| c.tenant == i));
        // Degenerate request still yields a valid config.
        assert_eq!(SimConfig::scale(0).tenants.len(), 1);
    }

    #[test]
    fn validate_rejects_degenerate_inputs() {
        let mut cfg = SimConfig::baseline(0.06);
        cfg.resources.exec.block_pages = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroBlockPages));

        let mut cfg = SimConfig::baseline(0.06);
        cfg.resources.geometry.cache_bytes = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroCacheCapacity));

        let mut cfg = SimConfig::baseline(0.06);
        cfg.resources.geometry.page_bytes = 0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroCacheCapacity),
            "zero page bytes must not divide by zero"
        );

        let mut cfg = SimConfig::baseline(0.06);
        cfg.classes.clear();
        assert_eq!(cfg.validate(), Err(ConfigError::NoClasses));

        let cfg = SimConfig::baseline(0.06).with_device(DeviceSpec::Ssd(SsdSpec {
            queue_depth: 0,
            ..SsdSpec::default()
        }));
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroSsdQueueDepth));

        let cfg = SimConfig::baseline(0.06).with_eviction(EvictionSpec::LruK { k: 0 });
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroLruKHistory));

        let mut cfg = SimConfig::baseline(0.06);
        cfg.resources.num_disks = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroDisks));

        let mut cfg = SimConfig::baseline(0.06);
        cfg.resources.memory_pages = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroMemory));

        let mut cfg = SimConfig::baseline(0.06);
        cfg.duration_secs = 0.0;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveDuration));
        cfg.duration_secs = f64::NAN;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveDuration));

        let mut cfg = SimConfig::baseline(0.06);
        cfg.window_secs = 0.0;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveWindow));
        cfg.window_secs = f64::INFINITY;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveWindow));
        cfg.window_secs = -1.0;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveWindow));

        let mut cfg = SimConfig::baseline(0.06);
        cfg.obs.trace = TraceMode::Ring;
        cfg.obs.ring_capacity = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroRingCapacity));
        cfg.obs.ring_capacity = 16;
        assert_eq!(cfg.validate(), Ok(()));
        // A zero ring capacity is fine when the ring is not in use.
        cfg.obs.trace = TraceMode::Full;
        cfg.obs.ring_capacity = 0;
        assert_eq!(cfg.validate(), Ok(()));

        // Errors render as readable one-liners.
        assert_eq!(
            ConfigError::ZeroSsdQueueDepth.to_string(),
            "SSD queue depth must be positive"
        );
    }

    #[test]
    fn validate_accepts_fault_plans_and_rejects_bad_ones() {
        use crate::faults::{DegradationMode, FaultPlan, FaultSpec, RetrySpec};
        use simkit::Duration;

        for i in [0.0, 0.5, 1.0] {
            assert_eq!(SimConfig::faulty(i).validate(), Ok(()));
        }
        assert!(SimConfig::faulty(0.0).faults.is_empty());
        assert_eq!(
            SimConfig::faulty(1.0).faults.default_mode,
            DegradationMode::Abort
        );

        let fault_cfg = |spec: FaultSpec| {
            SimConfig::baseline(0.06).with_faults(FaultPlan {
                events: vec![spec],
                ..FaultPlan::default()
            })
        };
        let cfg = fault_cfg(FaultSpec::DiskOutage {
            disk: 10,
            start_secs: 1.0,
            end_secs: 2.0,
        });
        assert_eq!(cfg.validate(), Err(ConfigError::FaultDiskOutOfRange));
        let cfg = fault_cfg(FaultSpec::DiskDegrade {
            disk: 0,
            start_secs: 5.0,
            end_secs: 5.0,
            factor: 2.0,
        });
        assert_eq!(cfg.validate(), Err(ConfigError::FaultWindowInvalid));
        let cfg = fault_cfg(FaultSpec::MemoryShock {
            start_secs: f64::NAN,
            end_secs: 2.0,
            fraction: 0.5,
        });
        assert_eq!(cfg.validate(), Err(ConfigError::FaultWindowInvalid));
        let cfg = fault_cfg(FaultSpec::DiskDegrade {
            disk: 0,
            start_secs: 1.0,
            end_secs: 2.0,
            factor: 0.0,
        });
        assert_eq!(cfg.validate(), Err(ConfigError::FaultFactorInvalid));
        let cfg = fault_cfg(FaultSpec::MemoryShock {
            start_secs: 1.0,
            end_secs: 2.0,
            fraction: 1.5,
        });
        assert_eq!(cfg.validate(), Err(ConfigError::FaultFactorInvalid));

        let mut cfg = SimConfig::faulty(1.0);
        cfg.faults.retry = RetrySpec {
            max_retries: 3,
            base: Duration::ZERO,
            cap: Duration::from_secs(1),
        };
        assert_eq!(cfg.validate(), Err(ConfigError::FaultBackoffInvalid));
        cfg.faults.retry = RetrySpec {
            max_retries: 3,
            base: Duration::from_secs(2),
            cap: Duration::from_secs(1),
        };
        assert_eq!(cfg.validate(), Err(ConfigError::FaultBackoffInvalid));
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn apply_scenario_rejects_dangling_tenant_refs() {
        let mut cfg = SimConfig::baseline(0.05);
        let bad = Scenario::join_heavy((0, 1), ArrivalSpec::poisson(0.05))
            .tenant(TenantSpec::hard("only", 2560));
        let mut classes = bad.classes.clone();
        classes[0].tenant = 5;
        cfg.apply_scenario(Scenario { classes, ..bad });
    }
}
