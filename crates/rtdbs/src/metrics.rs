//! Run-level output metrics: everything the paper's figures and tables
//! report.

use pmm::TracePoint;
use simkit::metrics::Tally;

/// Average timing breakdown (Table 7), in seconds, over completed queries.
#[derive(Clone, Copy, Debug, Default)]
pub struct Timings {
    /// Admission waiting time: arrival → first memory grant.
    pub waiting: f64,
    /// Execution time: first grant → completion.
    pub execution: f64,
    /// Total response time.
    pub response: f64,
}

/// Per-class outcome counts.
#[derive(Clone, Debug, Default)]
pub struct ClassOutcome {
    /// Class label.
    pub name: String,
    /// Queries served (completed + missed).
    pub served: u64,
    /// Queries that missed their deadline.
    pub missed: u64,
}

impl ClassOutcome {
    /// Class miss ratio in percent.
    pub fn miss_pct(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            100.0 * self.missed as f64 / self.served as f64
        }
    }
}

/// Per-tenant aggregates of one run: the quantitative half of the
/// multi-tenant isolation story. Populated only for multi-tenant configs
/// (`SimConfig::tenants` non-empty), one entry per declared tenant.
#[derive(Clone, Debug, Default)]
pub struct TenantOutcome {
    /// Tenant label from the `TenantSpec`.
    pub name: String,
    /// The tenant's declared quota in pages.
    pub quota_pages: u32,
    /// Whether the quota is soft (may borrow idle pages).
    pub soft: bool,
    /// Queries billed to this tenant that left the system.
    pub served: u64,
    /// Of those, deadline misses.
    pub missed: u64,
    /// Time-averaged MPL of this tenant's queries holding memory.
    pub avg_mpl: f64,
    /// Time-averaged fraction of the quota in use (can exceed 1 for soft
    /// quotas while borrowing).
    pub quota_utilization: f64,
    /// Time-averaged pages held *beyond* the quota — the borrow volume.
    /// Always 0 for hard quotas.
    pub borrowed_pages: f64,
}

impl TenantOutcome {
    /// Tenant miss ratio in percent.
    pub fn miss_pct(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            100.0 * self.missed as f64 / self.served as f64
        }
    }
}

/// One point of the windowed miss-ratio time series (Figures 12–14).
#[derive(Clone, Copy, Debug)]
pub struct WindowPoint {
    /// Window end, seconds.
    pub t_secs: f64,
    /// Queries served in the window.
    pub served: u64,
    /// Misses in the window.
    pub missed: u64,
}

impl WindowPoint {
    /// Window miss ratio in percent.
    pub fn miss_pct(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            100.0 * self.missed as f64 / self.served as f64
        }
    }
}

/// Everything measured over one simulation run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Policy under test.
    pub policy: String,
    /// Queries served (completions + firm misses).
    pub served: u64,
    /// Deadline misses.
    pub missed: u64,
    /// Per-class breakdown.
    pub classes: Vec<ClassOutcome>,
    /// Per-tenant breakdown (empty for single-tenant configs): quota
    /// utilization, borrow volume, and outcomes per partition.
    pub tenants: Vec<TenantOutcome>,
    /// Time-averaged observed MPL (queries holding memory).
    pub avg_mpl: f64,
    /// CPU utilization over the run.
    pub cpu_util: f64,
    /// Mean disk utilization over the run.
    pub disk_util: f64,
    /// Table 7 timings (completed queries).
    pub timings: Timings,
    /// Mean number of memory-allocation changes per query (Figure 7).
    pub avg_fluctuations: f64,
    /// Windowed miss-ratio series.
    pub windows: Vec<WindowPoint>,
    /// Adaptive-policy decision trace (PMM only).
    pub trace: Vec<TracePoint>,
    /// 90% batch-means half-width of the miss ratio, when enough batches
    /// completed.
    pub miss_ci_half_width: Option<f64>,
    /// Total simulated seconds.
    pub sim_secs: f64,
    /// Calendar events dispatched over the run. A perf counter, not a
    /// behavior metric: optimizations may legitimately change it (e.g. by
    /// cancelling dead deadline events instead of dispatching them), so it
    /// is excluded from behavior goldens and from `BENCH_<figure>.json`.
    pub events: u64,
    /// Recorded inter-arrival gaps per workload class (seconds, in arrival
    /// order), populated only when `SimConfig::record_arrivals` is set.
    /// Each sequence replays exactly through `workload::Trace`
    /// (`ArrivalSpec::Trace { gaps, repeat: false }`). Excluded from
    /// goldens and figure JSON — it is trace tooling, not a metric.
    pub arrival_gaps: Vec<Vec<f64>>,
    /// Structured sim-time trace (arrivals, admissions, grants, CPU/I/O
    /// bursts, departures, policy decisions, batch boundaries), populated
    /// when `SimConfig::obs.trace` is not `TraceMode::Off`. Chronological;
    /// ring mode keeps only the most recent records. Excluded from goldens
    /// and figure JSON — observability, not a metric.
    pub obs_trace: Vec<obs::TraceRecord>,
    /// Frozen metrics registry (counters/gauges/histograms + windowed
    /// counter deltas), populated when `SimConfig::obs.metrics` is set.
    /// Excluded from goldens and figure JSON.
    pub metrics: Option<obs::MetricsReport>,
    /// Wall-clock self-profile per engine subsystem, populated when
    /// `SimConfig::obs.profile` is set. Machine-dependent: excluded from
    /// goldens, figure JSON, and every byte-identity guarantee.
    pub profile: Option<obs::ProfileReport>,
}

impl RunReport {
    /// Overall miss ratio in percent — the paper's headline metric.
    pub fn miss_pct(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            100.0 * self.missed as f64 / self.served as f64
        }
    }
}

/// Mutable accumulators the engine updates while running.
#[derive(Clone, Debug, Default)]
pub struct TimingTallies {
    /// Waiting-time tally (seconds).
    pub waiting: Tally,
    /// Execution-time tally (seconds).
    pub execution: Tally,
    /// Response-time tally (seconds).
    pub response: Tally,
    /// Memory fluctuation counts.
    pub fluctuations: Tally,
}

impl TimingTallies {
    /// Snapshot into the report form.
    pub fn summarize(&self) -> Timings {
        Timings {
            waiting: self.waiting.mean(),
            execution: self.execution.mean(),
            response: self.response.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_pct_handles_zero() {
        let r = RunReport::default();
        assert_eq!(r.miss_pct(), 0.0);
    }

    #[test]
    fn tenant_outcome_pct() {
        let t = TenantOutcome {
            name: "analytics".into(),
            quota_pages: 1280,
            soft: true,
            served: 50,
            missed: 10,
            avg_mpl: 2.0,
            quota_utilization: 0.8,
            borrowed_pages: 12.5,
        };
        assert!((t.miss_pct() - 20.0).abs() < 1e-12);
        assert_eq!(TenantOutcome::default().miss_pct(), 0.0);
    }

    #[test]
    fn class_outcome_pct() {
        let c = ClassOutcome {
            name: "Medium".into(),
            served: 200,
            missed: 30,
        };
        assert!((c.miss_pct() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn window_pct() {
        let w = WindowPoint {
            t_secs: 100.0,
            served: 10,
            missed: 5,
        };
        assert_eq!(w.miss_pct(), 50.0);
        let empty = WindowPoint {
            t_secs: 1.0,
            served: 0,
            missed: 0,
        };
        assert_eq!(empty.miss_pct(), 0.0);
    }

    #[test]
    fn timing_tallies_summarize() {
        let mut t = TimingTallies::default();
        t.waiting.record(2.0);
        t.waiting.record(4.0);
        t.execution.record(10.0);
        t.response.record(13.0);
        let s = t.summarize();
        assert_eq!(s.waiting, 3.0);
        assert_eq!(s.execution, 10.0);
        assert_eq!(s.response, 13.0);
    }
}
