//! The CPU manager: a single CPU scheduled by preemptive-resume Earliest
//! Deadline (Section 4.2: "The CPU ... is scheduled by the Earliest
//! Deadline discipline").
//!
//! A running burst is preempted the instant a more urgent query becomes
//! ready; the preempted burst keeps its progress and resumes when it again
//! has the earliest deadline. Completion events are cancelled on preemption
//! so no generation counters are needed.
//!
//! The ready queue is an 8-ary min-heap on `(deadline, query)` — the
//! calendar's heap idiom — instead of the seed's `BTreeMap`: push and
//! pop-min touch a flat `Vec` of 24-byte `Copy` entries with no node
//! allocation or tree rebalancing on the per-burst hot path. Unlike the
//! calendar no slab indirection is needed: entries carry their payload (the
//! burst's remaining instructions) inline and there are no cancellation
//! handles — the rare firm-abort removal scans the heap and re-heapifies.
//! `(deadline, query)` is unique (a query has at most one outstanding
//! burst), so pop-min is deterministic.

use crate::engine::Event;
use pmm::QueryId;
use simkit::calendar::EventHandle;
use simkit::metrics::Utilization;
use simkit::{Calendar, Duration, SimTime};

struct Running {
    query: QueryId,
    deadline: SimTime,
    remaining_instr: f64,
    started: SimTime,
    handle: EventHandle,
}

/// One parked burst: ED key plus remaining work.
#[derive(Clone, Copy, Debug)]
struct ReadyEntry {
    deadline: SimTime,
    query: QueryId,
    instr: f64,
}

impl ReadyEntry {
    #[inline]
    fn key(&self) -> (SimTime, QueryId) {
        (self.deadline, self.query)
    }
}

/// Min-heap of ready bursts keyed by `(deadline, query)`.
#[derive(Default)]
struct ReadyHeap {
    entries: Vec<ReadyEntry>,
}

impl ReadyHeap {
    const ARITY: usize = 8;

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn push(&mut self, entry: ReadyEntry) {
        self.entries.push(entry);
        self.sift_up(self.entries.len() - 1);
    }

    fn pop_min(&mut self) -> Option<ReadyEntry> {
        let min = *self.entries.first()?;
        let last = self.entries.pop().expect("heap is non-empty");
        if !self.entries.is_empty() {
            self.entries[0] = last;
            self.sift_down(0);
        }
        Some(min)
    }

    /// Remove every burst owned by `query` (at most one exists). Rare —
    /// only the firm-abort path — so a scan plus re-heapify is fine.
    fn remove_query(&mut self, query: QueryId) {
        let before = self.entries.len();
        self.entries.retain(|e| e.query != query);
        if self.entries.len() != before {
            // Floyd heapify restores the property after arbitrary removal.
            for i in (0..self.entries.len() / Self::ARITY + 1).rev() {
                self.sift_down(i);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        let entry = self.entries[i];
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.entries[parent].key() <= entry.key() {
                break;
            }
            self.entries[i] = self.entries[parent];
            i = parent;
        }
        self.entries[i] = entry;
    }

    fn sift_down(&mut self, mut i: usize) {
        if i >= self.entries.len() {
            return;
        }
        let entry = self.entries[i];
        let n = self.entries.len();
        loop {
            let first_child = i * Self::ARITY + 1;
            if first_child >= n {
                break;
            }
            let last_child = (first_child + Self::ARITY).min(n);
            let mut best = first_child;
            let mut best_key = self.entries[first_child].key();
            for c in first_child + 1..last_child {
                let k = self.entries[c].key();
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if best_key >= entry.key() {
                break;
            }
            self.entries[i] = self.entries[best];
            i = best;
        }
        self.entries[i] = entry;
    }
}

/// The preemptive-ED CPU.
pub struct CpuManager {
    mips: f64,
    running: Option<Running>,
    /// Ready bursts, min-heap on (deadline, query id).
    ready: ReadyHeap,
    /// Run-level and batch-level busy accounting.
    pub util_run: Utilization,
    pub util_batch: Utilization,
}

impl CpuManager {
    /// A CPU rated at `mips` million instructions per second.
    pub fn new(mips: f64, start: SimTime) -> Self {
        assert!(mips > 0.0, "MIPS rating must be positive");
        CpuManager {
            mips,
            running: None,
            ready: ReadyHeap::default(),
            util_run: Utilization::new(start),
            util_batch: Utilization::new(start),
        }
    }

    fn burst_duration(&self, instructions: f64) -> Duration {
        Duration::from_secs_f64(instructions / (self.mips * 1e6))
    }

    fn begin(
        &mut self,
        now: SimTime,
        query: QueryId,
        deadline: SimTime,
        instr: f64,
        cal: &mut Calendar<Event>,
    ) {
        let handle =
            cal.schedule(now + self.burst_duration(instr), Event::CpuDone { query });
        if self.running.is_none() {
            self.util_run.begin_busy(now);
            self.util_batch.begin_busy(now);
        }
        self.running = Some(Running {
            query,
            deadline,
            remaining_instr: instr,
            started: now,
            handle,
        });
    }

    /// Submit a CPU burst for `query`. Preempts the running burst if this
    /// one is more urgent.
    pub fn submit(
        &mut self,
        now: SimTime,
        query: QueryId,
        deadline: SimTime,
        instructions: u64,
        cal: &mut Calendar<Event>,
    ) {
        let instr = instructions as f64;
        match &self.running {
            None => self.begin(now, query, deadline, instr, cal),
            Some(run) if (deadline, query) < (run.deadline, run.query) => {
                // Preempt: bank the incumbent's progress.
                let run = self.running.take().expect("checked above");
                cal.cancel(run.handle);
                let executed = now.since(run.started).as_secs_f64() * self.mips * 1e6;
                let left = (run.remaining_instr - executed).max(0.0);
                self.ready.push(ReadyEntry {
                    deadline: run.deadline,
                    query: run.query,
                    instr: left,
                });
                self.begin(now, query, deadline, instr, cal);
            }
            Some(_) => {
                self.ready.push(ReadyEntry {
                    deadline,
                    query,
                    instr,
                });
            }
        }
    }

    /// Handle a `CpuDone` event: the running burst finished. Returns the
    /// finished query; the next ready burst (if any) is dispatched.
    pub fn on_done(
        &mut self,
        now: SimTime,
        query: QueryId,
        cal: &mut Calendar<Event>,
    ) -> QueryId {
        let run = self.running.take().expect("CpuDone with idle CPU");
        debug_assert_eq!(run.query, query, "completion routed to wrong query");
        self.util_run.end_busy(now);
        self.util_batch.end_busy(now);
        self.dispatch_next(now, cal);
        query
    }

    fn dispatch_next(&mut self, now: SimTime, cal: &mut Calendar<Event>) {
        if let Some(next) = self.ready.pop_min() {
            self.begin(now, next.query, next.deadline, next.instr, cal);
        }
    }

    /// Remove every trace of `query` (firm-deadline abort). If it was
    /// running, the CPU immediately moves on to the next ready burst.
    pub fn cancel(&mut self, now: SimTime, query: QueryId, cal: &mut Calendar<Event>) {
        self.ready.remove_query(query);
        if self.running.as_ref().is_some_and(|r| r.query == query) {
            let run = self.running.take().expect("checked");
            cal.cancel(run.handle);
            self.util_run.end_busy(now);
            self.util_batch.end_busy(now);
            self.dispatch_next(now, cal);
        }
    }

    /// True if some burst is executing.
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }

    /// Queries waiting for the CPU.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CpuManager, Calendar<Event>) {
        (CpuManager::new(40.0, SimTime::ZERO), Calendar::new())
    }

    fn expect_done(cal: &mut Calendar<Event>) -> (SimTime, QueryId) {
        match cal.pop() {
            Some((t, Event::CpuDone { query })) => (t, query),
            other => panic!("expected CpuDone, got {other:?}"),
        }
    }

    #[test]
    fn single_burst_timing() {
        let (mut cpu, mut cal) = setup();
        // 40 MIPS → 40 M instr takes 1 s.
        cpu.submit(
            SimTime::ZERO,
            QueryId(1),
            SimTime::from_secs(100),
            40_000_000,
            &mut cal,
        );
        let (t, q) = expect_done(&mut cal);
        assert_eq!(q, QueryId(1));
        assert_eq!(t, SimTime::from_secs(1));
        cpu.on_done(t, q, &mut cal);
        assert!(!cpu.is_busy());
    }

    #[test]
    fn fifo_within_equal_priority_by_id() {
        let (mut cpu, mut cal) = setup();
        let d = SimTime::from_secs(100);
        cpu.submit(SimTime::ZERO, QueryId(2), d, 40_000_000, &mut cal);
        cpu.submit(SimTime::ZERO, QueryId(1), d, 40_000_000, &mut cal);
        // Query 1 preempts query 2 (same deadline, lower id wins — a stable
        // deterministic tie-break).
        let (t, q) = expect_done(&mut cal);
        assert_eq!(q, QueryId(1));
        cpu.on_done(t, q, &mut cal);
        let (t2, q2) = expect_done(&mut cal);
        assert_eq!(q2, QueryId(2));
        assert_eq!(t2, SimTime::from_secs(2));
    }

    #[test]
    fn preemption_preserves_progress() {
        let (mut cpu, mut cal) = setup();
        // Query 9 (loose deadline) starts a 2 s burst.
        cpu.submit(
            SimTime::ZERO,
            QueryId(9),
            SimTime::from_secs(1000),
            80_000_000,
            &mut cal,
        );
        // At t = 0.5 s, urgent query 1 arrives with a 1 s burst.
        let t_preempt = SimTime::from_secs_f64(0.5);
        cpu.submit(
            t_preempt,
            QueryId(1),
            SimTime::from_secs(10),
            40_000_000,
            &mut cal,
        );
        // Query 1 finishes at 1.5 s.
        let (t, q) = expect_done(&mut cal);
        assert_eq!(q, QueryId(1));
        assert_eq!(t, SimTime::from_secs_f64(1.5));
        cpu.on_done(t, q, &mut cal);
        // Query 9 resumes with 1.5 s of work left → finishes at 3.0 s.
        let (t2, q2) = expect_done(&mut cal);
        assert_eq!(q2, QueryId(9));
        assert_eq!(t2, SimTime::from_secs(3));
    }

    #[test]
    fn lower_priority_does_not_preempt() {
        let (mut cpu, mut cal) = setup();
        cpu.submit(
            SimTime::ZERO,
            QueryId(1),
            SimTime::from_secs(10),
            40_000_000,
            &mut cal,
        );
        cpu.submit(
            SimTime::ZERO,
            QueryId(2),
            SimTime::from_secs(99),
            40_000_000,
            &mut cal,
        );
        assert_eq!(cpu.ready_len(), 1);
        let (_, q) = expect_done(&mut cal);
        assert_eq!(q, QueryId(1));
    }

    #[test]
    fn cancel_running_burst_dispatches_next() {
        let (mut cpu, mut cal) = setup();
        cpu.submit(
            SimTime::ZERO,
            QueryId(1),
            SimTime::from_secs(10),
            40_000_000,
            &mut cal,
        );
        cpu.submit(
            SimTime::ZERO,
            QueryId(2),
            SimTime::from_secs(20),
            40_000_000,
            &mut cal,
        );
        cpu.cancel(SimTime::from_secs_f64(0.25), QueryId(1), &mut cal);
        // Query 1's completion was cancelled; query 2 runs 0.25 → 1.25 s.
        let (t, q) = expect_done(&mut cal);
        assert_eq!(q, QueryId(2));
        assert_eq!(t, SimTime::from_secs_f64(1.25));
    }

    #[test]
    fn cancel_ready_burst() {
        let (mut cpu, mut cal) = setup();
        cpu.submit(
            SimTime::ZERO,
            QueryId(1),
            SimTime::from_secs(10),
            40_000_000,
            &mut cal,
        );
        cpu.submit(
            SimTime::ZERO,
            QueryId(2),
            SimTime::from_secs(20),
            40_000_000,
            &mut cal,
        );
        cpu.cancel(SimTime::ZERO, QueryId(2), &mut cal);
        assert_eq!(cpu.ready_len(), 0);
        assert!(cpu.is_busy());
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let (mut cpu, mut cal) = setup();
        cpu.submit(
            SimTime::ZERO,
            QueryId(1),
            SimTime::from_secs(10),
            40_000_000,
            &mut cal,
        );
        let (t, q) = expect_done(&mut cal);
        cpu.on_done(t, q, &mut cal);
        // Busy 1 s out of 4.
        let u = cpu.util_run.fraction(SimTime::from_secs(4));
        assert!((u - 0.25).abs() < 1e-9, "util {u}");
    }
}
