//! `rtdbs` — the firm real-time database system simulator of Section 4.
//!
//! This crate assembles the substrates into the paper's five-component
//! simulation model (Figure 2):
//!
//! * **Source** — arrivals per workload class from the `workload` crate's
//!   pluggable processes (Poisson, bursty MMPP, deterministic, trace
//!   replay), operand selection from the relation groups, slack-ratio
//!   deadline assignment, and multi-tenant class→partition mapping.
//! * **Query Manager** — drives the memory-adaptive operators from `exec`.
//! * **Buffer Manager** — reservation-based workspace memory ruled by a
//!   [`pmm::MemoryPolicy`], with firm-deadline admission waiting.
//! * **CPU Manager** — preemptive-resume Earliest Deadline CPU.
//! * **Disk Manager** — the `storage` disk farm (ED + elevator queues,
//!   prefetch caches).
//!
//! Entry point: [`engine::run_simulation`] with a [`config::SimConfig`]
//! (presets for every experiment in Section 5) and a policy. The result is
//! a [`metrics::RunReport`] carrying every quantity the paper plots.

pub mod config;
pub mod cpu;
pub mod engine;
pub mod faults;
pub mod metrics;

pub use config::{
    AlternationSchedule, ArrivalSpec, ConfigError, DeviceSpec, EvictionSpec, ObsConfig,
    PhaseSchedule, QueryType, ResourceConfig, Scenario, SimConfig, SsdSpec, TenantSpec,
    TraceMode, WorkloadClass,
};
pub use engine::{run_simulation, Event, Simulator};
pub use faults::{DegradationMode, FaultPlan, FaultSpec, RetrySpec};
pub use metrics::{ClassOutcome, RunReport, TenantOutcome, Timings, WindowPoint};
