//! Statistics collectors for simulation output analysis.
//!
//! * [`Tally`] — running mean / variance over discrete observations
//!   (Welford's algorithm), e.g. per-query response times.
//! * [`TimeWeighted`] — time-integrated average of a piecewise-constant
//!   signal, e.g. multiprogramming level or resource utilization.
//! * [`Utilization`] — busy-time tracker for a serially used resource.
//! * [`BatchMeans`] — the batch-means confidence-interval method the paper
//!   cites \[Sarg76\] for its 90% miss-ratio intervals.

use crate::time::{Duration, SimTime};

/// Running mean and variance of discrete observations (Welford).
#[derive(Clone, Debug, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another tally into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
    }

    /// Reset to empty.
    pub fn reset(&mut self) {
        *self = Tally::default();
    }
}

/// Time-weighted average of a piecewise-constant signal such as the MPL.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the collector
/// integrates `signal × dt` between updates.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    value: f64,
    last_update: SimTime,
    integral: f64,
    origin: SimTime,
}

impl TimeWeighted {
    /// Start tracking at time `start` with initial signal value `initial`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            last_update: start,
            integral: 0.0,
            origin: start,
        }
    }

    fn integrate_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_update).as_secs_f64();
        self.integral += self.value * dt;
        self.last_update = now;
    }

    /// Record that the signal takes value `v` from `now` onward.
    pub fn set(&mut self, now: SimTime, v: f64) {
        self.integrate_to(now);
        self.value = v;
    }

    /// Adjust the signal by `delta` (e.g. +1 on admission, −1 on departure).
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current instantaneous value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-weighted mean over `[origin, now]`.
    pub fn mean(&mut self, now: SimTime) -> f64 {
        self.integrate_to(now);
        let span = now.since(self.origin).as_secs_f64();
        if span <= 0.0 {
            self.value
        } else {
            self.integral / span
        }
    }

    /// Restart the averaging window at `now`, keeping the current value.
    pub fn reset_window(&mut self, now: SimTime) {
        self.integrate_to(now);
        self.integral = 0.0;
        self.origin = now;
        self.last_update = now;
    }
}

/// Busy-fraction tracker for a resource that serves one request at a time
/// (the CPU, or one disk).
#[derive(Clone, Debug)]
pub struct Utilization {
    busy: Duration,
    busy_since: Option<SimTime>,
    window_start: SimTime,
}

impl Utilization {
    /// Start tracking at `start`, idle.
    pub fn new(start: SimTime) -> Self {
        Utilization {
            busy: Duration::ZERO,
            busy_since: None,
            window_start: start,
        }
    }

    /// Mark the resource busy from `now`. No-op if already busy.
    pub fn begin_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Mark the resource idle from `now`. No-op if already idle.
    pub fn end_busy(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy += now.since(since);
        }
    }

    /// Busy fraction over the current window, in `[0, 1]`.
    pub fn fraction(&self, now: SimTime) -> f64 {
        let span = now.since(self.window_start).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let mut busy = self.busy;
        if let Some(since) = self.busy_since {
            busy += now.since(since);
        }
        (busy.as_secs_f64() / span).min(1.0)
    }

    /// Restart the measurement window at `now` (busy state carries over).
    pub fn reset_window(&mut self, now: SimTime) {
        self.busy = Duration::ZERO;
        self.window_start = now;
        if self.busy_since.is_some() {
            self.busy_since = Some(now);
        }
    }
}

/// Batch-means confidence intervals \[Sarg76\].
///
/// Observations are grouped into fixed-size batches; batch averages are
/// approximately independent, so a t-style interval over batch means is a
/// valid interval for the steady-state mean.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_n: u64,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Collector with the given batch size (observations per batch).
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batch_means: Vec::new(),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batch_means
                .push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Grand mean over completed batches (0.0 if none).
    pub fn mean(&self) -> f64 {
        if self.batch_means.is_empty() {
            return 0.0;
        }
        self.batch_means.iter().sum::<f64>() / self.batch_means.len() as f64
    }

    /// Half-width of an approximate confidence interval at `z` standard
    /// normal quantiles (e.g. `z = 1.645` for 90%). Returns `None` with
    /// fewer than two completed batches.
    pub fn half_width(&self, z: f64) -> Option<f64> {
        let k = self.batch_means.len();
        if k < 2 {
            return None;
        }
        let mean = self.mean();
        let var = self
            .batch_means
            .iter()
            .map(|m| (m - mean) * (m - mean))
            .sum::<f64>()
            / (k - 1) as f64;
        Some(z * (var / k as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_mean_and_variance() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 4 * 8/7.
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.count(), 8);
    }

    #[test]
    fn tally_empty_is_zero() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
    }

    #[test]
    fn tally_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..20] {
            a.record(x);
        }
        for &x in &xs[20..] {
            b.record(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mpl() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::from_secs(10), 1.0); // MPL 0 for 10 s
        tw.add(SimTime::from_secs(20), 1.0); // MPL 1 for 10 s
        tw.add(SimTime::from_secs(30), -2.0); // MPL 2 for 10 s
                                              // signal: 0,1,2 over equal spans then 0
        let mean = tw.mean(SimTime::from_secs(30));
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_window_reset() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 4.0);
        tw.reset_window(SimTime::from_secs(100));
        let mean = tw.mean(SimTime::from_secs(200));
        assert!((mean - 4.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_half_busy() {
        let mut u = Utilization::new(SimTime::ZERO);
        u.begin_busy(SimTime::ZERO);
        u.end_busy(SimTime::from_secs(5));
        let f = u.fraction(SimTime::from_secs(10));
        assert!((f - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_open_interval_counts() {
        let mut u = Utilization::new(SimTime::ZERO);
        u.begin_busy(SimTime::from_secs(2));
        // still busy at query time
        let f = u.fraction(SimTime::from_secs(4));
        assert!((f - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_reset_keeps_busy_state() {
        let mut u = Utilization::new(SimTime::ZERO);
        u.begin_busy(SimTime::ZERO);
        u.reset_window(SimTime::from_secs(10));
        let f = u.fraction(SimTime::from_secs(20));
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batch_means_interval_shrinks() {
        let mut bm = BatchMeans::new(10);
        // Deterministic alternating signal with mean 0.5.
        for i in 0..1000 {
            bm.record(if i % 2 == 0 { 0.0 } else { 1.0 });
        }
        assert_eq!(bm.batches(), 100);
        assert!((bm.mean() - 0.5).abs() < 1e-9);
        let hw = bm.half_width(1.645).unwrap();
        assert!(hw < 0.01, "half width {hw}");
    }

    #[test]
    fn batch_means_needs_two_batches() {
        let mut bm = BatchMeans::new(100);
        for _ in 0..150 {
            bm.record(1.0);
        }
        assert_eq!(bm.batches(), 1);
        assert!(bm.half_width(1.645).is_none());
    }
}
