//! The event calendar: a time-ordered priority queue with deterministic
//! FIFO tie-breaking and O(1) cancellation via generation handles.
//!
//! Events scheduled for the same instant pop in scheduling order, which keeps
//! simulation runs reproducible. Cancellation is *lazy*: a cancelled entry
//! stays in the heap but is skipped when popped. This is the standard
//! technique for DES calendars, and it keeps `cancel` O(1).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A handle identifying one scheduled event, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The event calendar.
///
/// `E` is the caller's event payload type. The calendar itself knows nothing
/// about event semantics; the simulation main loop pops events and dispatches
/// them.
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: std::collections::HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// An empty calendar with the clock at `t = 0`.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock: the past is immutable.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a silent no-op, which lets callers
    /// keep stale handles without bookkeeping.
    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.0);
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    /// Returns `None` when the calendar is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "calendar order violated");
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (non-cancelled) events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(30), "c");
        cal.schedule(SimTime(10), "a");
        cal.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(2), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(100), ());
        cal.pop();
        cal.schedule(SimTime(50), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut cal = Calendar::new();
        let h1 = cal.schedule(SimTime(1), "dead");
        cal.schedule(SimTime(2), "live");
        cal.cancel(h1);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().map(|(_, e)| e), Some("live"));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime(1), ());
        cal.pop();
        cal.cancel(h); // must not affect later events
        cal.schedule(SimTime(2), ());
        assert!(cal.pop().is_some());
    }

    #[test]
    fn peek_respects_cancellation() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime(1), "x");
        cal.schedule(SimTime(7), "y");
        cal.cancel(h);
        assert_eq!(cal.peek_time(), Some(SimTime(7)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(10), 1u32);
        let (t, _) = cal.pop().unwrap();
        cal.schedule(t + Duration(5), 2u32);
        cal.schedule(t + Duration(1), 3u32);
        assert_eq!(cal.pop().map(|(_, e)| e), Some(3));
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
        assert_eq!(cal.events_dispatched(), 3);
    }
}
