//! The event calendar: a time-ordered priority queue with deterministic
//! FIFO tie-breaking and O(1) cancellation via generation handles.
//!
//! Events scheduled for the same instant pop in scheduling order, which keeps
//! simulation runs reproducible. The implementation is an 8-ary min-heap of
//! `(time, seq)` keys over a slab of payload slots:
//!
//! * **No hashing on the hot path.** The seed implementation tracked
//!   cancellations in a `HashSet<u64>`, paying a SipHash probe on *every*
//!   pop and peek. Here a handle is a `(slot, generation)` pair: cancellation
//!   is one bounds check plus a generation compare — O(1) with no hash —
//!   and stale handles (the event already fired) fail the generation check
//!   instead of leaking tombstones.
//! * **Cancellation stays lazy.** A cancelled entry keeps its place in the
//!   heap and is discarded when it surfaces, the standard DES-calendar
//!   technique. Unlike the seed, the live-event count is exact: `len()`
//!   counts scheduled-minus-(fired+cancelled), and cancelling after the
//!   event fired is a true no-op (the seed undercounted forever after).
//! * **8-ary layout.** Sift-down visits a third of the levels of a binary heap
//!   with better cache locality; keys are compact `(u64, u64, u32)` triples
//!   stored inline, payloads stay put in the slab.
//! * **Front-buffer fast path.** The dominant simulator pattern is
//!   schedule-then-pop-min: a handler schedules the next completion, which
//!   immediately pops as the global minimum. An event strictly earlier than
//!   every queued entry bypasses the heap into a one-element front buffer;
//!   the subsequent pop takes it with no sift at all. Strictly-earlier is
//!   the only safe admission test — `seq` grows monotonically, so a
//!   same-time event must sit behind existing entries to keep FIFO ties.

use crate::time::SimTime;

/// A handle identifying one scheduled event, used for cancellation. Stale
/// handles (fired or already-cancelled events) are harmless.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle {
    slot: u32,
    gen: u32,
}

/// Heap key: time-ordered, FIFO within a tie, pointing at its payload slot.
#[derive(Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// One payload slot. `gen` advances every time the slot is vacated, so
/// handles into previous occupancies can never alias the current one.
struct Slot<E> {
    gen: u32,
    cancelled: bool,
    payload: Option<E>,
}

/// The event calendar.
///
/// `E` is the caller's event payload type. The calendar itself knows nothing
/// about event semantics; the simulation main loop pops events and dispatches
/// them.
pub struct Calendar<E> {
    heap: Vec<HeapEntry>,
    /// Fast-path buffer: when `Some`, this entry's key is strictly smaller
    /// than every key in `heap`, so it is the next entry to surface. Its
    /// payload lives in `slots` like any other event (cancellation works
    /// unchanged); only the heap position is elided.
    front: Option<HeapEntry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    live: usize,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// An empty calendar with the clock at `t = 0`.
    pub fn new() -> Self {
        Calendar {
            heap: Vec::new(),
            front: None,
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            live: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock: the past is immutable.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.payload.is_none(), "free slot must be vacant");
                s.cancelled = false;
                s.payload = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slot count fits u32");
                self.slots.push(Slot {
                    gen: 0,
                    cancelled: false,
                    payload: Some(payload),
                });
                slot
            }
        };
        let entry = HeapEntry { at, seq, slot };
        match self.front {
            // Strictly earlier than the buffered minimum: the new event
            // becomes the front and the old front rejoins the heap (it is
            // still smaller than everything there, so the invariant holds).
            Some(front) if entry.key() < front.key() => {
                self.front = Some(entry);
                self.heap.push(front);
                self.sift_up(self.heap.len() - 1);
            }
            Some(_) => {
                self.heap.push(entry);
                self.sift_up(self.heap.len() - 1);
            }
            // No front yet: admit the new event if it precedes the whole
            // heap (cancelled entries only over-approximate the minimum,
            // which keeps the test conservative and correct).
            None => {
                if self
                    .heap
                    .first()
                    .is_none_or(|root| entry.key() < root.key())
                {
                    self.front = Some(entry);
                } else {
                    self.heap.push(entry);
                    self.sift_up(self.heap.len() - 1);
                }
            }
        }
        self.live += 1;
        EventHandle {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a silent no-op, which lets callers
    /// keep stale handles without bookkeeping.
    pub fn cancel(&mut self, handle: EventHandle) {
        if let Some(s) = self.slots.get_mut(handle.slot as usize) {
            if s.gen == handle.gen && s.payload.is_some() && !s.cancelled {
                s.cancelled = true;
                self.live -= 1;
            }
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    /// Returns `None` when the calendar is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let entry = match self.front.take() {
                Some(front) => front,
                None => self.pop_root()?,
            };
            let (payload, was_cancelled) = self.vacate(entry.slot);
            if was_cancelled {
                continue;
            }
            debug_assert!(entry.at >= self.now, "calendar order violated");
            self.now = entry.at;
            self.popped += 1;
            self.live -= 1;
            return Some((entry.at, payload));
        }
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if let Some(front) = self.front {
            if !self.slots[front.slot as usize].cancelled {
                return Some(front.at);
            }
            // Vacate the cancelled front eagerly: its slot returns to the
            // free list so a later `schedule` can reuse it, and the stale
            // entry can never shadow that new occupant.
            self.front = None;
            self.vacate(front.slot);
        }
        loop {
            let root = *self.heap.first()?;
            if self.slots[root.slot as usize].cancelled {
                self.pop_root();
                self.vacate(root.slot);
                continue;
            }
            return Some(root.at);
        }
    }

    /// Number of live (non-cancelled) events still scheduled.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Take the payload out of `slot` and return it to the free list,
    /// advancing the generation so outstanding handles go stale. Returns
    /// the payload and whether the entry had been cancelled.
    fn vacate(&mut self, slot: u32) -> (E, bool) {
        let s = &mut self.slots[slot as usize];
        let payload = s.payload.take().expect("heap entry has a payload");
        let was_cancelled = s.cancelled;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        (payload, was_cancelled)
    }

    // ----- 8-ary heap on (at, seq) ---------------------------------------

    const ARITY: usize = 8;

    /// Remove and return the root entry, restoring the heap property.
    fn pop_root(&mut self) -> Option<HeapEntry> {
        let root = *self.heap.first()?;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        Some(root)
    }

    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.heap[parent].key() <= entry.key() {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = entry;
    }

    fn sift_down(&mut self, mut i: usize) {
        let entry = self.heap[i];
        let n = self.heap.len();
        loop {
            let first_child = i * Self::ARITY + 1;
            if first_child >= n {
                break;
            }
            let last_child = (first_child + Self::ARITY).min(n);
            let mut best = first_child;
            let mut best_key = self.heap[first_child].key();
            for c in first_child + 1..last_child {
                let k = self.heap[c].key();
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if best_key >= entry.key() {
                break;
            }
            self.heap[i] = self.heap[best];
            i = best;
        }
        self.heap[i] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(30), "c");
        cal.schedule(SimTime(10), "a");
        cal.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| cal.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(2), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(100), ());
        cal.pop();
        cal.schedule(SimTime(50), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut cal = Calendar::new();
        let h1 = cal.schedule(SimTime(1), "dead");
        cal.schedule(SimTime(2), "live");
        cal.cancel(h1);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().map(|(_, e)| e), Some("live"));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime(1), ());
        cal.pop();
        cal.cancel(h); // must not affect later events
        cal.schedule(SimTime(2), ());
        assert!(cal.pop().is_some());
    }

    #[test]
    fn cancel_after_fire_keeps_len_exact() {
        // Seed-implementation regression: a cancel() after the event fired
        // left a stale tombstone that undercounted len() forever.
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime(1), ());
        cal.pop();
        cal.cancel(h);
        cal.schedule(SimTime(2), ());
        assert_eq!(cal.len(), 1, "one live event is queued");
        assert!(!cal.is_empty());
        cal.cancel(h); // still stale, still a no-op
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn double_cancel_counts_once() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime(1), ());
        cal.schedule(SimTime(2), ());
        cal.cancel(h);
        cal.cancel(h);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().map(|(t, ())| t), Some(SimTime(2)));
    }

    #[test]
    fn stale_handle_does_not_cancel_slot_reuse() {
        // The slot of a fired event is reused by a new event; the old handle
        // must not be able to cancel the new occupant.
        let mut cal = Calendar::new();
        let h_old = cal.schedule(SimTime(1), "old");
        cal.pop();
        cal.schedule(SimTime(2), "new"); // reuses the vacated slot
        cal.cancel(h_old);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().map(|(_, e)| e), Some("new"));
    }

    #[test]
    fn peek_respects_cancellation() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime(1), "x");
        cal.schedule(SimTime(7), "y");
        cal.cancel(h);
        assert_eq!(cal.peek_time(), Some(SimTime(7)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(10), 1u32);
        let (t, _) = cal.pop().unwrap();
        cal.schedule(t + Duration(5), 2u32);
        cal.schedule(t + Duration(1), 3u32);
        assert_eq!(cal.pop().map(|(_, e)| e), Some(3));
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
        assert_eq!(cal.events_dispatched(), 3);
    }

    #[test]
    fn front_fast_path_preserves_fifo_ties() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime(10), 0u32); // buffered front
        cal.schedule(SimTime(10), 1u32); // tie: must queue behind, not displace
        cal.schedule(SimTime(5), 2u32); // strictly earlier: displaces front
        assert_eq!(cal.pop().map(|(_, e)| e), Some(2));
        assert_eq!(cal.pop().map(|(_, e)| e), Some(0));
        assert_eq!(cal.pop().map(|(_, e)| e), Some(1));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn schedule_pop_chain_never_touches_heap() {
        // The pattern the fast path exists for: each handler schedules the
        // next minimum, which pops immediately.
        let mut cal = Calendar::new();
        cal.schedule(SimTime(1_000_000), "horizon");
        for i in 1..=100u64 {
            cal.schedule(SimTime(i), "step");
            assert_eq!(cal.pop(), Some((SimTime(i), "step")));
        }
        assert_eq!(cal.heap.len(), 1, "the chain must bypass the heap");
        assert_eq!(cal.pop().map(|(_, e)| e), Some("horizon"));
    }

    #[test]
    fn cancelled_front_slot_reuse_is_not_shadowed() {
        // Cancel the buffered minimum, peek (which vacates it and frees the
        // slot), then schedule into the freed slot: the fast path must
        // surface the new occupant, and the stale handle must stay inert.
        let mut cal = Calendar::new();
        let h_min = cal.schedule(SimTime(1), "min");
        cal.schedule(SimTime(9), "later");
        cal.cancel(h_min);
        assert_eq!(cal.peek_time(), Some(SimTime(9)));
        assert_eq!(cal.len(), 1);
        cal.schedule(SimTime(3), "reused"); // reoccupies the vacated slot
        assert_eq!(cal.peek_time(), Some(SimTime(3)));
        cal.cancel(h_min); // stale generation: no-op
        assert_eq!(cal.len(), 2);
        assert_eq!(cal.pop().map(|(_, e)| e), Some("reused"));
        assert_eq!(cal.pop().map(|(_, e)| e), Some("later"));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancelled_front_is_skipped_by_pop() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime(2), "front");
        cal.schedule(SimTime(4), "heap");
        cal.cancel(h);
        assert_eq!(cal.pop().map(|(_, e)| e), Some("heap"));
        assert!(cal.pop().is_none());
        assert_eq!(cal.len(), 0);
    }

    #[test]
    fn heavy_interleaving_stays_sorted() {
        // Deterministic pseudo-random schedule/pop mix; output must be
        // non-decreasing in time and FIFO within ties.
        let mut cal = Calendar::new();
        let mut x = 0x9E37_79B9u64;
        let mut popped: Vec<(SimTime, u64)> = Vec::new();
        for seq in 0..2_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(seq);
            let dt = x % 50;
            cal.schedule(cal.now() + Duration(dt), seq);
            if x.is_multiple_of(3) {
                if let Some((t, s)) = cal.pop() {
                    popped.push((t, s));
                }
            }
        }
        while let Some((t, s)) = cal.pop() {
            popped.push((t, s));
        }
        assert_eq!(popped.len(), 2_000);
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }
}
