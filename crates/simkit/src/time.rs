//! Virtual time for the simulation.
//!
//! Time is a fixed-point count of **microseconds** since simulation start.
//! Fixed point (rather than `f64`) keeps the event calendar total-ordered and
//! makes runs bit-reproducible regardless of summation order.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of microsecond ticks per simulated second.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An instant in virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "inactive" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole simulated seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest tick.
    ///
    /// Negative inputs clamp to zero; the simulation has no notion of time
    /// before its epoch.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_ticks(secs))
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole simulated seconds.
    pub fn from_secs(secs: u64) -> Self {
        Duration(secs * TICKS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest tick.
    pub fn from_secs_f64(secs: f64) -> Self {
        Duration(secs_to_ticks(secs))
    }

    /// Construct from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Duration(secs_to_ticks(ms / 1e3))
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True if this span is zero ticks long.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale the span by a non-negative factor, rounding to the nearest tick.
    pub fn scale(self, factor: f64) -> Duration {
        debug_assert!(factor >= 0.0, "durations cannot be negative");
        Duration((self.0 as f64 * factor).round() as u64)
    }
}

fn secs_to_ticks(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else {
        (secs * TICKS_PER_SEC as f64).round() as u64
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = Duration::from_millis_f64(16.7);
        let t2 = t + d;
        assert_eq!(t2.0, 10_016_700);
        assert_eq!(t2 - t, d);
        // Saturating subtraction: earlier.since(later) == 0.
        assert_eq!(t.since(t2), Duration::ZERO);
    }

    #[test]
    fn duration_scale_rounds() {
        let d = Duration(10);
        assert_eq!(d.scale(0.25), Duration(3)); // 2.5 rounds to 3 (round half up)
        assert_eq!(d.scale(2.0), Duration(20));
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime(5);
        let b = SimTime(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn millis_constructor() {
        assert_eq!(Duration::from_millis_f64(16.7).0, 16_700);
        assert_eq!(Duration::from_millis_f64(0.617).0, 617);
    }
}
