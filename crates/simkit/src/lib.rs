//! `simkit` — a small, deterministic discrete-event simulation substrate.
//!
//! The original paper's simulator was written in DeNet \[Livn90\], a
//! process-oriented simulation language. DeNet provides three primitives the
//! model relies on: a virtual clock with an event calendar, independent
//! random-number streams, and statistics collectors. This crate provides the
//! same primitives as a library:
//!
//! * [`SimTime`] / [`Duration`] — fixed-point virtual time (microseconds).
//! * [`Calendar`] — the event calendar (a priority queue keyed by time with
//!   deterministic FIFO tie-breaking).
//! * [`rng`] — a seedable xoshiro256++ generator with stream splitting, plus
//!   the distributions the workload model needs (exponential inter-arrival
//!   times, uniform ranges).
//! * [`metrics`] — counters, Welford tallies, time-weighted averages and
//!   batch-means confidence intervals, mirroring the paper's use of the batch
//!   means method \[Sarg76\] for its 90% confidence intervals.
//!
//! Everything is single-threaded and fully deterministic: two runs with the
//! same seed produce bit-identical traces, which the integration test suite
//! checks explicitly.

pub mod calendar;
pub mod metrics;
pub mod rng;
pub mod time;

pub use calendar::Calendar;
pub use rng::{Rng, SeedSequence};
pub use time::{Duration, SimTime};
