//! Deterministic random number generation for the simulation.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 — the combination recommended by the xoshiro authors. We
//! implement it here rather than pulling in `rand` so that (a) the simulator
//! core is dependency-free, and (b) stream derivation is explicit: DeNet-style
//! models want one *independent* stream per stochastic component (arrivals,
//! relation choice, slack ratios, ...) so that changing how one component
//! consumes randomness does not perturb the others. [`SeedSequence`] provides
//! that derivation.

/// SplitMix64 step; used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudorandom generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one invalid state for xoshiro; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in the half-open interval `[0, 1)`, with 53 bits of
    /// precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reached with probability < bound / 2^64.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponentially distributed sample with the given rate parameter
    /// (mean `1 / rate`). Used for Poisson-process inter-arrival times.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // 1 - u avoids ln(0); next_f64 never returns 1.0 exactly.
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Pick an index in `[0, n)` uniformly.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }
}

/// Derives independent named streams from one master seed.
///
/// Each call to [`SeedSequence::stream`] hashes the label together with the
/// master seed, so streams are stable across runs and independent of the
/// order in which they are created.
#[derive(Clone, Debug)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// A sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// Derive the generator for the stream named `label`.
    pub fn stream(&self, label: &str) -> Rng {
        let mut h = self.master ^ 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV-1a prime
        }
        let mut sm = h;
        Rng::new(splitmix64(&mut sm))
    }

    /// Derive a numbered sub-stream, e.g. one per workload class.
    pub fn substream(&self, label: &str, index: u64) -> Rng {
        self.stream(&format!("{label}#{index}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro256pp() {
        // First outputs for the all-SplitMix64 seeding of seed 0 must be
        // stable forever; these values pin the implementation.
        let mut rng = Rng::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        let mut rng2 = Rng::new(0);
        assert_eq!(a, rng2.next_u64());
        assert_eq!(b, rng2.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Rng::new(42);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.below(8) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10_000 per bucket; allow 5% deviation.
            assert!(
                (9_500..=10_500).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn int_in_inclusive() {
        let mut rng = Rng::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.int_in(5, 7);
            assert!((5..=7).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 7;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng::new(99);
        let rate = 0.07;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(rate)).sum();
        let mean = sum / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn uniform_mean_is_midpoint() {
        let mut rng = Rng::new(123);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.uniform(2.5, 7.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn streams_are_independent_and_stable() {
        let seq = SeedSequence::new(2024);
        let mut a1 = seq.stream("arrivals");
        let mut a2 = seq.stream("arrivals");
        let mut b = seq.stream("slack");
        let x = a1.next_u64();
        assert_eq!(x, a2.next_u64(), "same label must give same stream");
        assert_ne!(x, b.next_u64(), "different labels must differ");
    }

    #[test]
    fn substreams_differ_by_index() {
        let seq = SeedSequence::new(5);
        let mut c0 = seq.substream("class", 0);
        let mut c1 = seq.substream("class", 1);
        assert_ne!(c0.next_u64(), c1.next_u64());
    }
}
