//! Model-based property test: the slab/8-ary-heap calendar must agree with
//! a naive reference implementation under arbitrary interleavings of
//! schedule / cancel / pop / peek — including cancels aimed at handles that
//! already fired or were already cancelled (stale-handle no-ops).

use proptest::prelude::*;
use simkit::time::{Duration, SimTime};
use simkit::Calendar;

/// The reference: a flat list scanned for the minimum `(at, seq)` live
/// entry. Obviously correct, obviously slow.
#[derive(Default)]
struct ModelCalendar {
    /// `(at, seq, cancelled, fired)` per scheduled event.
    events: Vec<(SimTime, u64, bool, bool)>,
    now: SimTime,
}

impl ModelCalendar {
    fn schedule(&mut self, at: SimTime) -> usize {
        let seq = self.events.len() as u64;
        self.events.push((at, seq, false, false));
        self.events.len() - 1
    }

    fn cancel(&mut self, idx: usize) {
        let e = &mut self.events[idx];
        if !e.2 && !e.3 {
            e.2 = true;
        }
    }

    fn next_live(&self) -> Option<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.2 && !e.3)
            .min_by_key(|(_, e)| (e.0, e.1))
            .map(|(i, _)| i)
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let i = self.next_live()?;
        self.events[i].3 = true;
        self.now = self.events[i].0;
        Some((self.events[i].0, self.events[i].1))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.next_live().map(|i| self.events[i].0)
    }

    fn len(&self) -> usize {
        self.events.iter().filter(|e| !e.2 && !e.3).count()
    }
}

/// Regression for the front-buffer fast path: cancelling the minimum and
/// then scheduling into its freed slot must surface the new occupant — the
/// stale front entry must neither shadow it in `peek_time` nor let the old
/// handle cancel it.
#[test]
fn cancel_min_then_reuse_slot_keeps_peek_fresh() {
    let mut cal: Calendar<&str> = Calendar::new();
    let h_min = cal.schedule(SimTime(10), "min");
    cal.schedule(SimTime(50), "later");
    cal.cancel(h_min);
    // The peek drops the cancelled minimum and frees its slot.
    assert_eq!(cal.peek_time(), Some(SimTime(50)));
    assert_eq!(cal.len(), 1);
    // This reuses the freed slot and becomes the new minimum.
    let h_new = cal.schedule(SimTime(20), "reused");
    assert_eq!(cal.peek_time(), Some(SimTime(20)));
    // The stale handle aliases the slot but not the generation: a cancel
    // through it must not touch the new occupant.
    cal.cancel(h_min);
    assert_eq!(cal.len(), 2);
    assert_eq!(cal.peek_time(), Some(SimTime(20)));
    assert_eq!(cal.pop(), Some((SimTime(20), "reused")));
    assert_eq!(cal.pop(), Some((SimTime(50), "later")));
    assert_eq!(cal.pop(), None);
    // And the fresh handle is stale now too.
    cal.cancel(h_new);
    assert_eq!(cal.len(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive both calendars with the same random operation tape and compare
    /// every observable: pop order and times, peeks, lengths, clock.
    #[test]
    fn calendar_agrees_with_reference_model(
        ops in proptest::collection::vec((0u8..8, 0u64..1_000), 0..400),
    ) {
        let mut cal: Calendar<u64> = Calendar::new();
        let mut model = ModelCalendar::default();
        // Handles of every event ever scheduled, fired or not — cancels are
        // aimed at arbitrary entries so stale handles get exercised.
        let mut handles = Vec::new();
        for (op, arg) in ops {
            match op {
                // Schedule (biased: half the tape), with frequent ties to
                // stress FIFO ordering.
                0..=3 => {
                    let at = model.now + Duration(arg % 40);
                    let h = cal.schedule(at, model.events.len() as u64);
                    let idx = model.schedule(at);
                    handles.push((h, idx));
                }
                4 | 5 => {
                    // Cancel an arbitrary (possibly stale) handle.
                    if !handles.is_empty() {
                        let (h, idx) = handles[arg as usize % handles.len()];
                        cal.cancel(h);
                        model.cancel(idx);
                    }
                }
                6 => {
                    let got = cal.pop();
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                    prop_assert_eq!(cal.now(), model.now);
                }
                _ => {
                    prop_assert_eq!(cal.peek_time(), model.peek_time());
                }
            }
            prop_assert_eq!(cal.len(), model.len());
            prop_assert_eq!(cal.is_empty(), model.len() == 0);
        }
        // Drain: the full remaining sequence must match exactly.
        loop {
            let got = cal.pop();
            let want = model.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
