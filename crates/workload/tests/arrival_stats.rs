//! Statistical validation of the arrival processes: empirical mean and
//! coefficient of variation against closed-form values, using the same
//! `stats` machinery PMM itself runs on.

use simkit::{Rng, SeedSequence};
use stats::SampleSummary;
use workload::{ArrivalProcess, ArrivalSpec, Deterministic, Mmpp, Poisson};

/// Empirical `(mean, cv)` of `n` inter-arrival gaps.
fn gap_stats(process: &mut dyn ArrivalProcess, rng: &mut Rng, n: usize) -> (f64, f64) {
    let (mut sum, mut sum_sq) = (0.0, 0.0);
    for _ in 0..n {
        let g = process
            .next_interarrival(rng)
            .expect("process stays alive")
            .as_secs_f64();
        sum += g;
        sum_sq += g * g;
    }
    let mean = sum / n as f64;
    let var = (sum_sq - sum * sum / n as f64) / (n as f64 - 1.0);
    (mean, var.sqrt() / mean)
}

#[test]
fn poisson_gaps_match_exponential_closed_form() {
    let mut rng = SeedSequence::new(2024).stream("poisson-stats");
    let rate = 0.07;
    let n = 200_000;
    let (mean, cv) = gap_stats(&mut Poisson::new(rate), &mut rng, n);
    let expected = 1.0 / rate;
    assert!(
        (mean - expected).abs() / expected < 0.02,
        "mean {mean} vs {expected}"
    );
    // Exponential gaps: CV = 1.
    assert!((cv - 1.0).abs() < 0.02, "cv {cv}");
}

#[test]
fn mmpp_mean_matches_stationary_closed_form() {
    // Asymmetric states: λ = (0.02, 0.20), sojourn means (300 s, 100 s).
    // π₀ = σ₁/(σ₀+σ₁) = 0.75 ⇒ λ̄ = 0.065, mean gap = 1/λ̄.
    let mut m = Mmpp::new([0.02, 0.20], [1.0 / 300.0, 1.0 / 100.0]);
    let closed_form = m.mean_rate();
    assert!((closed_form - 0.065).abs() < 1e-12);
    let mut rng = SeedSequence::new(7).stream("mmpp-stats");
    let n = 200_000;
    let (mean, cv) = gap_stats(&mut m, &mut rng, n);
    // The renewal-reward mean needs a long horizon; 2% is comfortable at n.
    let expected = 1.0 / closed_form;
    assert!(
        (mean - expected).abs() / expected < 0.02,
        "mean {mean} vs {expected}"
    );
    // Markov modulation makes gaps over-dispersed relative to Poisson.
    assert!(cv > 1.1, "MMPP must be burstier than Poisson, cv {cv}");
}

#[test]
fn mmpp_with_equal_rates_degenerates_to_poisson() {
    let mut m = Mmpp::bursty(0.06, 1.0, 600.0);
    let mut rng = SeedSequence::new(3).stream("mmpp-degenerate");
    let (mean, cv) = gap_stats(&mut m, &mut rng, 100_000);
    assert!(
        (mean - 1.0 / 0.06).abs() / (1.0 / 0.06) < 0.02,
        "mean {mean}"
    );
    assert!((cv - 1.0).abs() < 0.03, "cv {cv}");
}

#[test]
fn burstier_ratio_raises_cv_monotonically() {
    let mut last_cv = 0.0;
    for ratio in [1.0, 4.0, 16.0] {
        let mut m = Mmpp::bursty(0.06, ratio, 600.0);
        let mut rng = SeedSequence::new(11).stream("mmpp-ratio");
        let (_, cv) = gap_stats(&mut m, &mut rng, 100_000);
        assert!(
            cv > last_cv,
            "cv must grow with the burst ratio: {cv} after {last_cv}"
        );
        last_cv = cv;
    }
}

#[test]
fn deterministic_has_zero_variance() {
    let mut rng = Rng::new(5);
    let (mean, cv) = gap_stats(&mut Deterministic::new(0.1), &mut rng, 1_000);
    assert!((mean - 10.0).abs() < 1e-9);
    assert!(cv.abs() < 1e-12);
}

#[test]
fn empirical_means_pass_hypothesis_test_against_closed_form() {
    // Frame the check the way PMM would: a large-sample test that the mean
    // gap differs from the closed-form value must NOT reject.
    for (spec, label) in [
        (ArrivalSpec::poisson(0.05), "poisson"),
        (ArrivalSpec::bursty(0.05, 6.0, 400.0), "mmpp"),
    ] {
        let mut p = spec.build();
        let mut rng = SeedSequence::new(42).stream(label);
        let n = 150_000u64;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let g = p
                .next_interarrival(&mut rng)
                .expect("live process")
                .as_secs_f64();
            sum += g;
            sum_sq += g * g;
        }
        let mean = sum / n as f64;
        let var = (sum_sq - sum * sum / n as f64) / (n - 1) as f64;
        let empirical = SampleSummary::new(mean, var, n);
        let reference = SampleSummary::new(1.0 / spec.mean_rate(), var, n);
        assert!(
            !stats::means_differ_test(empirical, reference, 0.99),
            "{label}: empirical mean {mean} rejected against closed form {}",
            1.0 / spec.mean_rate()
        );
    }
}
